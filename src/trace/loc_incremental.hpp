// ccmm/trace/loc_incremental.hpp
//
// The incremental per-location checking kernel. large_check.cpp used to
// decide everything in one monolithic batch scan per location; this
// splits the per-location logic into two composable pieces:
//
//  * stage_chunk(): the column-bound half of a chunk — resolve every
//    event in [pos0, pos1) to its Φ-block, catch the local validity
//    failures (2.1/2.3) inline, and answer condition 2.2 through the
//    oracle's batched entry point. Pairs whose observed write sits
//    EARLIER in the topological order are never queried (u ≺ x would
//    force pos(u) < pos(x)), which makes trace-shaped observers —
//    every recorded observation points backwards — issue zero oracle
//    queries; the oracle itself is built lazily on the first batch
//    that survives the filter. In the pipelined engine this staging is
//    the producer's job; a standalone LocState stages for itself.
//
//  * LocState: accepts the staged chunks append-only and maintains
//     - the earliest validity failure (first-failure semantics exactly
//       matching the batch scan),
//     - an incremental Kahn frontier for LC: blocks are committed to a
//       drain order as their first member arrives (B_⊥ always first),
//       and every Φ-block quotient edge is classified on discovery —
//       an edge into B_⊥ is a sticky LC violation (monotone under
//       extension), an edge consistent with the committed order is
//       discharged and forgotten, and an edge against the order marks
//       the location *dirty*, falling back to one full from-scratch
//       quotient Kahn at verdict time. On in-order traffic (serial,
//       SC-like, or any last-writer observer over the scan order)
//       nothing ever goes dirty and LC costs O(deg) amortized per
//       event with O(blocks) state,
//     - a freshness writer-shadow carried forward per event, held as a
//       SpanSet (near-full after the first write, so the succinct
//       encoding keeps it at O(1) words instead of n bits),
//     - the four mask models NN/NW/WN/WW (and the FRESH/WN⁺/NN⁺
//       composites) evaluated at verdict time over exactly the
//       consumed prefix via the shared dag/sweep.hpp kernels —
//       violation existence is monotone under prefix extension, so
//       verdicts agree with a batch run over the same prefix
//       (differentially pinned by tests/test_loc_incremental.cpp).
//
// finalize_into() is non-destructive and re-callable: callers may
// interleave advance() and finalize_into() freely (the online-serving
// contract), and the batch engine in large_check.cpp is just one
// producer of chunks for a set of these states.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/computation.hpp"
#include "core/observer.hpp"
#include "dag/precedence_oracle.hpp"
#include "dag/sweep.hpp"
#include "models/suite.hpp"
#include "util/simd.hpp"
#include "util/span_set.hpp"

namespace ccmm {

/// The per-location-decomposable suite bits the streaming kernel can
/// decide.
inline constexpr std::uint32_t kLargeCheckAll =
    kSuiteLC | kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW;

/// Also decidable streaming, kept out of kLargeCheckAll so existing
/// callers' reports are unchanged: the freshness axiom and the
/// composites WN⁺ = WN ∧ FRESH, NN⁺ = NN ∧ FRESH.
inline constexpr std::uint32_t kLargeCheckPlus =
    kSuiteFresh | kSuiteWNPlus | kSuiteNNPlus;
inline constexpr std::uint32_t kLargeCheckExt = kLargeCheckAll |
                                               kLargeCheckPlus;

/// Outcome for one checked location.
struct LocationCheck {
  Location loc = 0;
  bool valid = true;            // this column passes Definition 2
  std::uint32_t violated = 0;   // requested models this location breaks
  std::size_t writers = 0;      // |writers(l)| = block count - 1
  double millis = 0.0;
  std::string detail;           // first witness / validity failure
};

/// "No position": sorts after every real topological position.
inline constexpr std::uint32_t kLocNoPos = 0xFFFFFFFFu;

/// A precedence oracle built on first use. Condition 2.2 only queries
/// pairs whose observed write sits LATER in the scan order; on
/// trace-shaped observers that set is empty and the build (the single
/// largest fixed cost of a postmortem) never happens. get() is
/// thread-safe; built()/build_millis() are meant for after the run.
class LazyOracle {
 public:
  using Factory = std::function<std::unique_ptr<PrecedenceOracle>()>;
  LazyOracle() = default;
  explicit LazyOracle(Factory factory) : factory_(std::move(factory)) {}
  /// Adopt an already-built oracle (callers that need eager stats).
  explicit LazyOracle(std::unique_ptr<PrecedenceOracle> oracle)
      : oracle_(std::move(oracle)), built_(oracle_ != nullptr) {}

  const PrecedenceOracle& get() const;
  [[nodiscard]] bool built() const noexcept { return built_; }
  [[nodiscard]] double build_millis() const noexcept { return build_millis_; }

 private:
  Factory factory_;
  mutable std::once_flag once_;
  mutable std::unique_ptr<PrecedenceOracle> oracle_;
  mutable bool built_ = false;
  mutable double build_millis_ = 0.0;
};

/// Everything read-only that every LocState of one check shares.
struct LocKernelCtx {
  const Computation* c = nullptr;
  const LazyOracle* oracle = nullptr;
  /// Event arrival order: advance() consumes positions into this array.
  const std::vector<NodeId>* topo = nullptr;
  /// node -> topological position; nullptr when ids are topological
  /// (then pos(u) == u and no inverse array is materialized).
  const std::uint32_t* pos_of = nullptr;
  const Csr* pred = nullptr;  // required for LC / freshness / masks
  const Csr* succ = nullptr;  // required only for the mask backward sweep
  /// n entries: write node -> (index among its own location's writers,
  /// id order) + 1; 0 for every non-write. One shared array for ALL
  /// locations — a node writes at most one location.
  const std::uint32_t* wblock = nullptr;
  /// n entries: write node -> the location it writes (meaningful only
  /// where wblock != 0). `wblock[u] != 0 && wloc[u] == l` replaces
  /// every op-table `writes(l)` probe in the hot loops.
  const std::uint32_t* wloc = nullptr;
  std::uint32_t models = 0;   // base bits the kernel must decide
  std::uint32_t checked = 0;  // caller-requested mask verdicts clip to
  bool fresh = false;         // run the freshness shadow
  SimdLevel simd = SimdLevel::kScalar;

  [[nodiscard]] std::uint32_t pos(NodeId u) const noexcept {
    return pos_of == nullptr ? u : pos_of[u];
  }
  [[nodiscard]] bool writes_loc(NodeId u, Location l) const noexcept {
    return wblock[u] != 0 && wloc[u] == l;
  }
};

/// How a location's validity failed (detail strings are derived from
/// this at verdict time — the hot path never formats).
enum class LocFailKind : std::uint8_t {
  kNone = 0,
  kBottomWriter = 1,   // 2.3: a write observing ⊥
  kNotAWrite = 2,      // 2.1: Φ(l, u) is not a write to l
  kWriteNotSelf = 3,   // 2.3: a write observing another node
  kPrecedesWrite = 4,  // 2.2: u strictly precedes Φ(l, u)
};

/// One staged chunk for one location: the Φ-block of every position in
/// [pos0, pos1) plus the earliest validity failure found while
/// resolving them. Entries past a failure are unspecified — every
/// consumer stops at the failing position.
struct LocChunkStage {
  std::vector<std::uint32_t> blk;
  std::uint32_t fail_pos = kLocNoPos;
  LocFailKind fail_kind = LocFailKind::kNone;
  NodeId u = 0;  // the failing node and its observed write
  NodeId x = 0;
};

/// Per-shard scratch shared across that shard's LocStates: staged
/// chunks, the dirty-LC quotient rebuild, the mask sweep rows, and the
/// 2.2 batch buffers all live here and are reused location to
/// location, so a shard makes O(1) allocations however many locations
/// it owns.
struct LocArena {
  std::vector<std::uint32_t> qhead, qcur, qtgt, indeg, stack;  // LC rebuild
  std::vector<std::uint32_t> blocks;  // dense node→block map (verdict time)
  std::vector<std::uint64_t> anc, wri, desc;                   // mask rows
  std::vector<NodeId> bus, bxs;                                // 2.2 batch
  std::vector<std::uint32_t> bpos;
  std::vector<std::uint8_t> bout;
  LocChunkStage self_stage;  // standalone advance() stages here
  std::size_t peak_bytes = 0;

  void note_peak();
};

/// Resolve one location's chunk: blocks + earliest validity failure.
/// Shared verbatim between the pipeline producer and standalone
/// LocStates, so both paths classify events and query the oracle
/// identically.
void stage_chunk(const LocKernelCtx& ctx, Location loc,
                 const std::vector<NodeId>* col, std::uint32_t pos0,
                 std::uint32_t pos1, LocArena& arena, LocChunkStage& out);

/// The validity-failure message the batch engine always printed.
[[nodiscard]] std::string loc_fail_detail(LocFailKind kind, Location loc,
                                          NodeId u, NodeId x);

class LocState {
 public:
  /// Bind to one location. `col` is the dense Φ column (nullptr = the
  /// all-⊥ column); `writers` is the location's writers in id order
  /// (block b ↦ writers[b-1]); both must outlive the state.
  void init(const LocKernelCtx& ctx, Location loc,
            const std::vector<NodeId>* col, std::span<const NodeId> writers);

  /// Consume positions [pos0, pos1) of ctx.topo (must continue exactly
  /// where the previous advance stopped). `staged` carries the chunk's
  /// prestaged blocks and validity; pass nullptr to have the state
  /// stage the chunk itself into the arena (the standalone/online
  /// mode).
  void advance(std::uint32_t pos0, std::uint32_t pos1, LocArena& arena,
               const LocChunkStage* staged = nullptr);

  /// Verdict over exactly the prefix consumed so far — byte-identical
  /// (valid / violated, clipped to ctx.checked) to a batch check over
  /// that prefix. Non-destructive: advance() may continue afterwards
  /// and finalize_into() may be called again. Clean locations pay O(1)
  /// for LC here; dirty ones one quotient Kahn; mask models one sweep
  /// pass per 256 writer blocks.
  void finalize_into(LocationCheck& out, LocArena& arena);

  [[nodiscard]] std::uint32_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] Location location() const noexcept { return loc_; }

  /// O(1) "known so far" verdict bits for the online-serving fast path:
  /// a validity failure, a sticky B_⊥ quotient edge, and the freshness
  /// shadow are all certain the moment they are seen — no finalize (and
  /// no mask sweep) needed. A clean answer here is NOT a clean verdict:
  /// the mask models and a dirty LC only decide at finalize_into().
  [[nodiscard]] bool validity_failed() const noexcept {
    return fail_pos_ != kLocNoPos;
  }
  [[nodiscard]] bool lc_known_violated() const noexcept {
    return lc_violated_;
  }
  [[nodiscard]] bool freshness_known_violated() const noexcept {
    return fresh_bad_;
  }

  /// Heap bytes this state holds (drain positions, shadow SpanSet) —
  /// reported into the engine's bytes-per-node.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  [[nodiscard]] std::uint32_t block_of_slow(NodeId q) const noexcept;
  void fail_at(std::uint32_t pos, LocFailKind kind, NodeId u, NodeId x);
  void fill_blocks(LocArena& arena) const;
  [[nodiscard]] bool rebuild_lc_quotient(LocArena& arena) const;
  void run_mask_models(LocationCheck& out, LocArena& arena) const;

  const LocKernelCtx* ctx_ = nullptr;
  Location loc_ = 0;
  const std::vector<NodeId>* col_ = nullptr;
  std::span<const NodeId> writers_;

  std::uint32_t consumed_ = 0;
  bool dead_ = false;  // first failure passed; nothing left to consume

  // Validity: the earliest failure seen (any of 2.1/2.2/2.3).
  std::uint32_t fail_pos_ = kLocNoPos;
  LocFailKind fail_kind_ = LocFailKind::kNone;
  NodeId fail_u_ = 0;
  NodeId fail_x_ = 0;

  // Incremental LC.
  bool lc_violated_ = false;  // a quotient edge entered B_⊥ (sticky)
  bool lc_dirty_ = false;     // an edge crossed the committed drain order
  std::vector<std::uint32_t> drain_pos_;  // block -> first-member pos + 1

  // Freshness shadow ("has a strict writer-ancestor"), usually near-full.
  SpanSet shadow_;
  bool fresh_bad_ = false;
  NodeId fresh_node_ = 0;

  double millis_ = 0.0;
};

}  // namespace ccmm
