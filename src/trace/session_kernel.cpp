#include "trace/session_kernel.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "util/numa.hpp"
#include "util/resource.hpp"
#include "util/str.hpp"

namespace ccmm {
namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Mirror of large_check.cpp's oracle-kind prediction: the lazy oracle
/// reports the kind make_oracle would pick without building it; only
/// kAuto's chain-cover probe is unpredictable and builds eagerly. Kept
/// in lockstep by the byte-identity differential in test_serve.cpp.
std::string predicted_oracle_kind(const Computation& c,
                                  const OracleOptions& options) {
  switch (options.choice) {
    case OracleChoice::kClosure:
      return "closure";
    case OracleChoice::kSpOrder:
      return "sp-order";
    case OracleChoice::kChain:
      return "chain";
    case OracleChoice::kAuto:
      break;
  }
  const SpStructure* sp = c.sp_structure().get();
  if (sp != nullptr && sp->node_count == c.node_count()) return "sp-order";
  if (c.node_count() <= options.closure_threshold) return "closure";
  return {};
}

std::size_t csr_bytes_of(const Csr& csr) {
  return csr.head.capacity() * sizeof(std::uint32_t) +
         csr.tgt.capacity() * sizeof(NodeId);
}

}  // namespace

/// One location's online state: the dense Φ column the session fills
/// from the stream plus the LocState consuming it. Written locations
/// are created up front (the batch task list); never-written read
/// targets splice in when their first recorded observation arrives.
struct CheckSession::Loc {
  Location loc = 0;
  std::vector<NodeId> col;
  std::span<const NodeId> writers;
  LocState state;
  // The write carried across batch boundaries by fill_columns. Lives
  // here, not in a states_-indexed side vector: extra_state_for()
  // splices into states_, and a parallel vector would need the same
  // shift at the same position to stay aligned.
  NodeId last_write = kBottom;
};

CheckSession::CheckSession(Computation c, SessionOptions options)
    : c_(std::make_unique<Computation>(std::move(c))),
      opts_(std::move(options)),
      n_(c_->node_count()) {
  const auto t0 = Clock::now();
  checked_ = opts_.models & kLargeCheckExt;

  // Lazy oracle, exactly as the batch engine builds it: condition 2.2
  // never queries backward-pointing observations, so a trace-shaped
  // stream never triggers the build.
  predicted_oracle_ = predicted_oracle_kind(*c_, opts_.oracle);
  const auto t_oracle = Clock::now();
  if (predicted_oracle_.empty()) {
    oracle_ = std::make_unique<LazyOracle>(
        make_oracle(c_->dag(), c_->sp_structure().get(), opts_.oracle));
    eager_oracle_ms_ = millis_since(t_oracle);
  } else {
    const Computation* cp = c_.get();
    const OracleOptions oopts = opts_.oracle;
    oracle_ = std::make_unique<LazyOracle>([cp, oopts] {
      return make_oracle(cp->dag(), cp->sp_structure().get(), oopts);
    });
  }

  // The batch scan order: ids when topological, else the dag's
  // canonical topological order. The watermark advances along THIS
  // order whatever order events arrive in, which is what makes every
  // first-failure position — and so every witness string — identical
  // to large_check() over the same records.
  topo_.resize(n_);
  if (c_->dag().ids_topological()) {
    for (std::uint32_t p = 0; p < n_; ++p) topo_[p] = p;
  } else {
    topo_ = c_->dag().topological_order();
    posv_.resize(n_);
    for (std::uint32_t p = 0; p < n_; ++p) posv_[topo_[p]] = p;
  }

  base_ = checked_ & kLargeCheckAll;
  if ((checked_ & kSuiteWNPlus) != 0) base_ |= kSuiteWN;
  if ((checked_ & kSuiteNNPlus) != 0) base_ |= kSuiteNN;
  want_fresh_ = (checked_ & kLargeCheckPlus) != 0;
  want_masks_ = (base_ & (kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW)) != 0;

  // pred is needed for stream validation (predecessors must have
  // arrived) even when no model wants it; succ only for the mask
  // models' backward sweep, as in the batch engine.
  pred_ = make_pred_csr(c_->dag());
  if (want_masks_) succ_ = make_succ_csr(c_->dag());

  groups_ = group_location_accesses(*c_);
  wblock_.assign(n_, 0);
  wloc_.assign(n_, 0);
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const std::span<const NodeId> wr = groups_.writers(gi);
    const Location l = groups_.locs[gi];
    for (std::size_t i = 0; i < wr.size(); ++i) {
      wblock_[wr[i]] = static_cast<std::uint32_t>(i) + 1;
      wloc_[wr[i]] = l;
    }
  }

  kctx_ = LocKernelCtx{c_.get(),
                       oracle_.get(),
                       &topo_,
                       posv_.empty() ? nullptr : posv_.data(),
                       &pred_,
                       &succ_,
                       wblock_.data(),
                       wloc_.data(),
                       base_,
                       checked_,
                       want_fresh_,
                       opts_.simd.value_or(active_simd_level())};

  // Written locations become states up front, in location order — the
  // batch worklist. Columns start all-⊥ and fill as events arrive.
  std::size_t nwritten = 0;
  for (std::size_t gi = 0; gi < groups_.size(); ++gi)
    if (!groups_.writers(gi).empty()) ++nwritten;
  states_.reserve(nwritten);
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const std::span<const NodeId> wr = groups_.writers(gi);
    if (wr.empty()) continue;
    auto st = std::make_unique<Loc>();
    st->loc = groups_.locs[gi];
    st->col.assign(n_, kBottom);
    st->writers = wr;
    st->state.init(kctx_, st->loc, &st->col, st->writers);
    states_.push_back(std::move(st));
  }

  // Node -> written-location index (kNoLoc for nops and accesses to
  // never-written locations), plus the write flag: the per-batch
  // column fill below runs without a single op-table probe.
  nloc_of_.assign(n_, kNoLoc);
  is_write_.assign(n_, 0);
  for (NodeId u = 0; u < n_; ++u) {
    const Op o = c_->op(u);
    if (o.is_nop()) continue;
    is_write_[u] = o.is_write() ? 1 : 0;
    const auto it = std::lower_bound(
        states_.begin(), states_.end(), o.loc,
        [](const std::unique_ptr<Loc>& s, Location l) { return s->loc < l; });
    if (it != states_.end() && (*it)->loc == o.loc)
      nloc_of_[u] =
          static_cast<std::uint32_t>(it - states_.begin());
  }

  arrived_.assign(n_, 0);
  group_build_ms_ = millis_since(t0);
  active_ms_ = group_build_ms_;
}

CheckSession::~CheckSession() = default;

const Computation& CheckSession::computation() const noexcept { return *c_; }

void CheckSession::fail_stream(std::string why) { error_ = std::move(why); }

CheckSession::Loc& CheckSession::extra_state_for(Location l) {
  auto it = std::lower_bound(
      states_.begin(), states_.end(), l,
      [](const std::unique_ptr<Loc>& s, Location loc) { return s->loc < loc; });
  if (it != states_.end() && (*it)->loc == l) return **it;
  auto st = std::make_unique<Loc>();
  st->loc = l;
  st->col.assign(n_, kBottom);
  st->state.init(kctx_, l, &st->col, st->writers);
  // Catch up to the kernel's current position: the column is all-⊥
  // over the consumed prefix (this location's first recorded
  // observation is arriving right now, so its scan position is at or
  // past the watermark), which is exactly what the batch scan saw.
  if (consumed_ > 0) st->state.advance(0, consumed_, arena_);
  // Splicing does not disturb nloc_of_: that maps into the written
  // prefix of the task list by location, and extras never carry
  // writers, so written indices are re-derived below.
  Loc& ref = *st;
  const std::size_t at = static_cast<std::size_t>(it - states_.begin());
  states_.insert(it, std::move(st));
  for (NodeId u = 0; u < n_; ++u)
    if (nloc_of_[u] != kNoLoc && nloc_of_[u] >= at) ++nloc_of_[u];
  return ref;
}

void CheckSession::fill_columns(const BinaryTraceEvent* events,
                                std::size_t count) {
  // One pass per written location carrying the last write — the exact
  // observer_from_trace() completion: recorded observations win,
  // writes self-observe, everything else sees the carried write.
  for (std::size_t si = 0; si < states_.size(); ++si) {
    Loc& s = *states_[si];
    if (s.writers.empty()) continue;  // extras fill from events directly
    std::vector<NodeId>& col = s.col;
    const std::uint32_t wi = static_cast<std::uint32_t>(si);
    NodeId last = s.last_write;
    for (std::size_t i = 0; i < count; ++i) {
      const BinaryTraceEvent& e = events[i];
      const NodeId u = e.node;
      if (nloc_of_[u] != wi) {
        if (last != kBottom) col[u] = last;
      } else if (is_write_[u] != 0) {
        col[u] = u;
        last = u;
      } else if (e.observed != 0xFFFFFFFFu) {
        col[u] = e.observed;
      }
    }
    s.last_write = last;
  }
  // Recorded observations at never-written locations still land in Φ
  // (they must fail 2.1 later, so they cannot be dropped here).
  for (std::size_t i = 0; i < count; ++i) {
    const BinaryTraceEvent& e = events[i];
    const NodeId u = e.node;
    if (nloc_of_[u] != kNoLoc || e.observed == 0xFFFFFFFFu) continue;
    const Op o = c_->op(u);
    if (!o.is_read()) continue;
    extra_state_for(o.loc).col[u] = e.observed;
  }
}

void CheckSession::advance_kernel() {
  while (watermark_ < n_ && arrived_[topo_[watermark_]] != 0) ++watermark_;
  if (watermark_ == consumed_) return;
  const auto t0 = Clock::now();
  for (const std::unique_ptr<Loc>& s : states_)
    s->state.advance(consumed_, watermark_, arena_);
  consumed_ = watermark_;
  kernel_ms_ += millis_since(t0);
}

bool CheckSession::feed(const BinaryTraceEvent* events, std::size_t count) {
  if (failed()) return false;
  if (count == 0) return true;
  const auto t0 = Clock::now();

  // Validation pass: the incremental half of trace_consistent_with.
  // Nothing is consumed unless the whole batch validates — a rejected
  // batch leaves the session sticky-failed, not half-applied.
  for (std::size_t i = 0; i < count; ++i) {
    const BinaryTraceEvent& e = events[i];
    const NodeId u = e.node;
    if (u >= n_) {
      fail_stream(format("event seq=%llu names unknown node %u",
                         static_cast<unsigned long long>(e.seq), e.node));
    } else if (e.observed != 0xFFFFFFFFu && e.observed >= n_) {
      fail_stream(format("event seq=%llu observes unknown node %u",
                         static_cast<unsigned long long>(e.seq), e.observed));
    } else if (e.reserved != 0) {
      fail_stream(format("event seq=%llu has a nonzero reserved field",
                         static_cast<unsigned long long>(e.seq)));
    } else if (events_seen_ + i > 0 && e.seq < last_seq_) {
      fail_stream(format(
          "event seq=%llu arrives after seq=%llu: online streams must be "
          "seq-ordered",
          static_cast<unsigned long long>(e.seq),
          static_cast<unsigned long long>(last_seq_)));
    } else if (arrived_[u] != 0) {
      fail_stream(format("node %u appears in more than one event", u));
    } else {
      // Name the smallest late predecessor so the message matches the
      // batch checker regardless of adjacency-list order.
      NodeId late = u;  // sentinel: u is never its own predecessor
      for (std::uint32_t k = pred_.head[u]; k < pred_.head[u + 1]; ++k) {
        const NodeId q = pred_.tgt[k];
        if (arrived_[q] == 0 && (late == u || q < late)) late = q;
      }
      if (late != u)
        fail_stream(format(
            "trace order flips dag edge %u -> %u (node %u ran first)", late,
            u, u));
    }
    if (failed()) {
      // Roll back this batch's arrival marks; the session is dead but
      // its error message should name the first offending event.
      for (std::size_t j = 0; j < i; ++j) arrived_[events[j].node] = 0;
      return false;
    }
    arrived_[u] = 1;
    last_seq_ = e.seq;
  }
  events_seen_ += count;

  if (opts_.retain_events)
    retained_.insert(retained_.end(), events, events + count);

  fill_columns(events, count);
  ingest_ms_ += millis_since(t0);
  advance_kernel();
  active_ms_ += millis_since(t0);
  return true;
}

SessionVerdict CheckSession::fast_verdict() const {
  SessionVerdict v;
  v.events = events_seen_;
  v.consumed = consumed_;
  if (failed()) {
    v.valid = false;
    return v;
  }
  std::uint32_t violated = 0;
  for (const std::unique_ptr<Loc>& s : states_) {
    if (s->state.validity_failed()) v.valid = false;
    if (s->state.lc_known_violated()) violated |= kSuiteLC;
    if (s->state.freshness_known_violated()) violated |= kSuiteFresh;
  }
  if ((violated & kSuiteFresh) != 0)
    violated |= kSuiteWNPlus | kSuiteNNPlus;
  v.violated = violated & checked_;
  return v;
}

LargeCheckReport CheckSession::make_report(bool require_complete) {
  const auto t0 = Clock::now();
  LargeCheckReport report;
  report.checked = checked_;
  if (failed() || (require_complete && events_seen_ != n_)) {
    // The batch engine's large_check_trace() failure shape: checked +
    // detail only. An incomplete stream reports the event-count
    // mismatch the concatenated trace would produce — without killing
    // the session, so a late finish() can still succeed.
    const std::string why =
        failed() ? error_
                 : format("trace has %zu events for %zu nodes",
                          static_cast<std::size_t>(events_seen_), n_);
    report.detail = "trace does not fit the computation: " + why;
    return report;
  }

  report.simd = simd_level_name(kctx_.simd);
  report.shards = 1;
  report.pipelined = false;
  report.numa = numa_topology().to_string();
  report.csr_bytes = csr_bytes_of(succ_) + csr_bytes_of(pred_);
  report.groups_bytes = groups_.memory_bytes();
  report.aux_bytes =
      (wblock_.capacity() + wloc_.capacity() + posv_.capacity() +
       nloc_of_.capacity()) * sizeof(std::uint32_t) +
      topo_.capacity() * sizeof(NodeId) + is_write_.capacity() +
      arrived_.capacity();
  report.ingest_millis = ingest_ms_;
  report.group_build_millis = group_build_ms_;
  report.kernel_millis = kernel_ms_;

  report.locations.resize(states_.size());
  std::size_t state_bytes = 0;
  std::size_t column_bytes = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    states_[i]->state.finalize_into(report.locations[i], arena_);
    state_bytes += states_[i]->state.memory_bytes();
    column_bytes += states_[i]->col.capacity() * sizeof(NodeId);
  }
  report.report_millis = millis_since(t0);
  arena_.note_peak();
  report.scratch_peak_bytes = arena_.peak_bytes + state_bytes + column_bytes;

  if (oracle_->built()) {
    report.oracle_kind = oracle_->get().kind();
    report.oracle_memory_bytes = oracle_->get().memory_bytes();
    report.oracle_build_millis = predicted_oracle_.empty()
                                     ? eager_oracle_ms_
                                     : oracle_->build_millis();
  } else {
    report.oracle_kind = predicted_oracle_;
  }

  report.valid_observer = true;
  std::uint32_t violated = 0;
  for (const LocationCheck& lc : report.locations) {
    if (!lc.valid) report.valid_observer = false;
    violated |= lc.violated;
    if (report.detail.empty() && !lc.detail.empty()) report.detail = lc.detail;
  }
  report.satisfied =
      report.valid_observer ? (report.checked & ~violated) : 0;
  report.peak_rss_bytes = current_peak_rss_bytes();
  if (n_ > 0)
    report.bytes_per_node =
        static_cast<double>(report.csr_bytes + report.groups_bytes +
                            report.scratch_peak_bytes * report.shards +
                            report.aux_bytes + report.oracle_memory_bytes) /
        static_cast<double>(n_);
  active_ms_ += millis_since(t0);
  report.total_millis = active_ms_;
  return report;
}

LargeCheckReport CheckSession::check() { return make_report(false); }

LargeCheckReport CheckSession::finish() { return make_report(true); }

std::size_t CheckSession::memory_bytes() const noexcept {
  std::size_t bytes =
      (wblock_.capacity() + wloc_.capacity() + posv_.capacity() +
       nloc_of_.capacity()) * sizeof(std::uint32_t) +
      topo_.capacity() * sizeof(NodeId) + is_write_.capacity() +
      arrived_.capacity() +
      retained_.capacity() * sizeof(BinaryTraceEvent) +
      csr_bytes_of(pred_) + csr_bytes_of(succ_) + groups_.memory_bytes() +
      arena_.peak_bytes;
  for (const std::unique_ptr<Loc>& s : states_)
    bytes += sizeof(Loc) + s->col.capacity() * sizeof(NodeId) +
             s->state.memory_bytes();
  return bytes;
}

}  // namespace ccmm
