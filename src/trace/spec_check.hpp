// ccmm/trace/spec_check.hpp
//
// Streaming membership for *compiled model specs* (models/compile.hpp):
// the bridge between the model compiler and the large_check data plane.
// Each spec's StreamingPlan names the suite bits (LC, the four named
// corners, freshness) its mask-decidable part needs; spec_check unions
// the plans of every requested model into ONE large_check run — the
// closure-free validity/LC/sweep/shadow passes execute once, however
// many models are being decided — and then finishes the order axioms
// the masks cannot express:
//
//  * scoped order: one serialization witness per scope. A trace's
//    execution order is tried first (order_explains, O(n+m) per scope —
//    a scope-consistent serial execution is always explained by its own
//    order), falling back to the budgeted backtracking search;
//  * global order: the same two-step on all active locations.
//
// A model whose plan is not streamable (a w-constrained cube axiom
// needs the cubic closure scan) or whose search exhausts its budget is
// reported `decided = false` rather than guessed — callers fall back to
// the prepared path or enlarge the budget. Verdicts are pinned
// byte-identical to CompiledModel::contains_prepared by
// tests/test_spec_check.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/compile.hpp"
#include "trace/large_check.hpp"

namespace ccmm {

struct SpecCheckOptions {
  /// The underlying streaming run. `large.models` is unioned with the
  /// requested models' plans, so a caller (the lint pipeline) can fold
  /// its own suite verdicts into the one shared pass.
  LargeCheckOptions large;
  /// Budget (states expanded) for each scoped/global serialization
  /// search that the mask verdicts leave undecided.
  std::size_t search_budget = SIZE_MAX;
  /// Optional witness hint: a topological order (typically the trace's
  /// execution order) tried with order_explains before any search runs.
  std::vector<NodeId> hint_order;
};

/// Verdict for one requested model.
struct SpecModelVerdict {
  std::string name;
  bool decided = false;  // false: not streamable / budget exhausted
  bool member = false;   // meaningful only when decided
  std::string detail;    // first violation, or why undecided
};

struct SpecCheckReport {
  /// The shared streaming run (validity verdict, per-location table,
  /// data-plane accounting). `base.checked` is the union of the plans.
  LargeCheckReport base;
  std::vector<SpecModelVerdict> models;  // one per requested model

  /// All models decided and members.
  [[nodiscard]] bool all_members() const;
  [[nodiscard]] std::string to_string() const;
};

/// Decide every model in `models` for (c, phi) via one shared
/// large_check run plus per-scope serialization searches.
[[nodiscard]] SpecCheckReport spec_check(
    const Computation& c, const ObserverFunction& phi,
    const std::vector<std::shared_ptr<const CompiledModel>>& models,
    const SpecCheckOptions& options = {});

/// Trace entry point: sanity-check the trace, build its total observer
/// (observer_from_trace), and run spec_check with the trace's execution
/// order as the witness hint — for scope-consistent serial executions
/// the scoped searches then never backtrack.
[[nodiscard]] SpecCheckReport spec_check_trace(
    const Computation& c, const Trace& trace,
    const std::vector<std::shared_ptr<const CompiledModel>>& models,
    const SpecCheckOptions& options = {});

}  // namespace ccmm
