#include "trace/trace.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "util/str.hpp"

namespace ccmm {

std::vector<NodeId> trace_order(const Trace& trace) {
  std::vector<NodeId> order;
  order.reserve(trace.events.size());
  // Traces straight from the simulator — and binary files we emitted —
  // are already seq-sorted; skip the pointer sort for them.
  bool sorted = true;
  for (std::size_t i = 1; i < trace.events.size(); ++i)
    if (trace.events[i - 1].seq > trace.events[i].seq) {
      sorted = false;
      break;
    }
  if (sorted) {
    for (const auto& e : trace.events) order.push_back(e.node);
    return order;
  }
  std::vector<const TraceEvent*> view;
  view.reserve(trace.events.size());
  for (const auto& e : trace.events) view.push_back(&e);
  std::sort(view.begin(), view.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->seq < b->seq;
            });
  for (const auto* e : view) order.push_back(e->node);
  return order;
}

bool trace_consistent_with(const Trace& trace, const Computation& c,
                           std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (trace.events.size() != c.node_count())
    return fail(format("trace has %zu events for %zu nodes",
                       trace.events.size(), c.node_count()));
  for (const auto& e : trace.events) {
    if (e.node >= c.node_count())
      return fail(format("event seq=%llu names unknown node %u",
                         static_cast<unsigned long long>(e.seq), e.node));
    if (!(e.op == c.op(e.node)))
      return fail(format("node %u executed %s but is labelled %s", e.node,
                         e.op.to_string().c_str(),
                         c.op(e.node).to_string().c_str()));
  }
  // One event per node, and the seq order must be a linear extension:
  // pos[u] = position of u's event; then every dag edge must go forward.
  const std::vector<NodeId> order = trace_order(trace);
  std::vector<std::size_t> pos(c.node_count(), SIZE_MAX);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (pos[order[i]] != SIZE_MAX)
      return fail(format("node %u appears in more than one event", order[i]));
    pos[order[i]] = i;
  }
  // Scan in trace order and name the smallest late predecessor: the
  // first offending *event* with an adjacency-order-independent edge,
  // so an online session kernel (whose computation may have round-
  // tripped through text, regrouping edges) reports the same message.
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    NodeId late = u;  // sentinel: u is never its own predecessor
    for (const NodeId q : c.dag().pred(u))
      if (pos[q] >= i && (late == u || q < late)) late = q;
    if (late != u)
      return fail(format(
          "trace order flips dag edge %u -> %u (node %u ran first)", late, u,
          u));
  }
  return true;
}

void trace_to_stream(const Trace& trace, std::ostream& out,
                     std::size_t max_rows) {
  const std::size_t nrows = std::min(trace.events.size(), max_rows);
  const auto digits = [](unsigned long long v) {
    std::size_t d = 1;
    while (v >= 10) {
      v /= 10;
      ++d;
    }
    return d;
  };
  // Column widths from the numeric values directly — no per-cell string
  // materialization, and one reserve for the whole render.
  const char* headers[6] = {"seq", "time", "proc", "node", "op", "observed"};
  std::size_t w[6];
  for (std::size_t i = 0; i < 6; ++i) w[i] = std::char_traits<char>::length(headers[i]);
  for (std::size_t i = 0; i < nrows; ++i) {
    const TraceEvent& e = trace.events[i];
    w[0] = std::max(w[0], digits(e.seq));
    w[1] = std::max(w[1], digits(e.time));
    w[2] = std::max(w[2], digits(e.proc));
    w[3] = std::max(w[3], digits(e.node));
    w[4] = std::max(w[4], e.op.is_nop() ? std::size_t{1}
                                        : 3 + digits(e.op.loc));
    w[5] = std::max(w[5], e.observed == kBottom ? std::size_t{1}
                                                : digits(e.observed));
  }
  std::size_t row_width = 1;  // newline
  for (std::size_t i = 0; i < 6; ++i) row_width += w[i] + 2;

  // Rows accumulate in a bounded chunk that flushes to the stream: the
  // render never holds more than ~64 KiB of text however long the
  // trace, while small tables still reach the stream in one write.
  std::string chunk;
  constexpr std::size_t kFlushAt = std::size_t{64} * 1024;
  chunk.reserve(std::min((nrows + 3) * row_width + 64, kFlushAt + row_width));
  const auto flush_if_full = [&] {
    if (chunk.size() >= kFlushAt) {
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      chunk.clear();
    }
  };
  const auto pad_to = [&](std::size_t mark, std::size_t width, bool last) {
    const std::size_t written = chunk.size() - mark;
    if (written < width) chunk.append(width - written, ' ');
    if (!last) chunk.append(2, ' ');
  };
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t mark = chunk.size();
    chunk += headers[i];
    pad_to(mark, w[i], i == 5);
  }
  chunk += '\n';
  chunk.append(row_width - 1, '-');
  chunk += '\n';

  char buf[32];
  const auto cell = [&](std::size_t i, unsigned long long v, bool last) {
    const std::size_t mark = chunk.size();
    chunk.append(buf, static_cast<std::size_t>(
                          std::snprintf(buf, sizeof buf, "%llu", v)));
    pad_to(mark, w[i], last);
  };
  for (std::size_t i = 0; i < nrows; ++i) {
    const TraceEvent& e = trace.events[i];
    cell(0, e.seq, false);
    cell(1, e.time, false);
    cell(2, e.proc, false);
    cell(3, e.node, false);
    {
      const std::size_t mark = chunk.size();
      chunk += e.op.to_string();
      pad_to(mark, w[4], false);
    }
    if (e.observed == kBottom) {
      const std::size_t mark = chunk.size();
      chunk += '_';
      pad_to(mark, w[5], true);
    } else {
      cell(5, e.observed, true);
    }
    chunk += '\n';
    flush_if_full();
  }
  if (nrows < trace.events.size())
    chunk += format("... (%zu more events elided; raise max_rows to render)\n",
                    trace.events.size() - nrows);
  out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
}

std::string trace_to_string(const Trace& trace, std::size_t max_rows) {
  std::ostringstream out;
  trace_to_stream(trace, out, max_rows);
  return std::move(out).str();
}

void write_trace(const Trace& trace, std::ostream& out) {
  std::string chunk;
  constexpr std::size_t kFlushAt = std::size_t{64} * 1024;
  chunk.reserve(kFlushAt + 96);
  chunk += "# ccmm trace: seq time proc node observed (_ = no write seen)\n";
  char buf[96];
  for (const TraceEvent& e : trace.events) {
    int len;
    if (e.observed == kBottom) {
      len = std::snprintf(buf, sizeof buf, "%llu %llu %u %u _\n",
                          static_cast<unsigned long long>(e.seq),
                          static_cast<unsigned long long>(e.time),
                          static_cast<unsigned>(e.proc), e.node);
    } else {
      len = std::snprintf(buf, sizeof buf, "%llu %llu %u %u %u\n",
                          static_cast<unsigned long long>(e.seq),
                          static_cast<unsigned long long>(e.time),
                          static_cast<unsigned>(e.proc), e.node, e.observed);
    }
    chunk.append(buf, static_cast<std::size_t>(len));
    if (chunk.size() >= kFlushAt) {
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      chunk.clear();
    }
  }
  out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
}

std::string write_trace(const Trace& trace) {
  std::ostringstream out;
  write_trace(trace, out);
  return std::move(out).str();
}

Trace read_trace(std::istream& in, const Computation& c) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream row(line);
    unsigned long long seq = 0;
    unsigned long long time = 0;
    unsigned proc = 0;
    unsigned long long node = 0;
    std::string observed;
    if (!(row >> seq >> time >> proc >> node >> observed))
      throw std::runtime_error(format(
          "trace line %zu: expected `seq time proc node observed`", lineno));
    if (node >= c.node_count())
      throw std::runtime_error(format(
          "trace line %zu: node %llu out of range (computation has %zu "
          "nodes)",
          lineno, node, c.node_count()));
    TraceEvent e;
    e.seq = seq;
    e.time = time;
    e.proc = static_cast<ProcId>(proc);
    e.node = static_cast<NodeId>(node);
    e.op = c.op(e.node);
    if (observed == "_") {
      e.observed = kBottom;
    } else {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(observed.c_str(), &end, 10);
      if (end == observed.c_str() || *end != '\0' || v >= c.node_count())
        throw std::runtime_error(format(
            "trace line %zu: bad observed node `%s`", lineno,
            observed.c_str()));
      e.observed = static_cast<NodeId>(v);
    }
    trace.events.push_back(e);
  }
  return trace;
}

}  // namespace ccmm
