#include "trace/trace.hpp"

#include <algorithm>

#include "dag/topsort.hpp"
#include "util/str.hpp"

namespace ccmm {

std::vector<NodeId> trace_order(const Trace& trace) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(trace.events.size());
  for (const auto& e : trace.events) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->seq < b->seq;
            });
  std::vector<NodeId> order;
  order.reserve(sorted.size());
  for (const auto* e : sorted) order.push_back(e->node);
  return order;
}

bool trace_consistent_with(const Trace& trace, const Computation& c) {
  if (trace.events.size() != c.node_count()) return false;
  for (const auto& e : trace.events) {
    if (e.node >= c.node_count()) return false;
    if (!(e.op == c.op(e.node))) return false;
  }
  return is_topological_sort(c.dag(), trace_order(trace));
}

std::string trace_to_string(const Trace& trace) {
  TextTable t({"seq", "time", "proc", "node", "op", "observed"});
  for (const auto& e : trace.events) {
    t.add_row({format("%llu", static_cast<unsigned long long>(e.seq)),
               format("%llu", static_cast<unsigned long long>(e.time)),
               format("%u", e.proc), format("%u", e.node),
               e.op.to_string(),
               e.observed == kBottom ? "_" : format("%u", e.observed)});
  }
  return t.render();
}

}  // namespace ccmm
