// ccmm/trace/trace_binary.hpp
//
// The binary trace format: the mmap-able record of execution the text
// format (trace.hpp) is the human-readable twin of. A 16M-event text
// trace costs ~400 MB of digits and a getline/istringstream parse per
// event; the binary file is exactly 32 bytes per event, validates with
// two range compares per record, and maps straight into the checker
// with zero string materialization.
//
// Layout (all fields little-endian; the reader byte-swaps on
// big-endian hosts):
//
//   offset  size  field
//   ------  ----  -----------------------------------------
//        0     8  magic "CCMMTRC0"
//        8     4  version (currently 1)
//       12     4  flags (reserved, must be 0)
//       16     8  event_count
//       24     8  reserved (must be 0)
//       32   32·k event records:
//                   +0  u64 seq        +8  u64 time
//                   +16 u32 proc       +20 u32 node
//                   +24 u32 observed (0xFFFFFFFF = ⊥)
//                   +28 u32 reserved (must be 0)
//
// Ops are not serialized, mirroring the text format: they are looked
// up in the computation the trace is checked against, which is also
// what makes per-record validation (node / observed in range) possible
// at read time. Malformed input throws TraceReadError carrying the
// exact byte offset of the first offending field.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace ccmm {

inline constexpr char kTraceBinaryMagic[8] = {'C', 'C', 'M', 'M',
                                              'T', 'R', 'C', '0'};
inline constexpr std::uint32_t kTraceBinaryVersion = 1;
inline constexpr std::size_t kTraceBinaryHeaderBytes = 32;
inline constexpr std::size_t kTraceBinaryEventBytes = 32;

/// One on-disk event record. Field order and widths match the layout
/// above exactly; the struct has no padding, so on little-endian hosts
/// a validated file region can be reinterpreted as an array of these
/// (the zero-copy path).
struct BinaryTraceEvent {
  std::uint64_t seq = 0;
  std::uint64_t time = 0;
  std::uint32_t proc = 0;
  std::uint32_t node = 0;
  std::uint32_t observed = 0xFFFFFFFFu;  // kBottom sentinel
  std::uint32_t reserved = 0;
};
static_assert(sizeof(BinaryTraceEvent) == kTraceBinaryEventBytes,
              "binary trace records must be exactly 32 bytes");

/// Malformed binary input; offset() is the byte position of the first
/// field that failed validation.
class TraceReadError : public std::runtime_error {
 public:
  TraceReadError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// A validated window into a binary trace image. Non-owning: valid as
/// long as the underlying buffer (usually a MappedTraceFile) lives.
struct BinaryTraceView {
  const BinaryTraceEvent* events = nullptr;
  std::size_t count = 0;
};

/// Streamed writer: header + records, chunked through a fixed buffer so
/// a 16M-event emit never holds the serialized blob in memory.
void write_trace_binary(const Trace& trace, std::ostream& out);

/// Validate an in-memory image (header magic/version/flags/size, every
/// record's node and observed against `c`) and return a zero-copy view.
/// No strings, no allocation proportional to the trace. Throws
/// TraceReadError with the offending byte offset. On big-endian hosts
/// the zero-copy reinterpretation is impossible; use read_trace_binary
/// there (this function throws).
[[nodiscard]] BinaryTraceView validate_trace_binary(const void* data,
                                                    std::size_t size,
                                                    const Computation& c);

/// Materialize a Trace (ops looked up in `c`) from a validated view.
[[nodiscard]] Trace trace_from_view(const BinaryTraceView& view,
                                    const Computation& c);

/// Portable whole-image reader: validate + materialize, byte-swapping
/// on big-endian hosts. The convenience path for tests and small files.
[[nodiscard]] Trace read_trace_binary(const void* data, std::size_t size,
                                      const Computation& c);

/// mmap-backed read-only file image, with a plain read() fallback when
/// mapping fails (or off-POSIX). Non-seekable inputs — pipes, sockets,
/// process substitution — are read to EOF through a chunked loop, so
/// `mkfifo p && ccmm_check --trace p` streams without a temp file.
/// Movable, non-copyable.
class MappedTraceFile {
 public:
  /// Throws std::runtime_error when the file cannot be opened/read.
  explicit MappedTraceFile(const std::string& path);

  /// Adopt an open descriptor (not closed; dup/keep it alive for the
  /// read). Regular files mmap as usual; anything non-seekable is
  /// drained to EOF into the fallback buffer. `name` is used in error
  /// messages only.
  MappedTraceFile(int fd, const std::string& name);
  ~MappedTraceFile();
  MappedTraceFile(MappedTraceFile&& o) noexcept;
  MappedTraceFile& operator=(MappedTraceFile&& o) noexcept;
  MappedTraceFile(const MappedTraceFile&) = delete;
  MappedTraceFile& operator=(const MappedTraceFile&) = delete;

  [[nodiscard]] const void* data() const noexcept {
    return map_ != nullptr ? map_ : static_cast<const void*>(buf_.data());
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// True when the image is an actual mmap (false = read() fallback).
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }

 private:
  void adopt_fd(int fd, const std::string& name);

  void* map_ = nullptr;
  std::size_t size_ = 0;
  std::vector<unsigned char> buf_;
};

enum class TraceFormat : std::uint8_t { kText, kBinary };

/// Sniff a buffer: binary iff it starts with the 8-byte magic.
[[nodiscard]] TraceFormat detect_trace_format(const void* data,
                                              std::size_t size) noexcept;
/// Sniff a file's first 8 bytes. Throws std::runtime_error on IO error.
[[nodiscard]] TraceFormat detect_trace_format_file(const std::string& path);

/// The CLIs' auto-detecting loader: binary files go through the mmap +
/// zero-copy validation path, text files through read_trace. The path
/// is opened exactly ONCE (a second open of a FIFO would lose bytes),
/// and "-" reads standard input — both formats stream from pipes.
/// Throws std::runtime_error / TraceReadError on malformed input.
[[nodiscard]] Trace load_trace(const std::string& path, const Computation& c);

}  // namespace ccmm
