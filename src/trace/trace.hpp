// ccmm/trace/trace.hpp
//
// Execution-trace utilities on top of exec/sim_machine.hpp's Trace:
// sanity checks and conversions used by post-mortem analysis.
#pragma once

#include "exec/sim_machine.hpp"

namespace ccmm {

/// The nodes in trace order (the execution's global serialization).
[[nodiscard]] std::vector<NodeId> trace_order(const Trace& trace);

/// Sanity: one event per node, ops agree with the computation, and the
/// trace order is a topological sort of the dag.
[[nodiscard]] bool trace_consistent_with(const Trace& trace,
                                         const Computation& c);

/// Render the trace as a table (time, proc, node, op, observed).
[[nodiscard]] std::string trace_to_string(const Trace& trace);

}  // namespace ccmm
