// ccmm/trace/trace.hpp
//
// Execution-trace utilities on top of exec/sim_machine.hpp's Trace:
// sanity checks and conversions used by post-mortem analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "exec/sim_machine.hpp"

namespace ccmm {

/// The nodes in trace order (the execution's global serialization).
[[nodiscard]] std::vector<NodeId> trace_order(const Trace& trace);

/// Sanity: one event per node, ops agree with the computation, and the
/// trace order is a topological sort of the dag. When `why` is non-null
/// and the check fails, it receives a message naming the offending
/// event/node (size mismatch, unknown node, op disagreement, duplicate,
/// or the first dag edge the order flips).
[[nodiscard]] bool trace_consistent_with(const Trace& trace,
                                         const Computation& c,
                                         std::string* why = nullptr);

/// Render the trace as a table (time, proc, node, op, observed). Only
/// the first `max_rows` events are rendered — million-node traces would
/// otherwise allocate hundreds of MB of text — with a trailing note
/// giving the elided count. The ostream overload streams rows through a
/// fixed-size buffer; the string overload wraps it.
void trace_to_stream(const Trace& trace, std::ostream& out,
                     std::size_t max_rows = 10000);
[[nodiscard]] std::string trace_to_string(const Trace& trace,
                                          std::size_t max_rows = 10000);

/// Plain-text trace format: one `seq proc node observed` line per
/// event (`_` for a ⊥ observation), `#` comments and blank lines
/// ignored. Ops are not serialized — they are looked up in the
/// computation on read, which is also why reading needs `c`.
/// read_trace throws std::runtime_error on malformed lines or node ids
/// outside the computation.
///
/// The ostream overload of write_trace streams line chunks, so emitting
/// a 16M-event trace never holds the ~400 MB text blob in memory; the
/// string overload remains as a wrapper for small traces.
void write_trace(const Trace& trace, std::ostream& out);
[[nodiscard]] std::string write_trace(const Trace& trace);
[[nodiscard]] Trace read_trace(std::istream& in, const Computation& c);

}  // namespace ccmm
