// ccmm/trace/session_kernel.hpp
//
// The online checking session: the piece of ccmm_serve that turns the
// incremental per-location kernel (trace/loc_incremental.hpp) into a
// feed()/check()/finish() state machine over a live event stream.
//
// A CheckSession is the online twin of large_check_trace(): events
// arrive append-only as validated 32-byte binary records (in
// nondecreasing seq order — the stream IS the execution order), the
// observer columns fill incrementally with exactly the
// observer_from_trace() completion rules, and the LocStates advance
// through a *watermark* on the batch engine's scan order:
//
//   scan order  = ids when topological, else dag().topological_order()
//                 — the SAME order large_check() scans, so verdicts,
//                 first-failure positions and witness strings are
//                 byte-identical to the batch postmortem, not merely
//                 equivalent;
//   watermark   = length of the longest arrived prefix of the scan
//                 order. Events can arrive in any linear extension;
//                 the kernel only consumes positions the stream has
//                 fully covered. On serial/SC-shaped streams the
//                 watermark tracks arrival exactly and nothing waits.
//
// feed() performs the incremental half of trace_consistent_with (one
// event per node, known nodes, predecessors already arrived, seq
// monotone); a violation makes the session sticky-failed and finish()
// reports the batch engine's "trace does not fit the computation"
// verdict. finish() on a complete stream returns a LargeCheckReport
// whose semantic fields (valid_observer / satisfied / detail / every
// per-location row) match `ccmm_check --trace` on the concatenated
// trace byte for byte — pinned by tests/test_serve.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/large_check.hpp"
#include "trace/loc_kernel.hpp"
#include "trace/trace_binary.hpp"

namespace ccmm {

struct SessionOptions {
  /// Which models to decide (subset of kLargeCheckExt).
  std::uint32_t models = kSuiteLC;
  /// Oracle selection for the validity point queries.
  OracleOptions oracle;
  /// Force a mask-sweep kernel level (nullopt = process dispatch).
  std::optional<SimdLevel> simd;
  /// Keep every fed record: snapshot/restore replays the retained log
  /// through a fresh session, so serving turns it off for bulk streams
  /// that never snapshot.
  bool retain_events = false;
};

/// The O(1) mid-stream answer: which verdict bits are already certain.
/// `violated` only ever grows; a zero here is "nothing known yet", not
/// "holds" — holds needs a check() or finish() mask sweep.
struct SessionVerdict {
  bool valid = true;            // no validity failure seen so far
  std::uint32_t violated = 0;   // sticky violations, clipped to checked
  std::uint64_t events = 0;     // records accepted so far
  std::uint64_t consumed = 0;   // scan positions the kernel advanced
};

class CheckSession {
 public:
  /// The computation is copied into the session (a serving daemon owns
  /// its sessions outright; clients ship the computation in the open
  /// frame). Non-movable: LocStates hold pointers into the session.
  explicit CheckSession(Computation c, SessionOptions options = {});
  ~CheckSession();
  CheckSession(const CheckSession&) = delete;
  CheckSession& operator=(const CheckSession&) = delete;

  /// Append `count` records (nondecreasing seq, any linear extension of
  /// the dag). Returns false once the stream is rejected — the session
  /// is then sticky-failed and error() says why; further feeds are
  /// no-ops. Cost: O(count · stored-locations) column fill plus the
  /// kernel advance over newly covered scan positions.
  bool feed(const BinaryTraceEvent* events, std::size_t count);

  [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_;
  }
  /// Scan positions consumed by the kernel (== events_seen on in-order
  /// streams; lags behind it while the scan order waits for a hole).
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] bool complete() const noexcept { return consumed_ == n_; }

  /// O(locations): fold the sticky per-location flags. Never touches
  /// the oracle or the sweep kernels — this is the per-flush verdict
  /// the daemon pushes after every batch.
  [[nodiscard]] SessionVerdict fast_verdict() const;

  /// Full verdict over exactly the consumed prefix (mask sweeps + LC
  /// quotient rebuilds where dirty). Non-destructive: feed() may
  /// continue afterwards. O(consumed) per call — an explicit request,
  /// not a per-batch cost.
  [[nodiscard]] LargeCheckReport check();

  /// Terminal verdict. Requires the stream to be complete (exactly one
  /// event per node); otherwise reports the batch engine's "trace does
  /// not fit the computation" failure. Idempotent; feed() after a
  /// complete finish() rejects (the stream has more events than nodes).
  [[nodiscard]] LargeCheckReport finish();

  [[nodiscard]] const Computation& computation() const noexcept;
  [[nodiscard]] const SessionOptions& options() const noexcept {
    return opts_;
  }
  /// The fed records, in arrival order — empty unless retain_events.
  [[nodiscard]] const std::vector<BinaryTraceEvent>& retained_events()
      const noexcept {
    return retained_;
  }
  /// Session-owned heap: columns, groups, CSRs, states, arena peak.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct Loc;  // one location's column + LocState

  void fail_stream(std::string why);
  Loc& extra_state_for(Location l);
  void fill_columns(const BinaryTraceEvent* events, std::size_t count);
  void advance_kernel();
  LargeCheckReport make_report(bool require_complete);

  std::unique_ptr<Computation> c_;
  SessionOptions opts_;
  std::size_t n_ = 0;
  std::uint32_t checked_ = 0;  // models clipped to kLargeCheckExt
  std::uint32_t base_ = 0;     // composite-expanded base bits
  bool want_fresh_ = false;
  bool want_masks_ = false;

  std::unique_ptr<LazyOracle> oracle_;  // once_flag member: pin the address
  std::string predicted_oracle_;
  double eager_oracle_ms_ = 0.0;

  std::vector<NodeId> topo_;           // scan order (batch-identical)
  std::vector<std::uint32_t> posv_;    // node -> scan position (iff !iota)
  Csr pred_;
  Csr succ_;
  LocationGroups groups_;
  std::vector<std::uint32_t> wblock_;
  std::vector<std::uint32_t> wloc_;
  LocKernelCtx kctx_;

  // Event -> written-location index resolution, precomputed per node so
  // the per-batch column fill never touches the op table.
  static constexpr std::uint32_t kNoLoc = 0xFFFFFFFFu;
  std::vector<std::uint32_t> nloc_of_;   // index into groups_.locs
  std::vector<std::uint8_t> is_write_;

  // Per-location states, sorted by location: every written location up
  // front (batch task order), never-written read targets spliced in
  // lazily when their first recorded observation arrives.
  std::vector<std::unique_ptr<Loc>> states_;
  LocArena arena_;

  std::vector<std::uint8_t> arrived_;
  std::uint64_t events_seen_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint32_t watermark_ = 0;   // arrived-prefix length in scan order
  std::uint32_t consumed_ = 0;    // == watermark_ after advance_kernel()
  std::string error_;

  std::vector<BinaryTraceEvent> retained_;

  // Stage accounting folded into reports (mirrors the batch fields).
  double group_build_ms_ = 0.0;
  double ingest_ms_ = 0.0;
  double kernel_ms_ = 0.0;
  double active_ms_ = 0.0;  // total time spent inside feed()/check()
};

}  // namespace ccmm
