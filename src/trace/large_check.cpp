#include "trace/large_check.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <span>
#include <thread>

#include "dag/sweep.hpp"
#include "trace/loc_kernel.hpp"
#include "util/numa.hpp"
#include "util/resource.hpp"
#include "util/ring_buffer.hpp"
#include "util/str.hpp"

namespace ccmm {
namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Events per pipeline chunk. Large enough that ring/mutex traffic is
/// noise, small enough that a chunk of topo slots plus its pred edges
/// stays cache-resident while every location's kernel walks it.
constexpr std::uint32_t kChunkNodes = 1u << 17;

/// Below this the whole check is a few milliseconds and thread spawn
/// plus ring handshakes would dominate: run the chunk loop inline.
constexpr std::size_t kPipelineMinNodes = std::size_t{1} << 14;

/// One unit of sharded work: a location, its dense Φ column (nullptr
/// when the observer stores no column for it, i.e. the column is all-⊥)
/// and its writers in id order — a slice of the LocationGroups arena,
/// never a per-task Computation::writers() rescan.
struct LocTask {
  Location loc = 0;
  const std::vector<NodeId>* col = nullptr;
  std::span<const NodeId> writers;
};

/// One ring slot: a chunk of topological positions plus every task's
/// staged blocks and validity (the producer owns the column-bound half
/// of the scan; consumers never touch a Φ column or the oracle).
struct ChunkStage {
  std::uint32_t pos0 = 0;
  std::uint32_t pos1 = 0;
  std::vector<LocChunkStage> stages;  // indexed by task
};

/// The oracle kind make_oracle would pick, when that is decidable
/// without building anything — the lazy path still reports it. Empty
/// means unpredictable (kAuto's chain-cover probe), so build eagerly.
std::string predicted_oracle_kind(const Computation& c,
                                  const OracleOptions& options) {
  switch (options.choice) {
    case OracleChoice::kClosure:
      return "closure";
    case OracleChoice::kSpOrder:
      return "sp-order";
    case OracleChoice::kChain:
      return "chain";
    case OracleChoice::kAuto:
      break;
  }
  const SpStructure* sp = c.sp_structure().get();
  if (sp != nullptr && sp->node_count == c.node_count()) return "sp-order";
  if (c.node_count() <= options.closure_threshold) return "closure";
  return {};
}

const char* pred_label(std::uint32_t bit) { return ModelSuite::bit_name(bit); }

std::size_t csr_bytes_of(const Csr& csr) {
  return csr.head.capacity() * sizeof(std::uint32_t) +
         csr.tgt.capacity() * sizeof(NodeId);
}

}  // namespace

LargeCheckReport large_check(const Computation& c, const ObserverFunction& phi,
                             const LargeCheckOptions& options) {
  const auto t0 = Clock::now();
  LargeCheckReport report;
  report.checked = options.models & kLargeCheckExt;
  const std::size_t n = c.node_count();
  if (phi.node_count() != n) {
    report.detail = "observer function and computation disagree on node count";
    report.total_millis = millis_since(t0);
    return report;
  }

  // The oracle is lazy: condition 2.2 only consults it for pairs whose
  // observed write sits later in the scan order, and on trace-shaped
  // observers that set is empty — the build (often the largest fixed
  // cost of a postmortem) then never happens and its bytes drop out of
  // the footprint. The reported kind is the one make_oracle would
  // pick; only kAuto's chain-cover probe is unpredictable, and that
  // one case builds eagerly.
  const std::string predicted = predicted_oracle_kind(c, options.oracle);
  const auto t_oracle = Clock::now();
  const LazyOracle oracle =
      predicted.empty()
          ? LazyOracle(make_oracle(c.dag(), c.sp_structure().get(),
                                   options.oracle))
          : LazyOracle([&c, &options] {
              return make_oracle(c.dag(), c.sp_structure().get(),
                                 options.oracle);
            });
  const double eager_oracle_ms = millis_since(t_oracle);

  const auto t_group = Clock::now();
  std::vector<NodeId> topo;
  if (c.dag().ids_topological()) {
    topo.resize(n);
    std::iota(topo.begin(), topo.end(), NodeId{0});
  } else {
    topo = c.dag().topological_order();
  }

  // The composites expand to the base bits their scans decide; the
  // per-location fold clips back to the requested mask.
  std::uint32_t base = report.checked & kLargeCheckAll;
  if ((report.checked & kSuiteWNPlus) != 0) base |= kSuiteWN;
  if ((report.checked & kSuiteNNPlus) != 0) base |= kSuiteNN;
  const bool want_fresh = (report.checked & kLargeCheckPlus) != 0;

  // Flatten the edges once for every location to share. The incremental
  // kernel classifies quotient edges and carries the freshness shadow
  // over predecessors, so pred is the workhorse CSR; succ is only
  // needed for the mask models' backward sweep — an LC-only postmortem
  // (the 128M headline) never materializes it.
  const bool want_masks =
      (base & (kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW)) != 0;
  const bool want_lc = (base & kSuiteLC) != 0;
  Csr succ;
  Csr pred;
  if (want_masks) succ = make_succ_csr(c.dag());
  if (want_lc || want_masks || want_fresh) pred = make_pred_csr(c.dag());
  report.csr_bytes = csr_bytes_of(succ) + csr_bytes_of(pred);
  const SimdLevel simd = options.simd.value_or(active_simd_level());
  report.simd = simd_level_name(simd);

  // Worklist: written locations (an absent column fails 2.3 there) plus
  // every stored column with a non-⊥ entry (an unexpected observation
  // must fail 2.1, so it cannot be skipped either). The grouping arena
  // hands every task a slice of its flat writer array — one O(n) scan
  // and seven allocations total instead of two vectors per location.
  const LocationGroups groups = group_location_accesses(c);
  report.groups_bytes = groups.memory_bytes();
  const auto writers_of = [&](Location l) -> std::span<const NodeId> {
    const auto it = std::lower_bound(groups.locs.begin(), groups.locs.end(), l);
    if (it == groups.locs.end() || *it != l) return {};
    return groups.writers(
        static_cast<std::size_t>(it - groups.locs.begin()));
  };
  std::vector<LocTask> tasks;
  {
    const std::vector<Location>& stored = phi.stored_locations();
    std::size_t si = 0;
    const auto stored_task = [&](std::size_t i) {
      return LocTask{stored[i], &phi.stored_column(i), writers_of(stored[i])};
    };
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const std::span<const NodeId> wr = groups.writers(gi);
      if (wr.empty()) continue;  // read-only: no column required
      const Location l = groups.locs[gi];
      while (si < stored.size() && stored[si] < l) {
        const LocTask t = stored_task(si++);
        if (std::any_of(t.col->begin(), t.col->end(),
                        [](NodeId x) { return x != kBottom; }))
          tasks.push_back(t);
      }
      if (si < stored.size() && stored[si] == l)
        tasks.push_back(stored_task(si++));
      else
        tasks.push_back(LocTask{l, nullptr, wr});
    }
    for (; si < stored.size(); ++si) {
      const LocTask t = stored_task(si);
      if (std::any_of(t.col->begin(), t.col->end(),
                      [](NodeId x) { return x != kBottom; }))
        tasks.push_back(t);
    }
  }
  report.locations.resize(tasks.size());

  // The shared writer→block and writer→location maps (a node writes at
  // most one location, so two n-entry arrays serve every task at once —
  // `wblock[u] != 0 && wloc[u] == l` replaces every op-table probe in
  // the hot loops) and, when ids are not already topological, the
  // node→position inverse. These are what let the chunk-major scan ask
  // "which block" in O(1) with no per-location O(n) load/restore.
  std::vector<std::uint32_t> wblock(n, 0);
  std::vector<std::uint32_t> wloc(n, 0);
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const std::span<const NodeId> wr = groups.writers(gi);
    const Location l = groups.locs[gi];
    for (std::size_t i = 0; i < wr.size(); ++i) {
      wblock[wr[i]] = static_cast<std::uint32_t>(i) + 1;
      wloc[wr[i]] = l;
    }
  }
  std::vector<std::uint32_t> posv;
  const std::uint32_t* pos_of = nullptr;
  if (!c.dag().ids_topological()) {
    posv.resize(n);
    for (std::uint32_t p = 0; p < n; ++p) posv[topo[p]] = p;
    pos_of = posv.data();
  }
  report.aux_bytes = (wblock.capacity() + wloc.capacity() +
                      posv.capacity()) * sizeof(std::uint32_t);
  report.group_build_millis = millis_since(t_group);

  const LocKernelCtx kctx{
      &c,    &oracle,       &topo,       pos_of,         &pred,      &succ,
      wblock.data(), wloc.data(), base, report.checked, want_fresh, simd};

  // Shard layout: the pipelined engine overlaps ingest (trace-order
  // validation + oracle batches, on the caller thread) with kernel
  // advancement (one dedicated consumer thread per shard, every shard
  // seeing every chunk through a bounded broadcast ring). Dedicated
  // threads, not pool tasks: a consumer blocks on the ring, and a
  // blocking task on a shared pool can deadlock concurrent checks.
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_pool();
  const bool pipelined = options.parallel && pool.size() >= 2 &&
                         !tasks.empty() && n >= kPipelineMinNodes;
  std::uint32_t chunk =
      options.chunk_nodes != 0 ? options.chunk_nodes : kChunkNodes;
  if (options.chunk_nodes == 0 && pipelined) {
    // The ring holds up to 5 staged chunks (4 slots + the one being
    // built), each tasks*chunk*4 bytes of blk arrays. Budget that at
    // ~16 B/node so small pipelined traces are not dominated by fixed
    // staging memory; large traces keep the full default chunk.
    const std::uint64_t budget =
        std::uint64_t{n} * 4 / (5 * tasks.size());
    chunk = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        budget, std::uint64_t{4096}, std::uint64_t{kChunkNodes}));
  }
  const std::size_t nshards =
      tasks.empty() ? 0
                    : (pipelined ? std::min(tasks.size(), pool.size())
                                 : std::size_t{1});
  report.shards = nshards;
  report.pipelined = pipelined;
  const NumaTopology& numa = numa_topology();
  report.numa = numa.to_string();

  double ingest_ms = 0.0;
  double kernel_ms = 0.0;
  double report_ms = 0.0;
  std::size_t scratch_peak = 0;

  if (nshards > 0 && !pipelined) {
    // Serial chunk-major scan: same chunk loop as the pipeline, with
    // the prestage inlined. One arena, states advanced in task order —
    // byte-identical verdicts to the pipelined run.
    LocArena arena;
    std::vector<LocState> states(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
      states[i].init(kctx, tasks[i].loc, tasks[i].col, tasks[i].writers);
    // One staging buffer for every task: each task's staged blocks are
    // consumed by its advance immediately (still hot in cache), so the
    // scan never holds more than one chunk's blk array — without this
    // the per-task buffers alone cost tasks*n*4 bytes on small traces.
    LocChunkStage staged;
    for (std::uint32_t p0 = 0; p0 < n; p0 += chunk) {
      const std::uint32_t p1 =
          static_cast<std::uint32_t>(std::min<std::size_t>(n, p0 + chunk));
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto ti = Clock::now();
        stage_chunk(kctx, tasks[i].loc, tasks[i].col, p0, p1, arena, staged);
        ingest_ms += millis_since(ti);
        const auto tk = Clock::now();
        states[i].advance(p0, p1, arena, &staged);
        kernel_ms += millis_since(tk);
      }
      if (options.progress) options.progress(p1, n);
    }
    const auto tr = Clock::now();
    std::size_t state_bytes =
        staged.blk.capacity() * sizeof(std::uint32_t);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      states[i].finalize_into(report.locations[i], arena);
      state_bytes += states[i].memory_bytes();
    }
    report_ms += millis_since(tr);
    arena.note_peak();
    scratch_peak = arena.peak_bytes + state_bytes;
  } else if (nshards > 0) {
    // Pack tasks onto the shards in longest-processing-time order. Cost
    // model: every task pays an O(n) kernel pass (1 unit) plus one
    // sweep per 256-block batch when mask models are requested.
    std::vector<std::size_t> cost(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
      cost[i] = 1 + (want_masks
                         ? (tasks[i].writers.size() + kSweepBits) / kSweepBits
                         : 0);
    std::vector<std::size_t> by_cost(tasks.size());
    std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cost[a] > cost[b];
                     });
    std::vector<std::vector<std::size_t>> shard_tasks(nshards);
    std::vector<std::size_t> shard_load(nshards, 0);
    for (const std::size_t i : by_cost) {
      const std::size_t s = static_cast<std::size_t>(
          std::min_element(shard_load.begin(), shard_load.end()) -
          shard_load.begin());
      shard_tasks[s].push_back(i);
      shard_load[s] += cost[i];
    }

    const std::vector<std::size_t> plan = plan_shard_placement(nshards, numa);
    BroadcastRing<std::shared_ptr<const ChunkStage>> ring(4, nshards);
    std::vector<double> sh_kernel(nshards, 0.0);
    std::vector<double> sh_report(nshards, 0.0);
    std::vector<std::size_t> sh_bytes(nshards, 0);
    std::vector<std::thread> workers;
    workers.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
      workers.emplace_back([&, s] {
        // Pin to the shard's NUMA node BEFORE the first allocation:
        // the arena and states below are first-touched inside the
        // binding, so their pages land on the node that re-reads them
        // every chunk. Single-node topologies make this a no-op.
        const NumaBinding bind(numa, plan[s]);
        const std::vector<std::size_t>& mine = shard_tasks[s];
        LocArena arena;
        std::vector<LocState> states(mine.size());
        for (std::size_t k = 0; k < mine.size(); ++k)
          states[k].init(kctx, tasks[mine[k]].loc, tasks[mine[k]].col,
                         tasks[mine[k]].writers);
        std::shared_ptr<const ChunkStage> st;
        while (ring.pop(s, st)) {
          const auto tk = Clock::now();
          for (std::size_t k = 0; k < mine.size(); ++k)
            states[k].advance(st->pos0, st->pos1, arena,
                              &st->stages[mine[k]]);
          sh_kernel[s] += millis_since(tk);
        }
        const auto tr = Clock::now();
        std::size_t bytes = 0;
        for (std::size_t k = 0; k < mine.size(); ++k) {
          states[k].finalize_into(report.locations[mine[k]], arena);
          bytes += states[k].memory_bytes();
        }
        sh_report[s] = millis_since(tr);
        arena.note_peak();
        sh_bytes[s] = arena.peak_bytes + bytes;
      });
    }

    // Producer: stage the column-bound half of the scan for every
    // task, chunk by chunk, blocking only on ring backpressure.
    LocArena parena;
    std::size_t stage_bytes = 0;
    for (std::uint32_t p0 = 0; p0 < n; p0 += chunk) {
      const std::uint32_t p1 =
          static_cast<std::uint32_t>(std::min<std::size_t>(n, p0 + chunk));
      const auto ti = Clock::now();
      auto st = std::make_shared<ChunkStage>();
      st->pos0 = p0;
      st->pos1 = p1;
      st->stages.resize(tasks.size());
      for (std::size_t i = 0; i < tasks.size(); ++i)
        stage_chunk(kctx, tasks[i].loc, tasks[i].col, p0, p1, parena,
                    st->stages[i]);
      std::size_t sb = 0;
      for (const LocChunkStage& sg : st->stages)
        sb += sg.blk.capacity() * sizeof(std::uint32_t);
      stage_bytes = std::max(stage_bytes, sb);
      ingest_ms += millis_since(ti);
      ring.push(std::move(st));
      if (options.progress) options.progress(p1, n);
    }
    ring.close();
    for (std::thread& w : workers) w.join();
    kernel_ms = *std::max_element(sh_kernel.begin(), sh_kernel.end());
    report_ms = *std::max_element(sh_report.begin(), sh_report.end());
    parena.note_peak();
    // Up to 4 staged chunks live in the ring plus the one being built
    // — fewer when the whole trace fits in fewer chunks.
    const std::size_t in_flight = std::min<std::size_t>(
        5, (n + chunk - 1) / chunk);
    scratch_peak = std::max(
        *std::max_element(sh_bytes.begin(), sh_bytes.end()),
        parena.peak_bytes + stage_bytes * in_flight);
  }

  report.scratch_peak_bytes = scratch_peak;
  report.ingest_millis += ingest_ms;
  report.kernel_millis = kernel_ms;
  report.report_millis = report_ms;

  // Oracle accounting: real numbers when it was built (eagerly or on a
  // 2.2 flush), the predicted kind and zero bytes when the scan never
  // needed it.
  if (oracle.built()) {
    report.oracle_kind = oracle.get().kind();
    report.oracle_memory_bytes = oracle.get().memory_bytes();
    report.oracle_build_millis =
        predicted.empty() ? eager_oracle_ms : oracle.build_millis();
  } else {
    report.oracle_kind = predicted;
  }

  report.valid_observer = true;
  std::uint32_t violated = 0;
  for (const LocationCheck& lc : report.locations) {
    if (!lc.valid) report.valid_observer = false;
    violated |= lc.violated;
    if (report.detail.empty() && !lc.detail.empty()) report.detail = lc.detail;
  }
  report.satisfied = report.valid_observer ? (report.checked & ~violated) : 0;
  report.peak_rss_bytes = current_peak_rss_bytes();
  if (n > 0)
    report.bytes_per_node =
        static_cast<double>(report.csr_bytes + report.groups_bytes +
                            report.scratch_peak_bytes * report.shards +
                            report.aux_bytes + report.oracle_memory_bytes) /
        static_cast<double>(n);
  report.total_millis = millis_since(t0);
  return report;
}

std::string LargeCheckReport::to_string() const {
  std::string out;
  out += format("oracle: %s (%zu bytes, built in %.2f ms)\n",
                oracle_kind.c_str(), oracle_memory_bytes, oracle_build_millis);
  out += format(
      "data plane: %s kernels, %zu shards%s, %.1f B/node "
      "(csr %zu + groups %zu + scratch %zu x %zu + aux %zu + oracle %zu)\n",
      simd.c_str(), shards, pipelined ? " (pipelined)" : "", bytes_per_node,
      csr_bytes, groups_bytes, scratch_peak_bytes, shards, aux_bytes,
      oracle_memory_bytes);
  out += format(
      "stages: ingest %.2f ms, group build %.2f ms, kernel %.2f ms, "
      "report %.2f ms; numa: %s\n",
      ingest_millis, group_build_millis, kernel_millis, report_millis,
      numa.c_str());
  if (peak_rss_bytes != 0)
    out += format("peak rss: %.1f MiB\n",
                  static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0));
  out += format("observer: %s\n", valid_observer ? "valid" : "INVALID");
  if (valid_observer) {
    for (std::uint32_t bit = 1; bit != 0 && bit <= checked; bit <<= 1) {
      if ((checked & bit) == 0) continue;
      out += format("  %-3s %s\n", ModelSuite::bit_name(bit),
                    (satisfied & bit) != 0 ? "holds" : "VIOLATED");
    }
  }
  if (!detail.empty()) out += "  " + detail + "\n";
  TextTable t({"loc", "writers", "valid", "violated", "ms"});
  for (const LocationCheck& lc : locations) {
    std::string v;
    for (std::uint32_t bit = 1; bit != 0 && bit <= lc.violated; bit <<= 1)
      if ((lc.violated & bit) != 0) {
        if (!v.empty()) v += ",";
        v += pred_label(bit);
      }
    t.add_row({format("%u", lc.loc), format("%zu", lc.writers),
               lc.valid ? "yes" : "no", v.empty() ? "-" : v,
               format("%.2f", lc.millis)});
  }
  out += t.render();
  out += format("total: %.2f ms over %zu locations\n", total_millis,
                locations.size());
  return out;
}

ObserverFunction observer_from_trace(const Computation& c, const Trace& trace) {
  const std::size_t n = c.node_count();
  ObserverFunction phi(n);
  const std::vector<Location> locs = c.written_locations();

  // Events in execution order, as indices (events naming unknown nodes
  // are dropped, as before). Simulator and binary traces are already
  // seq-sorted; skip the sort for them.
  std::vector<std::uint32_t> order;
  order.reserve(trace.events.size());
  bool sorted = true;
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    if (e.node >= n) continue;
    if (!order.empty() && e.seq < prev_seq) sorted = false;
    prev_seq = e.seq;
    order.push_back(static_cast<std::uint32_t>(i));
  }
  if (!sorted)
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return trace.events[a].seq < trace.events[b].seq;
                     });

  // Resolve each kept event's accessed location to its index in `locs`
  // once (kNoLoc for nops and accesses to never-written locations), so
  // the column fills below never touch the op table or binary-search.
  constexpr std::uint32_t kNoLoc = 0xFFFFFFFFu;
  std::vector<std::uint32_t> eloc(order.size(), kNoLoc);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Op o = c.op(trace.events[order[k]].node);
    if (o.is_nop()) continue;
    const auto it = std::lower_bound(locs.begin(), locs.end(), o.loc);
    if (it != locs.end() && *it == o.loc)
      eloc[k] = static_cast<std::uint32_t>(it - locs.begin());
  }

  // One pass per written location, carrying the last write: recorded
  // observations win, writes self-observe (2.3), everything else gets
  // the carried write — the value the node would have seen. This fills
  // dense columns directly (installed whole via set_column) instead of
  // per-entry phi.set calls that re-search the location list 10⁸ times
  // on a large trace.
  for (std::size_t i = 0; i < locs.size(); ++i) {
    std::vector<NodeId> col(n, kBottom);
    NodeId last = kBottom;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const TraceEvent& e = trace.events[order[k]];
      const NodeId u = e.node;
      if (eloc[k] != i) {
        if (last != kBottom) col[u] = last;
        continue;
      }
      if (c.op(u).is_write()) {
        col[u] = u;
        last = u;
      } else if (e.observed != kBottom && e.observed < n) {
        col[u] = e.observed;
      }
    }
    phi.set_column(locs[i], std::move(col));
  }
  // Recorded observations at never-written locations still land in Φ
  // (they must fail 2.1 later, so they cannot be dropped here).
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (eloc[k] != kNoLoc) continue;
    const TraceEvent& e = trace.events[order[k]];
    const Op o = c.op(e.node);
    if (o.is_read() && e.observed != kBottom && e.observed < n)
      phi.set(o.loc, e.node, e.observed);
  }
  // Writes self-observe even when the trace omits their event entirely.
  for (NodeId u = 0; u < n; ++u)
    if (c.op(u).is_write()) phi.set(c.op(u).loc, u, u);
  return phi;
}

LargeCheckReport large_check_trace(const Computation& c, const Trace& trace,
                                   const LargeCheckOptions& options) {
  const auto t0 = Clock::now();
  std::string why;
  if (!trace_consistent_with(trace, c, &why)) {
    LargeCheckReport report;
    report.checked = options.models & kLargeCheckExt;
    report.detail = "trace does not fit the computation: " + why;
    return report;
  }
  const ObserverFunction phi = observer_from_trace(c, trace);
  const double decode_ms = millis_since(t0);
  LargeCheckReport report = large_check(c, phi, options);
  report.ingest_millis += decode_ms;
  return report;
}

}  // namespace ccmm
