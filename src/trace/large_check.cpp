#include "trace/large_check.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <numeric>

#include "trace/loc_kernel.hpp"
#include "util/str.hpp"

namespace ccmm {
namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One unit of sharded work: a location, its dense Φ column (nullptr
/// when the observer stores no column for it, i.e. the column is all-⊥)
/// and its writers in id order (from the one-pass location grouping —
/// never a per-task Computation::writers() rescan).
struct LocTask {
  Location loc = 0;
  const std::vector<NodeId>* col = nullptr;
  const std::vector<NodeId>* writers = nullptr;
};

NodeId column_get(const LocTask& t, NodeId u) {
  return t.col == nullptr ? kBottom : (*t.col)[u];
}

const char* pred_label(std::uint32_t bit) { return ModelSuite::bit_name(bit); }

/// Check one location. `topo` is a topological order of the dag (node
/// ids, every node once). Everything here is read-only on the shared
/// computation/oracle and writes only to `out`, so tasks for different
/// locations run concurrently without synchronization.
void check_location(const Computation& c, const std::vector<NodeId>& topo,
                    const PrecedenceOracle& oracle, std::uint32_t models,
                    const LocTask& task, LocationCheck& out) {
  const auto t0 = Clock::now();
  const std::size_t n = c.node_count();
  const Location l = task.loc;
  out.loc = l;

  const std::vector<NodeId>& writers = *task.writers;
  out.writers = writers.size();
  const auto writer_block = [&](NodeId x) -> std::uint32_t {
    // Block j+1 is the j-th writer in id order (block 0 = B_⊥);
    // writers is sorted, so a binary search recovers the index.
    const auto it = std::lower_bound(writers.begin(), writers.end(), x);
    if (it == writers.end() || *it != x) return 0;  // not a writer of l
    return static_cast<std::uint32_t>(it - writers.begin()) + 1;
  };

  // --- Definition 2 validity for this column + the block partition. ---
  std::vector<std::uint32_t> block_of(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId x = column_get(task, u);
    if (x == kBottom) {
      if (c.op(u).writes(l)) {  // 2.3
        out.valid = false;
        out.detail = format("write %u does not observe itself at location %u",
                            u, l);
        break;
      }
      continue;
    }
    const std::uint32_t b = x < n ? writer_block(x) : 0;
    if (b == 0) {  // 2.1
      out.valid = false;
      out.detail = format(
          "Φ(%u, %u) = %u, which is not a write to location %u", l, u, x, l);
      break;
    }
    if (c.op(u).writes(l) && x != u) {  // 2.3
      out.valid = false;
      out.detail = format("write %u does not observe itself at location %u",
                          u, l);
      break;
    }
    if (oracle.precedes(u, x)) {  // 2.2 — the oracle's production use
      out.valid = false;
      out.detail = format(
          "node %u precedes its observed write %u at location %u", u, x, l);
      break;
    }
    block_of[u] = b;
  }
  if (!out.valid) {
    out.millis = millis_since(t0);
    return;
  }
  const std::size_t nblocks = writers.size() + 1;
  const Dag& dag = c.dag();

  const auto record = [&](std::uint32_t bit, std::string detail) {
    out.violated |= bit;
    if (out.detail.empty()) out.detail = std::move(detail);
  };

  // --- LC: the block-quotient Kahn scan (same semantics as
  // detail::lc_quotient_sortable, on deduplicated cross-block edges). ---
  if ((models & kSuiteLC) != 0) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> qedges;
    for (NodeId u = 0; u < n; ++u) {
      const std::uint32_t bu = block_of[u];
      for (const NodeId s : dag.succ(u))
        if (block_of[s] != bu) qedges.emplace_back(bu, block_of[s]);
    }
    std::sort(qedges.begin(), qedges.end());
    qedges.erase(std::unique(qedges.begin(), qedges.end()), qedges.end());

    std::vector<std::uint32_t> indeg(nblocks, 0);
    std::vector<std::uint32_t> head(nblocks + 1, 0);
    for (const auto& [bu, bv] : qedges) {
      ++head[bu + 1];
      ++indeg[bv];
    }
    for (std::size_t b = 0; b < nblocks; ++b) head[b + 1] += head[b];

    bool ok = indeg[0] == 0;  // B_⊥ must be placeable first
    if (ok) {
      std::vector<std::uint32_t> stack;
      std::vector<char> emitted(nblocks, 0);
      stack.push_back(0);
      emitted[0] = 1;
      std::size_t drained = 0;
      while (!stack.empty()) {
        const std::uint32_t b = stack.back();
        stack.pop_back();
        ++drained;
        for (std::uint32_t i = head[b]; i < head[b + 1]; ++i) {
          const std::uint32_t y = qedges[i].second;
          if (--indeg[y] == 0 && emitted[y] == 0) {
            emitted[y] = 1;
            stack.push_back(y);
          }
        }
        if (stack.empty()) {
          for (std::uint32_t y = 1; y < nblocks; ++y)
            if (emitted[y] == 0 && indeg[y] == 0) {
              emitted[y] = 1;
              stack.push_back(y);
            }
        }
      }
      ok = drained == nblocks;
    }
    if (!ok)
      record(kSuiteLC,
             format("LC violated at location %u: the Φ-block quotient admits "
                    "no serialization with B_⊥ first",
                    l));
  }

  // --- NN/NW/WN/WW: per-node block masks, 64 blocks per sweep. For a
  // block b with writer x (b ≥ 1) and a candidate v ∉ B_b:
  //   WN breaks iff x ≺ v and some member of B_b succeeds v;
  //   NN breaks iff some member of B_b both precedes and succeeds v
  //       (plus the u = ⊥ branch for b = 0: any v ∉ B_⊥ with a
  //       ⊥-observing node after it);
  //   NW/WW are the same with v restricted to writers of l.
  // So with A[v]/D[v]/W[v] = the blocks with a member strictly before v /
  // a member strictly after v / their writer strictly before v, the
  // violation tests are pure mask arithmetic — no precedence queries. ---
  std::uint32_t remaining =
      models & (kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW);
  if (remaining != 0) {
    const bool need_anc = (remaining & (kSuiteNN | kSuiteNW)) != 0;
    const bool need_wri = (remaining & (kSuiteWN | kSuiteWW)) != 0;
    const std::size_t ngroups = (nblocks + 63) / 64;
    std::vector<std::uint64_t> anc_mask(need_anc ? n : 0);
    std::vector<std::uint64_t> wri_mask(need_wri ? n : 0);
    std::vector<std::uint64_t> desc_mask(n);

    for (std::size_t g = 0; g < ngroups && remaining != 0; ++g) {
      const std::uint32_t base = static_cast<std::uint32_t>(g) * 64;
      const auto member_bit = [&](NodeId p) -> std::uint64_t {
        const std::uint32_t b = block_of[p];
        return b - base < 64 ? std::uint64_t{1} << (b - base) : 0;
      };
      const auto writer_bit = [&](NodeId p) -> std::uint64_t {
        // A writer always sits in its own block.
        return c.op(p).writes(l) ? member_bit(p) : 0;
      };
      // Reflexive reach masks from the shared kernel (trace/loc_kernel):
      // which of this group's blocks have a member (resp. their writer)
      // at-or-before / at-or-after v. Every violation test below masks
      // out v's own block bit, and for foreign blocks reflexive reach
      // equals the strict reach the derivation is stated over.
      if (need_anc && need_wri) {
        sweep_reach_forward2(dag, topo, member_bit, writer_bit,
                             anc_mask.data(), wri_mask.data());
      } else if (need_anc) {
        sweep_reach_forward(dag, topo, member_bit, anc_mask.data());
      } else {
        sweep_reach_forward(dag, topo, writer_bit, wri_mask.data());
      }
      sweep_reach_backward(dag, topo, member_bit, desc_mask.data());
      const std::uint64_t bot_bit = g == 0 ? std::uint64_t{1} : 0;
      for (NodeId v = 0; v < n && remaining != 0; ++v) {
        const std::uint64_t not_self = ~member_bit(v);
        const std::uint64_t d = desc_mask[v];
        if (need_wri) {
          const std::uint64_t bad = wri_mask[v] & d & not_self;
          if (bad != 0) {
            const std::uint32_t b =
                base + static_cast<std::uint32_t>(std::countr_zero(bad));
            const NodeId x = writers[b - 1];
            if ((remaining & kSuiteWN) != 0)
              record(kSuiteWN,
                     format("WN violated at location %u: u=%u, v=%u (the "
                            "write precedes v, Φ⁻¹(%u) reaches past it)",
                            l, x, v, x));
            if ((remaining & kSuiteWW) != 0 && c.op(v).writes(l))
              record(kSuiteWW,
                     format("WW violated at location %u: u=%u, v=%u", l, x,
                            v));
            remaining &= ~(out.violated & kSuiteWN);
            remaining &= ~(out.violated & kSuiteWW);
          }
        }
        if ((remaining & (kSuiteNN | kSuiteNW)) != 0) {
          const std::uint64_t bad = (anc_mask[v] | bot_bit) & d & not_self;
          if (bad != 0) {
            const std::uint32_t b =
                base + static_cast<std::uint32_t>(std::countr_zero(bad));
            const std::string u_str =
                b == 0 ? std::string("_") : format("%u", writers[b - 1]);
            if ((remaining & kSuiteNN) != 0)
              record(kSuiteNN,
                     format("NN violated at location %u: u=%s, v=%u (v sits "
                            "between members of the same Φ-block)",
                            l, u_str.c_str(), v));
            if ((remaining & kSuiteNW) != 0 && c.op(v).writes(l))
              record(kSuiteNW,
                     format("NW violated at location %u: u=%s, v=%u", l,
                            u_str.c_str(), v));
            remaining &= ~(out.violated & kSuiteNN);
            remaining &= ~(out.violated & kSuiteNW);
          }
        }
      }
    }
  }
  out.millis = millis_since(t0);
}

}  // namespace

LargeCheckReport large_check(const Computation& c, const ObserverFunction& phi,
                             const LargeCheckOptions& options) {
  const auto t0 = Clock::now();
  LargeCheckReport report;
  report.checked = options.models & kLargeCheckAll;
  const std::size_t n = c.node_count();
  if (phi.node_count() != n) {
    report.detail = "observer function and computation disagree on node count";
    report.total_millis = millis_since(t0);
    return report;
  }

  const auto t_oracle = Clock::now();
  const std::unique_ptr<PrecedenceOracle> oracle =
      make_oracle(c.dag(), c.sp_structure().get(), options.oracle);
  report.oracle_kind = oracle->kind();
  report.oracle_memory_bytes = oracle->memory_bytes();
  report.oracle_build_millis = millis_since(t_oracle);

  std::vector<NodeId> topo;
  if (c.dag().ids_topological()) {
    topo.resize(n);
    std::iota(topo.begin(), topo.end(), NodeId{0});
  } else {
    topo = c.dag().topological_order();
  }

  // Worklist: written locations (an absent column fails 2.3 there) plus
  // every stored column with a non-⊥ entry (an unexpected observation
  // must fail 2.1, so it cannot be skipped either). The grouping pass
  // hands every task its writers up front — one O(n) scan total instead
  // of one per location.
  const std::vector<LocationAccess> groups = group_location_accesses(c);
  static const std::vector<NodeId> kNoWriters;
  const auto writers_of = [&](Location l) -> const std::vector<NodeId>* {
    const auto it = std::lower_bound(
        groups.begin(), groups.end(), l,
        [](const LocationAccess& g, Location x) { return g.loc < x; });
    return it != groups.end() && it->loc == l ? &it->writers : &kNoWriters;
  };
  std::vector<LocTask> tasks;
  {
    const std::vector<Location>& stored = phi.stored_locations();
    std::size_t si = 0;
    const auto stored_task = [&](std::size_t i) {
      return LocTask{stored[i], &phi.stored_column(i), writers_of(stored[i])};
    };
    for (const LocationAccess& g : groups) {
      if (g.writers.empty()) continue;  // read-only: no column required
      const Location l = g.loc;
      while (si < stored.size() && stored[si] < l) {
        const LocTask t = stored_task(si++);
        if (std::any_of(t.col->begin(), t.col->end(),
                        [](NodeId x) { return x != kBottom; }))
          tasks.push_back(t);
      }
      if (si < stored.size() && stored[si] == l)
        tasks.push_back(stored_task(si++));
      else
        tasks.push_back(LocTask{l, nullptr, &g.writers});
    }
    for (; si < stored.size(); ++si) {
      const LocTask t = stored_task(si);
      if (std::any_of(t.col->begin(), t.col->end(),
                      [](NodeId x) { return x != kBottom; }))
        tasks.push_back(t);
    }
  }

  report.locations.resize(tasks.size());
  const auto run_one = [&](std::size_t i) {
    check_location(c, topo, *oracle, report.checked, tasks[i],
                   report.locations[i]);
  };
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_pool();
  if (options.parallel && tasks.size() > 1 && pool.size() > 1) {
    pool.parallel_for(tasks.size(), run_one);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i);
  }

  report.valid_observer = true;
  std::uint32_t violated = 0;
  for (const LocationCheck& lc : report.locations) {
    if (!lc.valid) report.valid_observer = false;
    violated |= lc.violated;
    if (report.detail.empty() && !lc.detail.empty()) report.detail = lc.detail;
  }
  report.satisfied = report.valid_observer ? (report.checked & ~violated) : 0;
  report.total_millis = millis_since(t0);
  return report;
}

std::string LargeCheckReport::to_string() const {
  std::string out;
  out += format("oracle: %s (%zu bytes, built in %.2f ms)\n",
                oracle_kind.c_str(), oracle_memory_bytes, oracle_build_millis);
  out += format("observer: %s\n", valid_observer ? "valid" : "INVALID");
  if (valid_observer) {
    for (std::uint32_t bit = 1; bit != 0 && bit <= checked; bit <<= 1) {
      if ((checked & bit) == 0) continue;
      out += format("  %-3s %s\n", ModelSuite::bit_name(bit),
                    (satisfied & bit) != 0 ? "holds" : "VIOLATED");
    }
  }
  if (!detail.empty()) out += "  " + detail + "\n";
  TextTable t({"loc", "writers", "valid", "violated", "ms"});
  for (const LocationCheck& lc : locations) {
    std::string v;
    for (std::uint32_t bit = 1; bit != 0 && bit <= lc.violated; bit <<= 1)
      if ((lc.violated & bit) != 0) {
        if (!v.empty()) v += ",";
        v += pred_label(bit);
      }
    t.add_row({format("%u", lc.loc), format("%zu", lc.writers),
               lc.valid ? "yes" : "no", v.empty() ? "-" : v,
               format("%.2f", lc.millis)});
  }
  out += t.render();
  out += format("total: %.2f ms over %zu locations\n", total_millis,
                locations.size());
  return out;
}

ObserverFunction observer_from_trace(const Computation& c, const Trace& trace) {
  const std::size_t n = c.node_count();
  ObserverFunction phi(n);
  const std::vector<Location> locs = c.written_locations();

  std::vector<const TraceEvent*> order;
  order.reserve(trace.events.size());
  for (const TraceEvent& e : trace.events)
    if (e.node < n) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->seq < b->seq;
            });

  // One pass in execution order, carrying the last write per location:
  // recorded observations win, writes self-observe (2.3), everything
  // else gets the carried write — the value the node would have seen.
  std::vector<NodeId> last(locs.size(), kBottom);
  for (const TraceEvent* e : order) {
    const NodeId u = e->node;
    const Op o = c.op(u);
    for (std::size_t i = 0; i < locs.size(); ++i) {
      if (o.reads(locs[i]) || o.writes(locs[i])) continue;  // handled below
      if (last[i] != kBottom) phi.set(locs[i], u, last[i]);
    }
    if (o.is_write()) {
      phi.set(o.loc, u, u);
      const auto it = std::lower_bound(locs.begin(), locs.end(), o.loc);
      if (it != locs.end() && *it == o.loc)
        last[static_cast<std::size_t>(it - locs.begin())] = u;
    } else if (o.is_read() && e->observed != kBottom && e->observed < n) {
      phi.set(o.loc, e->node, e->observed);
    }
  }
  // Writes self-observe even when the trace omits their event entirely.
  for (NodeId u = 0; u < n; ++u)
    if (c.op(u).is_write()) phi.set(c.op(u).loc, u, u);
  return phi;
}

LargeCheckReport large_check_trace(const Computation& c, const Trace& trace,
                                   const LargeCheckOptions& options) {
  std::string why;
  if (!trace_consistent_with(trace, c, &why)) {
    LargeCheckReport report;
    report.checked = options.models & kLargeCheckAll;
    report.detail = "trace does not fit the computation: " + why;
    return report;
  }
  return large_check(c, observer_from_trace(c, trace), options);
}

}  // namespace ccmm
