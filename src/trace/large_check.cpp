#include "trace/large_check.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <numeric>
#include <span>

#include "dag/sweep.hpp"
#include "trace/loc_kernel.hpp"
#include "util/resource.hpp"
#include "util/str.hpp"

namespace ccmm {
namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Oracle queries per precedes_batch flush during the validity pass.
constexpr std::size_t kOracleBatch = 4096;

/// One unit of sharded work: a location, its dense Φ column (nullptr
/// when the observer stores no column for it, i.e. the column is all-⊥)
/// and its writers in id order — a slice of the LocationGroups arena,
/// never a per-task Computation::writers() rescan.
struct LocTask {
  Location loc = 0;
  const std::vector<NodeId>* col = nullptr;
  std::span<const NodeId> writers;
};

NodeId column_get(const LocTask& t, NodeId u) {
  return t.col == nullptr ? kBottom : (*t.col)[u];
}

const char* pred_label(std::uint32_t bit) { return ModelSuite::bit_name(bit); }

/// Everything read-only that every location task shares: the dag's
/// edges flattened into CSR arrays once per check (the sweeps and the
/// quotient build walk them as linear scans), a topological order, and
/// the dispatched kernel level.
struct SharedCtx {
  const Computation& c;
  const std::vector<NodeId>& topo;
  const PrecedenceOracle& oracle;
  const Csr& pred;
  const Csr& succ;
  /// Base bits (⊆ kLargeCheckAll) the scans must decide — includes WN
  /// when only WN⁺ was requested, etc.
  std::uint32_t models = 0;
  /// The caller-requested mask (⊆ kLargeCheckExt) the folded verdicts
  /// are clipped to.
  std::uint32_t checked = 0;
  /// Run the per-location freshness shadow pass.
  bool fresh = false;
  SimdLevel simd = SimdLevel::kScalar;
};

/// The per-shard scratch arena. One of these lives for a whole shard's
/// worth of locations: every vector is sized on first use and reused,
/// so checking 10⁶ locations costs O(shards) allocations, not O(locs).
struct LocScratch {
  std::vector<std::uint32_t> block_of;  // n: node -> its Φ-block
  std::vector<std::uint32_t> wblock;    // n: writer -> block id, 0 elsewhere
  std::vector<std::uint32_t> qhead;     // quotient CSR offsets
  std::vector<std::uint32_t> qcur;      // fill cursors
  std::vector<std::uint32_t> qtgt;      // quotient edge targets
  std::vector<std::uint32_t> indeg;     // quotient in-degrees
  std::vector<std::uint32_t> stack;     // Kahn worklist
  std::vector<std::uint64_t> anc;       // n × kSweepWords mask rows
  std::vector<std::uint64_t> wri;
  std::vector<std::uint64_t> desc;
  std::vector<std::uint8_t> shadow;     // n: node has a writer-ancestor
  std::vector<NodeId> bus;              // pending 2.2 batch: nodes
  std::vector<NodeId> bxs;              // pending 2.2 batch: observed writes
  std::vector<std::uint8_t> bout;       // batch answers
  std::size_t peak_bytes = 0;

  void note_peak() {
    const std::size_t words32 =
        block_of.capacity() + wblock.capacity() + qhead.capacity() +
        qcur.capacity() + qtgt.capacity() + indeg.capacity() +
        stack.capacity() + bus.capacity() + bxs.capacity();
    const std::size_t words64 =
        anc.capacity() + wri.capacity() + desc.capacity();
    peak_bytes = std::max(
        peak_bytes, words32 * sizeof(std::uint32_t) +
                        words64 * sizeof(std::uint64_t) + bout.capacity() +
                        shadow.capacity());
  }
};

/// The location check proper; wblock is already loaded for this task's
/// writers (and is restored by the caller).
void run_location(const SharedCtx& ctx, const LocTask& task, LocScratch& s,
                  LocationCheck& out) {
  const Computation& c = ctx.c;
  const std::size_t n = c.node_count();
  const Location l = task.loc;
  const std::span<const NodeId> writers = task.writers;

  // --- Definition 2 validity for this column + the block partition.
  // 2.1/2.3 are local and answered inline; the 2.2 precedence queries
  // are deferred into batches so the oracle can vectorize them. A
  // pending batch only ever holds nodes earlier than the current one,
  // so flushing before reporting a local failure preserves the exact
  // first-failing-node verdict of the scalar scan. ---
  const auto flush = [&]() -> bool {
    const std::size_t k = s.bus.size();
    if (k == 0) return true;
    s.bout.resize(k);
    ctx.oracle.precedes_batch(s.bus.data(), s.bxs.data(), k, s.bout.data());
    for (std::size_t i = 0; i < k; ++i) {
      if (s.bout[i] != 0) {  // 2.2 — the oracle's production use
        out.valid = false;
        out.detail =
            format("node %u precedes its observed write %u at location %u",
                   s.bus[i], s.bxs[i], l);
        return false;
      }
    }
    s.bus.clear();
    s.bxs.clear();
    return true;
  };
  const auto fail = [&](std::string detail) {
    if (!flush()) return;  // an earlier node's 2.2 failure wins
    out.valid = false;
    out.detail = std::move(detail);
  };
  for (NodeId u = 0; u < n && out.valid; ++u) {
    const NodeId x = column_get(task, u);
    if (x == kBottom) {
      s.block_of[u] = 0;
      if (c.op(u).writes(l))  // 2.3
        fail(format("write %u does not observe itself at location %u", u, l));
      continue;
    }
    const std::uint32_t b = x < n ? s.wblock[x] : 0;
    if (b == 0) {  // 2.1
      fail(format("Φ(%u, %u) = %u, which is not a write to location %u", l, u,
                  x, l));
      continue;
    }
    if (c.op(u).writes(l) && x != u) {  // 2.3
      fail(format("write %u does not observe itself at location %u", u, l));
      continue;
    }
    s.block_of[u] = b;
    if (x != u) {  // precedes(u, u) is always false; skip self pairs
      s.bus.push_back(u);
      s.bxs.push_back(x);
      if (s.bus.size() >= kOracleBatch && !flush()) break;
    }
  }
  if (out.valid) flush();
  if (!out.valid) return;

  const std::size_t nblocks = writers.size() + 1;
  const std::uint32_t* succ_head = ctx.succ.head.data();
  const NodeId* succ_tgt = ctx.succ.tgt.data();

  const auto record = [&](std::uint32_t bit, std::string detail) {
    out.violated |= bit;
    if (out.detail.empty()) out.detail = std::move(detail);
  };

  // --- LC: the block-quotient Kahn scan (same semantics as
  // detail::lc_quotient_sortable). The quotient is built as a counting
  // CSR with duplicate edges retained: indeg then counts parallel
  // edges, each is decremented exactly once during the drain, so every
  // block still hits zero exactly once — no sort, no dedup, no
  // emitted[] array. Blocks that never hit zero via edges are exactly
  // the static roots, pushed up front. ---
  if ((ctx.models & kSuiteLC) != 0) {
    s.indeg.assign(nblocks, 0);
    s.qhead.assign(nblocks + 1, 0);
    for (NodeId u = 0; u < n; ++u) {
      const std::uint32_t bu = s.block_of[u];
      for (std::uint32_t i = succ_head[u]; i < succ_head[u + 1]; ++i) {
        const std::uint32_t bv = s.block_of[succ_tgt[i]];
        if (bv != bu) {
          ++s.qhead[bu + 1];
          ++s.indeg[bv];
        }
      }
    }
    for (std::size_t b = 0; b < nblocks; ++b) s.qhead[b + 1] += s.qhead[b];

    bool ok = s.indeg[0] == 0;  // B_⊥ must be placeable first
    if (ok) {
      s.qtgt.resize(s.qhead[nblocks]);
      s.qcur.assign(s.qhead.begin(), s.qhead.end() - 1);
      for (NodeId u = 0; u < n; ++u) {
        const std::uint32_t bu = s.block_of[u];
        for (std::uint32_t i = succ_head[u]; i < succ_head[u + 1]; ++i) {
          const std::uint32_t bv = s.block_of[succ_tgt[i]];
          if (bv != bu) s.qtgt[s.qcur[bu]++] = bv;
        }
      }
      s.stack.clear();
      s.stack.push_back(0);
      for (std::size_t y = 1; y < nblocks; ++y)
        if (s.indeg[y] == 0) s.stack.push_back(static_cast<std::uint32_t>(y));
      std::size_t drained = 0;
      while (!s.stack.empty()) {
        const std::uint32_t b = s.stack.back();
        s.stack.pop_back();
        ++drained;
        for (std::uint32_t i = s.qhead[b]; i < s.qhead[b + 1]; ++i) {
          const std::uint32_t y = s.qtgt[i];
          if (--s.indeg[y] == 0) s.stack.push_back(y);
        }
      }
      ok = drained == nblocks;
    }
    if (!ok)
      record(kSuiteLC,
             format("LC violated at location %u: the Φ-block quotient admits "
                    "no serialization with B_⊥ first",
                    l));
  }

  // --- Freshness: one forward pass over the shared pred CSR carrying
  // "has a writer-ancestor" (strict: a writer shadows its descendants,
  // not itself). A ⊥-observing node inside the shadow is exactly a
  // violation of the axiom behind WN⁺/NN⁺ (models/wn_plus.hpp) — no
  // closure row, no per-location descendant union. ---
  if (ctx.fresh) {
    const std::uint32_t* pred_head = ctx.pred.head.data();
    const NodeId* pred_tgt = ctx.pred.tgt.data();
    s.shadow.assign(n, 0);
    bool fresh_bad = false;
    NodeId fresh_node = 0;
    for (const NodeId v : ctx.topo) {
      std::uint8_t sh = 0;
      for (std::uint32_t i = pred_head[v]; i < pred_head[v + 1] && sh == 0;
           ++i) {
        const NodeId u = pred_tgt[i];
        sh = (s.shadow[u] != 0 || s.wblock[u] != 0) ? 1 : 0;
      }
      s.shadow[v] = sh;
      if (sh != 0 && s.block_of[v] == 0 && !fresh_bad) {
        fresh_bad = true;
        fresh_node = v;
      }
    }
    if (fresh_bad)
      record(kSuiteFresh,
             format("freshness violated at location %u: node %u observes ⊥ "
                    "although a write precedes it",
                    l, fresh_node));
  }

  // --- NN/NW/WN/WW: per-node block masks, 256 blocks per sweep batch.
  // For a block b with writer x (b ≥ 1) and a candidate v ∉ B_b:
  //   WN breaks iff x ≺ v and some member of B_b succeeds v;
  //   NN breaks iff some member of B_b both precedes and succeeds v
  //       (plus the u = ⊥ branch for b = 0: any v ∉ B_⊥ with a
  //       ⊥-observing node after it);
  //   NW/WW are the same with v restricted to writers of l.
  // So with A[v]/D[v]/W[v] = the blocks with a member strictly before v /
  // a member strictly after v / their writer strictly before v, the
  // violation tests are pure mask arithmetic — no precedence queries.
  // Anchor bits are preset straight into the rows; the sweeps are the
  // shared W=4 kernels; the violation scan walks lanes of 64 blocks in
  // ascending order, so the first witness matches the old 64-wide scan
  // bit for bit. ---
  std::uint32_t remaining =
      ctx.models & (kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW);
  if (remaining != 0) {
    const bool need_anc = (remaining & (kSuiteNN | kSuiteNW)) != 0;
    const bool need_wri = (remaining & (kSuiteWN | kSuiteWW)) != 0;
    const std::size_t nbatches = (nblocks + kSweepBits - 1) / kSweepBits;
    s.desc.resize(n * kSweepWords);
    if (need_anc) s.anc.resize(n * kSweepWords);
    if (need_wri) s.wri.resize(n * kSweepWords);

    for (std::size_t g = 0; g < nbatches && remaining != 0; ++g) {
      const std::uint32_t base = static_cast<std::uint32_t>(g * kSweepBits);
      if (need_anc) std::fill(s.anc.begin(), s.anc.end(), 0);
      if (need_wri) std::fill(s.wri.begin(), s.wri.end(), 0);
      std::fill(s.desc.begin(), s.desc.end(), 0);
      for (NodeId u = 0; u < n; ++u) {
        const std::uint32_t b = s.block_of[u];
        const std::uint32_t rel = b - base;  // unsigned wrap culls b < base
        if (rel >= kSweepBits) continue;
        const std::size_t at = u * kSweepWords + (rel >> 6);
        const std::uint64_t bit = std::uint64_t{1} << (rel & 63);
        if (need_anc) s.anc[at] |= bit;
        s.desc[at] |= bit;
        // A writer always sits in its own block, so the writer bit of
        // block b belongs to node writers[b-1] and nobody else.
        if (need_wri && b != 0 && writers[b - 1] == u) s.wri[at] |= bit;
      }
      if (need_anc && need_wri) {
        sweep_forward2_w4(ctx.pred, ctx.topo, s.anc.data(), s.wri.data(),
                          ctx.simd);
      } else if (need_anc) {
        sweep_forward_w4(ctx.pred, ctx.topo, s.anc.data(), ctx.simd);
      } else {
        sweep_forward_w4(ctx.pred, ctx.topo, s.wri.data(), ctx.simd);
      }
      sweep_backward_w4(ctx.succ, ctx.topo, s.desc.data(), ctx.simd);

      for (std::size_t lane = 0; lane < kSweepWords && remaining != 0;
           ++lane) {
        const std::uint32_t lbase =
            base + static_cast<std::uint32_t>(lane * 64);
        if (lbase >= nblocks) break;
        const std::uint64_t bot_bit = lbase == 0 ? std::uint64_t{1} : 0;
        for (NodeId v = 0; v < n && remaining != 0; ++v) {
          const std::uint32_t rel = s.block_of[v] - lbase;
          const std::uint64_t not_self =
              ~(rel < 64 ? std::uint64_t{1} << rel : std::uint64_t{0});
          const std::uint64_t d = s.desc[v * kSweepWords + lane];
          if (need_wri) {
            const std::uint64_t bad =
                s.wri[v * kSweepWords + lane] & d & not_self;
            if (bad != 0) {
              const std::uint32_t b =
                  lbase + static_cast<std::uint32_t>(std::countr_zero(bad));
              const NodeId x = writers[b - 1];
              if ((remaining & kSuiteWN) != 0)
                record(kSuiteWN,
                       format("WN violated at location %u: u=%u, v=%u (the "
                              "write precedes v, Φ⁻¹(%u) reaches past it)",
                              l, x, v, x));
              if ((remaining & kSuiteWW) != 0 && c.op(v).writes(l))
                record(kSuiteWW,
                       format("WW violated at location %u: u=%u, v=%u", l, x,
                              v));
              remaining &= ~(out.violated & kSuiteWN);
              remaining &= ~(out.violated & kSuiteWW);
            }
          }
          if ((remaining & (kSuiteNN | kSuiteNW)) != 0) {
            const std::uint64_t bad =
                (s.anc[v * kSweepWords + lane] | bot_bit) & d & not_self;
            if (bad != 0) {
              const std::uint32_t b =
                  lbase + static_cast<std::uint32_t>(std::countr_zero(bad));
              const std::string u_str =
                  b == 0 ? std::string("_") : format("%u", writers[b - 1]);
              if ((remaining & kSuiteNN) != 0)
                record(kSuiteNN,
                       format("NN violated at location %u: u=%s, v=%u (v sits "
                              "between members of the same Φ-block)",
                              l, u_str.c_str(), v));
              if ((remaining & kSuiteNW) != 0 && c.op(v).writes(l))
                record(kSuiteNW,
                       format("NW violated at location %u: u=%s, v=%u", l,
                              u_str.c_str(), v));
              remaining &= ~(out.violated & kSuiteNN);
              remaining &= ~(out.violated & kSuiteNW);
            }
          }
        }
      }
    }
  }

  // WN⁺/NN⁺ are conjunctions of a base corner and freshness: fold the
  // scan verdicts, then clip to the caller's mask so an internal base
  // bit (WN computed only because WN⁺ wanted it) never leaks.
  if ((ctx.checked & kSuiteWNPlus) != 0 &&
      (out.violated & (kSuiteWN | kSuiteFresh)) != 0)
    out.violated |= kSuiteWNPlus;
  if ((ctx.checked & kSuiteNNPlus) != 0 &&
      (out.violated & (kSuiteNN | kSuiteFresh)) != 0)
    out.violated |= kSuiteNNPlus;
  out.violated &= ctx.checked;
}

/// Shard-level wrapper: loads the writer→block direct map, runs the
/// check, restores the map to all-zero via the writers list (never a
/// full O(n) clear), and records the arena high-water mark.
void check_location(const SharedCtx& ctx, const LocTask& task, LocScratch& s,
                    LocationCheck& out) {
  const auto t0 = Clock::now();
  const std::size_t n = ctx.c.node_count();
  out.loc = task.loc;
  out.writers = task.writers.size();

  if (s.wblock.size() != n) s.wblock.assign(n, 0);
  if (s.block_of.size() != n) s.block_of.resize(n);
  for (std::size_t i = 0; i < task.writers.size(); ++i)
    s.wblock[task.writers[i]] = static_cast<std::uint32_t>(i) + 1;

  run_location(ctx, task, s, out);

  for (const NodeId w : task.writers) s.wblock[w] = 0;
  s.bus.clear();
  s.bxs.clear();
  s.note_peak();
  out.millis = millis_since(t0);
}

std::size_t csr_bytes_of(const Csr& csr) {
  return csr.head.capacity() * sizeof(std::uint32_t) +
         csr.tgt.capacity() * sizeof(NodeId);
}

}  // namespace

LargeCheckReport large_check(const Computation& c, const ObserverFunction& phi,
                             const LargeCheckOptions& options) {
  const auto t0 = Clock::now();
  LargeCheckReport report;
  report.checked = options.models & kLargeCheckExt;
  const std::size_t n = c.node_count();
  if (phi.node_count() != n) {
    report.detail = "observer function and computation disagree on node count";
    report.total_millis = millis_since(t0);
    return report;
  }

  const auto t_oracle = Clock::now();
  const std::unique_ptr<PrecedenceOracle> oracle =
      make_oracle(c.dag(), c.sp_structure().get(), options.oracle);
  report.oracle_kind = oracle->kind();
  report.oracle_memory_bytes = oracle->memory_bytes();
  report.oracle_build_millis = millis_since(t_oracle);

  std::vector<NodeId> topo;
  if (c.dag().ids_topological()) {
    topo.resize(n);
    std::iota(topo.begin(), topo.end(), NodeId{0});
  } else {
    topo = c.dag().topological_order();
  }

  // The composites expand to the base bits their scans decide; the
  // per-location fold clips back to the requested mask.
  std::uint32_t base = report.checked & kLargeCheckAll;
  if ((report.checked & kSuiteWNPlus) != 0) base |= kSuiteWN;
  if ((report.checked & kSuiteNNPlus) != 0) base |= kSuiteNN;
  const bool want_fresh = (report.checked & kLargeCheckPlus) != 0;

  // Flatten the edges once for every location to share; the sweeps and
  // the quotient builds then run over contiguous arrays.
  const bool want_masks =
      (base & (kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW)) != 0;
  const bool want_lc = (base & kSuiteLC) != 0;
  Csr succ;
  Csr pred;
  if (want_lc || want_masks) succ = make_succ_csr(c.dag());
  if (want_masks || want_fresh) pred = make_pred_csr(c.dag());
  report.csr_bytes = csr_bytes_of(succ) + csr_bytes_of(pred);
  const SimdLevel simd = options.simd.value_or(active_simd_level());
  report.simd = simd_level_name(simd);
  const SharedCtx ctx{c,    topo,           *oracle,    pred, succ,
                      base, report.checked, want_fresh, simd};

  // Worklist: written locations (an absent column fails 2.3 there) plus
  // every stored column with a non-⊥ entry (an unexpected observation
  // must fail 2.1, so it cannot be skipped either). The grouping arena
  // hands every task a slice of its flat writer array — one O(n) scan
  // and seven allocations total instead of two vectors per location.
  const LocationGroups groups = group_location_accesses(c);
  report.groups_bytes = groups.memory_bytes();
  const auto writers_of = [&](Location l) -> std::span<const NodeId> {
    const auto it = std::lower_bound(groups.locs.begin(), groups.locs.end(), l);
    if (it == groups.locs.end() || *it != l) return {};
    return groups.writers(
        static_cast<std::size_t>(it - groups.locs.begin()));
  };
  std::vector<LocTask> tasks;
  {
    const std::vector<Location>& stored = phi.stored_locations();
    std::size_t si = 0;
    const auto stored_task = [&](std::size_t i) {
      return LocTask{stored[i], &phi.stored_column(i), writers_of(stored[i])};
    };
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const std::span<const NodeId> wr = groups.writers(gi);
      if (wr.empty()) continue;  // read-only: no column required
      const Location l = groups.locs[gi];
      while (si < stored.size() && stored[si] < l) {
        const LocTask t = stored_task(si++);
        if (std::any_of(t.col->begin(), t.col->end(),
                        [](NodeId x) { return x != kBottom; }))
          tasks.push_back(t);
      }
      if (si < stored.size() && stored[si] == l)
        tasks.push_back(stored_task(si++));
      else
        tasks.push_back(LocTask{l, nullptr, wr});
    }
    for (; si < stored.size(); ++si) {
      const LocTask t = stored_task(si);
      if (std::any_of(t.col->begin(), t.col->end(),
                      [](NodeId x) { return x != kBottom; }))
        tasks.push_back(t);
    }
  }
  report.locations.resize(tasks.size());

  // Pack tasks onto O(threads) shards in longest-processing-time order;
  // each shard owns one scratch arena for its whole run. Cost model:
  // every task pays an O(n) validity/LC pass (1 unit) plus one sweep
  // per 256-block batch when mask models are requested.
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_pool();
  const std::size_t nshards =
      (!options.parallel || pool.size() <= 1 || tasks.size() <= 1)
          ? (tasks.empty() ? 0 : 1)
          : std::min(tasks.size(), pool.size() * 2);
  report.shards = nshards;
  if (nshards > 0) {
    std::vector<std::size_t> cost(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
      cost[i] = 1 + (want_masks
                         ? (tasks[i].writers.size() + kSweepBits) / kSweepBits
                         : 0);
    std::vector<std::size_t> by_cost(tasks.size());
    std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cost[a] > cost[b];
                     });
    std::vector<std::vector<std::size_t>> shard_tasks(nshards);
    std::vector<std::size_t> shard_load(nshards, 0);
    for (const std::size_t i : by_cost) {
      const std::size_t s = static_cast<std::size_t>(
          std::min_element(shard_load.begin(), shard_load.end()) -
          shard_load.begin());
      shard_tasks[s].push_back(i);
      shard_load[s] += cost[i];
    }

    std::vector<std::size_t> shard_peak(nshards, 0);
    const auto run_shard = [&](std::size_t s) {
      LocScratch scratch;
      for (const std::size_t i : shard_tasks[s])
        check_location(ctx, tasks[i], scratch, report.locations[i]);
      shard_peak[s] = scratch.peak_bytes;
    };
    if (nshards > 1) {
      pool.parallel_for(nshards, run_shard);
    } else {
      run_shard(0);
    }
    report.scratch_peak_bytes =
        *std::max_element(shard_peak.begin(), shard_peak.end());
  }

  report.valid_observer = true;
  std::uint32_t violated = 0;
  for (const LocationCheck& lc : report.locations) {
    if (!lc.valid) report.valid_observer = false;
    violated |= lc.violated;
    if (report.detail.empty() && !lc.detail.empty()) report.detail = lc.detail;
  }
  report.satisfied = report.valid_observer ? (report.checked & ~violated) : 0;
  report.peak_rss_bytes = current_peak_rss_bytes();
  if (n > 0)
    report.bytes_per_node =
        static_cast<double>(report.csr_bytes + report.groups_bytes +
                            report.scratch_peak_bytes * report.shards +
                            report.oracle_memory_bytes) /
        static_cast<double>(n);
  report.total_millis = millis_since(t0);
  return report;
}

std::string LargeCheckReport::to_string() const {
  std::string out;
  out += format("oracle: %s (%zu bytes, built in %.2f ms)\n",
                oracle_kind.c_str(), oracle_memory_bytes, oracle_build_millis);
  out += format(
      "data plane: %s kernels, %zu shards, %.1f B/node "
      "(csr %zu + groups %zu + scratch %zu x %zu + oracle %zu)\n",
      simd.c_str(), shards, bytes_per_node, csr_bytes, groups_bytes,
      scratch_peak_bytes, shards, oracle_memory_bytes);
  if (peak_rss_bytes != 0)
    out += format("peak rss: %.1f MiB\n",
                  static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0));
  out += format("observer: %s\n", valid_observer ? "valid" : "INVALID");
  if (valid_observer) {
    for (std::uint32_t bit = 1; bit != 0 && bit <= checked; bit <<= 1) {
      if ((checked & bit) == 0) continue;
      out += format("  %-3s %s\n", ModelSuite::bit_name(bit),
                    (satisfied & bit) != 0 ? "holds" : "VIOLATED");
    }
  }
  if (!detail.empty()) out += "  " + detail + "\n";
  TextTable t({"loc", "writers", "valid", "violated", "ms"});
  for (const LocationCheck& lc : locations) {
    std::string v;
    for (std::uint32_t bit = 1; bit != 0 && bit <= lc.violated; bit <<= 1)
      if ((lc.violated & bit) != 0) {
        if (!v.empty()) v += ",";
        v += pred_label(bit);
      }
    t.add_row({format("%u", lc.loc), format("%zu", lc.writers),
               lc.valid ? "yes" : "no", v.empty() ? "-" : v,
               format("%.2f", lc.millis)});
  }
  out += t.render();
  out += format("total: %.2f ms over %zu locations\n", total_millis,
                locations.size());
  return out;
}

ObserverFunction observer_from_trace(const Computation& c, const Trace& trace) {
  const std::size_t n = c.node_count();
  ObserverFunction phi(n);
  const std::vector<Location> locs = c.written_locations();

  // Events in execution order, as indices (events naming unknown nodes
  // are dropped, as before). Simulator and binary traces are already
  // seq-sorted; skip the sort for them.
  std::vector<std::uint32_t> order;
  order.reserve(trace.events.size());
  bool sorted = true;
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    if (e.node >= n) continue;
    if (!order.empty() && e.seq < prev_seq) sorted = false;
    prev_seq = e.seq;
    order.push_back(static_cast<std::uint32_t>(i));
  }
  if (!sorted)
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return trace.events[a].seq < trace.events[b].seq;
                     });

  // Resolve each kept event's accessed location to its index in `locs`
  // once (kNoLoc for nops and accesses to never-written locations), so
  // the column fills below never touch the op table or binary-search.
  constexpr std::uint32_t kNoLoc = 0xFFFFFFFFu;
  std::vector<std::uint32_t> eloc(order.size(), kNoLoc);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Op o = c.op(trace.events[order[k]].node);
    if (o.is_nop()) continue;
    const auto it = std::lower_bound(locs.begin(), locs.end(), o.loc);
    if (it != locs.end() && *it == o.loc)
      eloc[k] = static_cast<std::uint32_t>(it - locs.begin());
  }

  // One pass per written location, carrying the last write: recorded
  // observations win, writes self-observe (2.3), everything else gets
  // the carried write — the value the node would have seen. This fills
  // dense columns directly (installed whole via set_column) instead of
  // per-entry phi.set calls that re-search the location list 10⁸ times
  // on a large trace.
  for (std::size_t i = 0; i < locs.size(); ++i) {
    std::vector<NodeId> col(n, kBottom);
    NodeId last = kBottom;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const TraceEvent& e = trace.events[order[k]];
      const NodeId u = e.node;
      if (eloc[k] != i) {
        if (last != kBottom) col[u] = last;
        continue;
      }
      if (c.op(u).is_write()) {
        col[u] = u;
        last = u;
      } else if (e.observed != kBottom && e.observed < n) {
        col[u] = e.observed;
      }
    }
    phi.set_column(locs[i], std::move(col));
  }
  // Recorded observations at never-written locations still land in Φ
  // (they must fail 2.1 later, so they cannot be dropped here).
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (eloc[k] != kNoLoc) continue;
    const TraceEvent& e = trace.events[order[k]];
    const Op o = c.op(e.node);
    if (o.is_read() && e.observed != kBottom && e.observed < n)
      phi.set(o.loc, e.node, e.observed);
  }
  // Writes self-observe even when the trace omits their event entirely.
  for (NodeId u = 0; u < n; ++u)
    if (c.op(u).is_write()) phi.set(c.op(u).loc, u, u);
  return phi;
}

LargeCheckReport large_check_trace(const Computation& c, const Trace& trace,
                                   const LargeCheckOptions& options) {
  std::string why;
  if (!trace_consistent_with(trace, c, &why)) {
    LargeCheckReport report;
    report.checked = options.models & kLargeCheckExt;
    report.detail = "trace does not fit the computation: " + why;
    return report;
  }
  return large_check(c, observer_from_trace(c, trace), options);
}

}  // namespace ccmm
