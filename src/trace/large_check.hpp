// ccmm/trace/large_check.hpp
//
// Streaming post-mortem checking for large traces. The classic pipeline
// (CheckContext::prepare → contains_prepared) is exact but leans on the
// O(n²)-bit transitive closure and O(n·writers)-bit Φ⁻¹ block bitsets,
// which caps verify_execution at toy sizes. large_check() decides the
// same per-location-decomposable memberships — LC and the four dag
// consistency models NN/NW/WN/WW — by streaming the computation in
// topological order:
//
//  * observer validity (Definition 2) with the precedence-oracle layer
//    (dag/precedence_oracle.hpp): one O(1) point query per observation
//    instead of a closure row;
//  * LC via the block-quotient Kahn scan, O(n+m) per location;
//  * NN/NW/WN/WW via three per-node block masks computed in one forward
//    and one backward sweep per group of 64 Φ⁻¹ blocks — A[v] (blocks
//    with a member strictly before v), D[v] (blocks with a member
//    strictly after v) and W[v] (blocks whose writer is strictly before
//    v) — which re-express the Q(l,u,v,w) violation scan with zero
//    precedence queries (see DESIGN.md for the derivation);
//  * locations sharded across the ThreadPool, each with O(n)-word
//    transient scratch. Peak memory is O(n·⌈writers/64⌉) words per
//    in-flight location, never O(n²) bits.
//
// Verdicts are pinned byte-identical to the prepared checkers by
// tests/test_large_check.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dag/precedence_oracle.hpp"
#include "models/suite.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace ccmm {

/// The per-location-decomposable suite bits large_check can decide.
inline constexpr std::uint32_t kLargeCheckAll =
    kSuiteLC | kSuiteNN | kSuiteNW | kSuiteWN | kSuiteWW;

struct LargeCheckOptions {
  /// Which models to decide (subset of kLargeCheckAll).
  std::uint32_t models = kSuiteLC;
  /// Oracle selection for the validity point queries (kAuto: SP labels
  /// when the computation carries a parse, closure when small, chains
  /// otherwise).
  OracleOptions oracle;
  /// Shard per-location work across this pool (nullptr = global_pool()).
  ThreadPool* pool = nullptr;
  bool parallel = true;
};

/// Outcome for one checked location.
struct LocationCheck {
  Location loc = 0;
  bool valid = true;            // this column passes Definition 2
  std::uint32_t violated = 0;   // requested models this location breaks
  std::size_t writers = 0;      // |writers(l)| = block count - 1
  double millis = 0.0;
  std::string detail;           // first witness / validity failure
};

struct LargeCheckReport {
  bool valid_observer = false;
  std::uint32_t checked = 0;    // the requested model mask
  std::uint32_t satisfied = 0;  // subset of `checked` that hold
  std::string detail;           // first failure across locations
  std::string oracle_kind;
  std::size_t oracle_memory_bytes = 0;
  double oracle_build_millis = 0.0;
  double total_millis = 0.0;
  std::vector<LocationCheck> locations;  // sorted by location

  /// Same meaning as MemoryModel::contains for the given suite bit:
  /// valid observer and no location violates the model.
  [[nodiscard]] bool in_model(std::uint32_t bit) const {
    return valid_observer && (checked & bit) != 0 && (satisfied & bit) != 0;
  }

  /// Multi-line human summary (overall verdicts + per-location table).
  [[nodiscard]] std::string to_string() const;
};

/// Decide the requested models for (c, phi) without materializing the
/// transitive closure. Agrees with validate_observer + the models'
/// contains() on every input (differentially tested).
[[nodiscard]] LargeCheckReport large_check(const Computation& c,
                                           const ObserverFunction& phi,
                                           const LargeCheckOptions& options
                                           = {});

/// The total observer a trace induces: every read observes its recorded
/// write (⊥ included — the machine really saw no write), every write
/// observes itself (condition 2.3 forces this), and every unrecorded
/// slot observes the last write to that location the trace ran strictly
/// before the node's event (⊥ if none). The completion is what makes
/// membership meaningful — the paper's Φ is total, and leaving
/// unrecorded slots at ⊥ would order every block after B_⊥'s stragglers
/// and fail LC even on a serial SC execution. Because the trace order
/// is a linear extension of the dag, the completed entries always
/// satisfy condition 2.2.
[[nodiscard]] ObserverFunction observer_from_trace(const Computation& c,
                                                   const Trace& trace);

/// Trace entry point: sanity-check the trace against `c` (reporting the
/// first mismatching event on failure), build the trace observer, and
/// stream-check it.
[[nodiscard]] LargeCheckReport large_check_trace(const Computation& c,
                                                 const Trace& trace,
                                                 const LargeCheckOptions&
                                                     options = {});

}  // namespace ccmm
