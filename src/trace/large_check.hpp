// ccmm/trace/large_check.hpp
//
// Streaming post-mortem checking for large traces. The classic pipeline
// (CheckContext::prepare → contains_prepared) is exact but leans on the
// O(n²)-bit transitive closure and O(n·writers)-bit Φ⁻¹ block bitsets,
// which caps verify_execution at toy sizes. large_check() decides the
// same per-location-decomposable memberships — LC and the four dag
// consistency models NN/NW/WN/WW — by streaming the computation in
// topological order:
//
//  * observer validity (Definition 2) with the precedence-oracle layer
//    (dag/precedence_oracle.hpp): one O(1) point query per observation
//    instead of a closure row;
//  * observer validity runs its 2.2 point queries through the oracle's
//    batched entry point (precedes_batch), 4096 pairs at a time, which
//    the SP-labels oracle answers with AVX2 gathers;
//  * LC via the block-quotient Kahn scan, O(n+m) per location, built as
//    a counting CSR straight into reused scratch (no edge sort);
//  * NN/NW/WN/WW via three per-node block masks computed in one forward
//    and one backward sweep per batch of 256 Φ⁻¹ blocks — A[v] (blocks
//    with a member strictly before v), D[v] (blocks with a member
//    strictly after v) and W[v] (blocks whose writer is strictly before
//    v) — which re-express the Q(l,u,v,w) violation scan with zero
//    precedence queries (see DESIGN.md for the derivation). The sweeps
//    are the dag/sweep.hpp kernels: 4-word rows, runtime-dispatched
//    AVX2 with a bit-identical scalar fallback;
//  * locations packed onto O(threads) shards (longest-processing-time
//    order), each shard owning ONE reusable scratch arena — block maps,
//    quotient CSR, mask rows — so a run makes O(shards) allocations,
//    not O(locations). Peak memory is O(n) words per shard, never
//    O(n²) bits, and the report carries the measured bytes-per-node.
//
// Verdicts are pinned byte-identical to the prepared checkers by
// tests/test_large_check.cpp.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dag/precedence_oracle.hpp"
#include "models/suite.hpp"
#include "trace/loc_incremental.hpp"
#include "trace/trace.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace ccmm {

// kLargeCheckAll / kLargeCheckPlus / kLargeCheckExt and LocationCheck
// moved to trace/loc_incremental.hpp with the per-location kernel; the
// names are re-exported through this include unchanged.

struct LargeCheckOptions {
  /// Which models to decide (subset of kLargeCheckExt).
  std::uint32_t models = kSuiteLC;
  /// Oracle selection for the validity point queries (kAuto: SP labels
  /// when the computation carries a parse, closure when small, chains
  /// otherwise).
  OracleOptions oracle;
  /// Shard per-location work across this pool (nullptr = global_pool()).
  ThreadPool* pool = nullptr;
  bool parallel = true;
  /// Force a kernel level for the mask sweeps (nullopt = the process
  /// dispatch from active_simd_level()). The scalar and SIMD kernels
  /// are bit-identical by construction; this exists so differential
  /// tests can run both in one process.
  std::optional<SimdLevel> simd;
  /// Events per pipeline chunk (0 = engine default, 1<<17). Small
  /// values exist for chunk-boundary fuzzing in tests; production
  /// callers should leave this alone.
  std::uint32_t chunk_nodes = 0;
  /// Called after each consumed chunk with (positions consumed, total
  /// node count) — the CLI's live progress line. Invoked from the
  /// ingest thread; must be cheap and thread-compatible with the
  /// caller's world (it is never called concurrently with itself).
  std::function<void(std::size_t, std::size_t)> progress;
};

struct LargeCheckReport {
  bool valid_observer = false;
  std::uint32_t checked = 0;    // the requested model mask
  std::uint32_t satisfied = 0;  // subset of `checked` that hold
  std::string detail;           // first failure across locations
  std::string oracle_kind;
  std::size_t oracle_memory_bytes = 0;
  double oracle_build_millis = 0.0;
  double total_millis = 0.0;
  std::vector<LocationCheck> locations;  // sorted by location

  // Data-plane accounting (the perf budget ISSUE 7 tracks): which
  // kernel level ran, how the per-location work was sharded, and the
  // bytes the check itself held — shared CSR edge copies plus the
  // grouping arena plus the widest per-shard scratch arena — divided
  // by the node count. peak_rss_bytes is the whole-process high-water
  // mark (getrusage), so it includes the computation and observer too.
  std::string simd;                      // "scalar" | "neon" | "avx2"
  std::size_t shards = 0;                // scratch arenas allocated
  std::size_t csr_bytes = 0;             // shared succ/pred edge copies
  std::size_t groups_bytes = 0;          // location-grouping arena
  std::size_t scratch_peak_bytes = 0;    // max per-shard arena + states
  std::size_t aux_bytes = 0;             // wblock map + topo inverse
  std::size_t peak_rss_bytes = 0;        // process peak RSS after check
  double bytes_per_node = 0.0;           // check-owned bytes / node

  // Stage breakdown of the streaming scan (--trace in ccmm_check).
  // Pipelined runs overlap ingest with the kernel, so stages can sum
  // to more than total_millis; kernel/report are the max over shards.
  double ingest_millis = 0.0;       // trace decode + 2.2 prestage
  double group_build_millis = 0.0;  // grouping + CSRs + wblock map
  double kernel_millis = 0.0;       // LocState::advance over all chunks
  double report_millis = 0.0;       // finalize_into + verdict fold
  bool pipelined = false;           // ring-overlapped producer/consumers
  std::string numa;                 // topology summary ("1 node" etc.)

  /// Same meaning as MemoryModel::contains for the given suite bit:
  /// valid observer and no location violates the model.
  [[nodiscard]] bool in_model(std::uint32_t bit) const {
    return valid_observer && (checked & bit) != 0 && (satisfied & bit) != 0;
  }

  /// Multi-line human summary (overall verdicts + per-location table).
  [[nodiscard]] std::string to_string() const;
};

/// Decide the requested models for (c, phi) without materializing the
/// transitive closure. Agrees with validate_observer + the models'
/// contains() on every input (differentially tested).
[[nodiscard]] LargeCheckReport large_check(const Computation& c,
                                           const ObserverFunction& phi,
                                           const LargeCheckOptions& options
                                           = {});

/// The total observer a trace induces: every read observes its recorded
/// write (⊥ included — the machine really saw no write), every write
/// observes itself (condition 2.3 forces this), and every unrecorded
/// slot observes the last write to that location the trace ran strictly
/// before the node's event (⊥ if none). The completion is what makes
/// membership meaningful — the paper's Φ is total, and leaving
/// unrecorded slots at ⊥ would order every block after B_⊥'s stragglers
/// and fail LC even on a serial SC execution. Because the trace order
/// is a linear extension of the dag, the completed entries always
/// satisfy condition 2.2.
[[nodiscard]] ObserverFunction observer_from_trace(const Computation& c,
                                                   const Trace& trace);

/// Trace entry point: sanity-check the trace against `c` (reporting the
/// first mismatching event on failure), build the trace observer, and
/// stream-check it.
[[nodiscard]] LargeCheckReport large_check_trace(const Computation& c,
                                                 const Trace& trace,
                                                 const LargeCheckOptions&
                                                     options = {});

}  // namespace ccmm
