// ccmm/trace/lint_pipeline.hpp
//
// The streaming lint pipeline: one entry point that takes the
// binary-of-record artifacts — a computation plus a recorded trace —
// and produces the full diagnostic story without materializing any
// transitive closure:
//
//  * determinacy races from the oracle-backed engine
//    (analyze/race_oracle.hpp), each with a bounded shrunk witness and
//    a model-split classification where the witness is small enough;
//  * trace-sharpened memory lints: reads that observed ⊥ in THIS
//    execution and writes no other node observed in THIS execution —
//    strictly sharper than the static may-analysis lints;
//  * the streaming model verdicts (trace/large_check.hpp) for the
//    trace's induced observer, surfaced as diagnostics when a model is
//    violated;
//  * when the scan proves race-freedom, the DRF ⇒ agreement
//    certificate (analyze/certificate.hpp).
//
// Lives in the trace library (it composes large_check with the analyze
// passes; ccmm_trace already links ccmm_analyze) but reports in the
// analyze namespace — the diagnostics currency is the same.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analyze/certificate.hpp"
#include "analyze/passes.hpp"
#include "trace/large_check.hpp"
#include "trace/spec_check.hpp"
#include "trace/trace.hpp"

namespace ccmm::analyze {

struct TraceLintOptions {
  /// Race scan + anomaly/lint configuration. The engine field is
  /// ignored: the pipeline always scans with the oracle engine (that
  /// is the point of the trace path). Unlike the library default, the
  /// pipeline caps the enumerated race set (constructor below): on
  /// heavily racy million-node inputs the full set is output-bound and
  /// useless for diagnostics — the scan stops sweeping once the cap is
  /// hit and reports truncation. Raise scan.max_races to re-enable the
  /// exact enumeration.
  AnalysisOptions analysis;
  /// Models to stream-check on the trace's observer.
  std::uint32_t models = kLargeCheckAll;
  /// Compiled spec models (models/compile.hpp) decided alongside the
  /// suite bits. They share ONE streaming pass with `models` (the spec
  /// plans and the suite mask are unioned), the trace's execution order
  /// is used as the serialization witness hint, and each verdict is
  /// surfaced as a diagnostic when the model is violated or undecided.
  /// The same models also join the race classifier's split
  /// (AnomalyOptions::extra_models is populated from here).
  std::vector<std::shared_ptr<const CompiledModel>> spec_models;
  /// Budget per scoped/global serialization search a spec model needs.
  std::size_t spec_search_budget = 5'000'000;
  /// Forwarded to LargeCheckOptions::progress: called after each
  /// consumed chunk with (positions consumed, total nodes). The CLI
  /// wires its live progress line through this on multi-million-node
  /// postmortems.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Emit the DRF certificate when the scan proves race-freedom.
  bool certify = true;
  CertifyOptions certificate;

  TraceLintOptions() { analysis.scan.max_races = std::size_t{1} << 16; }
};

struct TraceLintResult {
  /// True when the trace fits the computation (one event per node, ops
  /// matching); when false only the one kError "trace" diagnostic is
  /// produced.
  bool trace_ok = false;
  std::vector<Diagnostic> diagnostics;
  AnalyzeStats stats;
  /// The streaming model verdicts for the trace's observer.
  std::optional<LargeCheckReport> report;
  /// Per-spec-model verdicts (parallel to options.spec_models).
  std::vector<SpecModelVerdict> spec_verdicts;
  /// Present iff the computation is race-free and certify was set.
  std::optional<DrfCertificate> certificate;

  /// Human-readable rollup: model verdicts, diagnostics, certificate.
  [[nodiscard]] std::string to_string() const;
};

/// Run the pipeline. Exact on races (the oracle engine's race set is
/// byte-identical to the pairwise engine's); the trace-sharpened lints
/// and model verdicts are properties of this execution.
[[nodiscard]] TraceLintResult analyze_trace(const Computation& c,
                                            const Trace& trace,
                                            const TraceLintOptions& options
                                            = {});

}  // namespace ccmm::analyze
