#include "trace/spec_check.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"
#include "util/str.hpp"

namespace ccmm {
namespace {

/// Render a scope's member list for diagnostics ("{0, 1}").
std::string scope_to_string(const ScopeSpec& scope) {
  std::string out = "{";
  for (std::size_t i = 0; i < scope.locations.size(); ++i) {
    if (i > 0) out += ", ";
    out += format("%u", scope.locations[i]);
  }
  out += "}";
  return out;
}

/// Decide one serialization obligation (a scope, or the global order on
/// `locs`): hint verification first, budgeted search second. Returns
/// kYes/kNo, or kExhausted when the search ran out of budget.
SearchStatus decide_order(const Computation& c, const ObserverFunction& phi,
                          const std::vector<Location>& locs,
                          const SpecCheckOptions& options) {
  if (!options.hint_order.empty() &&
      order_explains(c, phi, locs, options.hint_order))
    return SearchStatus::kYes;
  ScOptions sc_opt;
  sc_opt.budget = options.search_budget;
  return serialization_check(c, phi, locs, sc_opt).status;
}

}  // namespace

bool SpecCheckReport::all_members() const {
  return std::all_of(models.begin(), models.end(),
                     [](const SpecModelVerdict& v) {
                       return v.decided && v.member;
                     });
}

std::string SpecCheckReport::to_string() const {
  std::string out = format("spec_check: %zu model(s)\n", models.size());
  for (const SpecModelVerdict& v : models) {
    out += format("  %-12s %s", v.name.c_str(),
                  !v.decided ? "undecided" : (v.member ? "yes" : "no"));
    if (!v.detail.empty()) {
      out += "  (";
      out += v.detail;
      out += ")";
    }
    out += '\n';
  }
  out += base.to_string();
  return out;
}

SpecCheckReport spec_check(
    const Computation& c, const ObserverFunction& phi,
    const std::vector<std::shared_ptr<const CompiledModel>>& models,
    const SpecCheckOptions& options) {
  SpecCheckReport report;

  // One shared streaming run covers the mask-decidable part of every
  // streamable plan.
  std::vector<CompiledModel::StreamingPlan> plans;
  plans.reserve(models.size());
  std::uint32_t mask = 0;
  for (const auto& m : models) {
    plans.push_back(m->streaming_plan());
    if (plans.back().streamable) mask |= plans.back().mask;
  }
  LargeCheckOptions large = options.large;
  large.models = mask | (options.large.models & kLargeCheckExt);
  report.base = large_check(c, phi, large);

  report.models.reserve(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    const CompiledModel& m = *models[i];
    const CompiledModel::StreamingPlan& plan = plans[i];
    SpecModelVerdict v;
    v.name = m.name();
    if (!plan.streamable) {
      v.detail =
          "no streaming lowering: a w-constrained cube axiom needs the "
          "cubic closure scan";
      report.models.push_back(std::move(v));
      continue;
    }
    v.decided = true;
    if (!report.base.valid_observer) {
      // Every model rejects an invalid observer (Definition 2).
      v.detail = report.base.detail;
      report.models.push_back(std::move(v));
      continue;
    }
    if ((report.base.satisfied & plan.mask) != plan.mask) {
      // Carry the first per-location witness for a bit this model needs.
      const std::uint32_t missing = plan.mask & ~report.base.satisfied;
      for (const LocationCheck& lc : report.base.locations) {
        if ((lc.violated & missing) != 0) {
          v.detail = lc.detail;
          break;
        }
      }
      if (v.detail.empty()) v.detail = report.base.detail;
      report.models.push_back(std::move(v));
      continue;
    }

    // The mask verdicts hold; finish the order axioms the masks cannot
    // express. LC everywhere (checked above for scoped/global plans) is
    // necessary, so the searches only run on plausible members.
    bool member = true;
    if (plan.scoped) {
      for (const ScopeSpec& scope : m.spec().scopes) {
        const SearchStatus st = decide_order(c, phi, scope.locations, options);
        if (st == SearchStatus::kYes) continue;
        if (st == SearchStatus::kNo) {
          member = false;
          v.detail = format("scope %s admits no joint serialization",
                            scope_to_string(scope).c_str());
        } else {
          v.decided = false;
          v.detail = format("serialization search budget exhausted for "
                            "scope %s",
                            scope_to_string(scope).c_str());
        }
        break;
      }
    }
    if (member && v.decided && plan.global) {
      const SearchStatus st =
          decide_order(c, phi, phi.active_locations(), options);
      if (st == SearchStatus::kNo) {
        member = false;
        v.detail = "no global serialization explains the observer";
      } else if (st == SearchStatus::kExhausted) {
        v.decided = false;
        v.detail = "global serialization search budget exhausted";
      }
    }
    v.member = v.decided && member;
    report.models.push_back(std::move(v));
  }
  return report;
}

SpecCheckReport spec_check_trace(
    const Computation& c, const Trace& trace,
    const std::vector<std::shared_ptr<const CompiledModel>>& models,
    const SpecCheckOptions& options) {
  std::string why;
  if (!trace_consistent_with(trace, c, &why)) {
    SpecCheckReport report;
    report.base.detail = "trace does not fit the computation: " + why;
    report.models.reserve(models.size());
    for (const auto& m : models) {
      SpecModelVerdict v;
      v.name = m->name();
      v.decided = true;
      v.detail = report.base.detail;
      report.models.push_back(std::move(v));
    }
    return report;
  }
  const ObserverFunction phi = observer_from_trace(c, trace);
  SpecCheckOptions opt = options;
  // The execution order explains every column of a scope-consistent
  // serial execution (ScMemory reads the last write in trace order), so
  // the scoped/global obligations usually verify in O(n + m) and never
  // backtrack.
  if (opt.hint_order.empty()) opt.hint_order = trace_order(trace);
  return spec_check(c, phi, models, opt);
}

}  // namespace ccmm
