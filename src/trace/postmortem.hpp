// ccmm/trace/postmortem.hpp
//
// Post-mortem analysis: the paper's motivating use of computations — "to
// verify whether a system meets a specification by checking its behavior
// after it has finished executing." Given an execution's observer
// function (or only its reads, which is all real hardware reveals),
// decide membership in a memory model.
#pragma once

#include <optional>

#include "core/memory_model.hpp"
#include "trace/trace.hpp"

namespace ccmm {

/// Verdict of a post-mortem check.
struct PostmortemReport {
  bool valid_observer = false;  // Definition 2 conditions hold
  bool in_model = false;
  std::string detail;
};

/// Check a fully recorded execution against a model.
[[nodiscard]] PostmortemReport verify_execution(const Computation& c,
                                                const ObserverFunction& phi,
                                                const MemoryModel& model);

/// The read-only projection of an observer function: entries for read
/// nodes at their own location, kBottom elsewhere. This is what a real
/// machine's execution (with unique write values) reveals.
[[nodiscard]] ObserverFunction reads_only_projection(const Computation& c,
                                                     const ObserverFunction&
                                                         phi);

/// Extract the read observations from a trace directly. When `issue` is
/// non-null it receives a diagnostic naming the first read event whose
/// recorded observation cannot be right (unknown node, or a node that is
/// not a write to the read's location); the entry is still copied so the
/// caller sees exactly what the trace claims.
[[nodiscard]] ObserverFunction reads_from_trace(const Computation& c,
                                                const Trace& trace,
                                                std::string* issue = nullptr);

/// Search for a completion of a partial (reads-only) observer function
/// that lies in `model`: free slots are every (written location, node)
/// pair not fixed by a read or a write. Exponential in the number of
/// free slots; `budget` caps the completions tried (nullopt on
/// exhaustion without an answer does NOT prove absence).
struct CompletionResult {
  std::optional<ObserverFunction> completion;
  bool exhausted = false;  // budget ran out before the search finished
  std::size_t tried = 0;
};
[[nodiscard]] CompletionResult find_model_completion(
    const Computation& c, const ObserverFunction& reads,
    const MemoryModel& model, std::size_t budget = 1u << 20);

}  // namespace ccmm
