#include "trace/lint_pipeline.hpp"

#include <unordered_set>
#include <utility>
#include <vector>

#include "util/span_set.hpp"
#include "util/str.hpp"

namespace ccmm::analyze {
namespace {

Diagnostic error_diag(const char* pass, std::string message) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.pass = pass;
  d.message = std::move(message);
  return d;
}

/// Trace-sharpened memory lints. The static pass (analyze/passes.cpp)
/// reports reads of never-written locations and writes of never-read
/// locations; with a trace in hand we can be sharper: a read that
/// observed ⊥ *despite* the location having writers means every one of
/// those writes was scheduled around it, and a write no other node's
/// viewpoint contains was invisible in this execution even if the
/// location is read elsewhere.
void trace_lint_pass(const Computation& c, const Trace& trace,
                     const ObserverFunction& phi,
                     std::vector<Diagnostic>& out) {
  std::unordered_set<Location> location_written;
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (o.is_write()) location_written.insert(o.loc);
  }
  for (const TraceEvent& e : trace.events) {
    if (!e.op.is_read() || e.observed != kBottom) continue;
    if (!location_written.contains(e.op.loc)) continue;  // static lint covers it
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "trace-uninit-read";
    d.a = e.node;
    d.loc = e.op.loc;
    d.message = format(
        "node %u read ⊥ from location %u in this execution although the "
        "location has writers",
        e.node, e.op.loc);
    out.push_back(std::move(d));
  }
  // A write is live in this execution iff some *other* node's viewpoint
  // observed it (the trace observer is total, so viewpoints of non-read
  // nodes count too — the weakest notion of "someone saw it"). The set
  // of observed writes is a SpanSet: on a streaming trace most writes
  // are visible somewhere, so the set sits at (or near) its all-full
  // representation instead of an n-bit vector.
  SpanSet observed(c.node_count());
  const std::vector<Location>& locs = phi.stored_locations();
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const std::vector<NodeId>& col = phi.stored_column(i);
    for (NodeId u = 0; u < col.size(); ++u) {
      if (col[u] != kBottom && col[u] != u) observed.set(col[u]);
    }
  }
  observed.normalize();
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (!o.is_write() || observed.test(u)) continue;
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "trace-dead-write";
    d.a = u;
    d.loc = o.loc;
    d.message = format(
        "write %u to location %u was observed by no other node in this "
        "execution",
        u, o.loc);
    out.push_back(std::move(d));
  }
}

}  // namespace

TraceLintResult analyze_trace(const Computation& c, const Trace& trace,
                              const TraceLintOptions& options) {
  TraceLintResult result;

  std::string why;
  if (!trace_consistent_with(trace, c, &why)) {
    result.diagnostics.push_back(
        error_diag("trace", format("trace does not fit the computation: %s",
                                   why.c_str())));
    return result;
  }
  result.trace_ok = true;

  // Stream the trace's observer through large_check — no closure, ever.
  // Compiled spec models piggyback on the same pass: spec_check unions
  // their plans with the requested suite bits and finishes the scoped/
  // global order axioms with the trace order as the witness hint.
  const ObserverFunction phi = observer_from_trace(c, trace);
  LargeCheckOptions lopt;
  lopt.models = options.models;
  lopt.oracle = options.analysis.scan.oracle;
  lopt.pool = options.analysis.scan.pool;
  lopt.parallel = options.analysis.scan.parallel;
  lopt.progress = options.progress;
  if (options.spec_models.empty()) {
    result.report = large_check(c, phi, lopt);
  } else {
    SpecCheckOptions sopt;
    sopt.large = lopt;
    sopt.search_budget = options.spec_search_budget;
    sopt.hint_order = trace_order(trace);
    SpecCheckReport sr = spec_check(c, phi, options.spec_models, sopt);
    result.report = std::move(sr.base);
    result.spec_verdicts = std::move(sr.models);
  }
  const LargeCheckReport& report = *result.report;
  if (!report.valid_observer) {
    result.diagnostics.push_back(error_diag(
        "observer", format("trace observer violates Definition 2: %s",
                           report.detail.c_str())));
  } else {
    // Clip to the caller's mask: the spec plans may have widened
    // `checked` with bits (FRESH, extra corners) nobody asked to see.
    const std::uint32_t violated =
        report.checked & options.models & ~report.satisfied;
    for (std::uint32_t bit = 1; bit != 0 && bit <= violated; bit <<= 1) {
      if ((violated & bit) == 0) continue;
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.pass = "model";
      d.message =
          format("execution is not %s: %s", ModelSuite::bit_name(bit),
                 report.detail.c_str());
      result.diagnostics.push_back(std::move(d));
    }
    for (const SpecModelVerdict& v : result.spec_verdicts) {
      if (v.decided && v.member) continue;
      Diagnostic d;
      d.severity = v.decided ? Severity::kWarning : Severity::kInfo;
      d.pass = "model";
      d.message = v.decided
                      ? format("execution is not %s: %s", v.name.c_str(),
                               v.detail.c_str())
                      : format("%s undecided: %s", v.name.c_str(),
                               v.detail.c_str());
      result.diagnostics.push_back(std::move(d));
    }
  }

  // Race scan + anomaly classification on the oracle engine (the
  // static lints are replaced by the trace-sharpened ones below).
  AnalysisOptions aopt = options.analysis;
  aopt.engine = RaceEngine::kOracle;
  aopt.lint = false;
  // The spec models join the race classifier's behaviour split.
  for (const auto& m : options.spec_models)
    aopt.anomaly.extra_models.push_back(m);
  std::vector<Diagnostic> analysis =
      analyze_computation(c, aopt, &result.stats);
  for (Diagnostic& d : analysis) result.diagnostics.push_back(std::move(d));

  if (options.analysis.lint) trace_lint_pass(c, trace, phi, result.diagnostics);

  // Race-free ⇒ the paper's agreement theorem applies: certify it.
  if (options.certify && result.stats.races == 0 && !result.stats.scan.truncated) {
    CertifyOptions copt = options.certificate;
    copt.scan = options.analysis.scan;
    result.certificate = make_drf_certificate(c, copt, &why);
    if (!result.certificate.has_value()) {
      result.diagnostics.push_back(error_diag(
          "certificate",
          format("DRF certificate construction failed: %s", why.c_str())));
    }
  }
  return result;
}

std::string TraceLintResult::to_string() const {
  std::string out;
  if (report.has_value()) out += report->to_string();
  for (const SpecModelVerdict& v : spec_verdicts) {
    out += format("  %-12s %s", v.name.c_str(),
                  !v.decided ? "undecided" : (v.member ? "yes" : "no"));
    if (!v.detail.empty() && !(v.decided && v.member))
      out += "  (" + v.detail + ")";
    out += '\n';
  }
  out += stats.to_string();
  out += render_report(diagnostics);
  if (certificate.has_value())
    out += "race-free: " + certificate->to_string() + "\n";
  else if (trace_ok)
    out += "no DRF certificate (races present or certification disabled)\n";
  return out;
}

}  // namespace ccmm::analyze
