// ccmm/trace/loc_kernel.hpp
//
// The shared per-location grouping kernel behind the streaming
// analyses (trace/large_check.cpp and analyze/race_oracle.cpp): one
// O(n) pass bucketing every accessing node by location.
//
// The buckets are a CSR arena, not per-location vectors: `acc` and
// `wri` are two flat arrays sliced by head offsets, so grouping a
// 100M-node computation costs seven allocations total instead of two
// per location — the allocation-traffic fix the compressed data plane
// is built on. Consumers hold std::span slices; the old
// LocationAccess-of-vectors shape is gone.
//
// The reach-mask sweep kernels that used to live here moved down to
// dag/sweep.hpp, where the SIMD dispatch lives and where both the
// trace and the analyze layers can link them without an upward
// dependency. Header-only for the same layering reason as before:
// ccmm_trace links ccmm_analyze, so a .cpp here would hand the analyze
// library an upward dependency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/computation.hpp"

namespace ccmm {

/// All locations' accessors and writers in two flat CSR arrays, sorted
/// by location; node ids ascend within each slice (the grouping pass
/// scans ids in order). `writers(i)` ⊆ `accessors(i)`.
struct LocationGroups {
  std::vector<Location> locs;           // sorted
  std::vector<std::uint32_t> acc_head;  // locs.size() + 1
  std::vector<std::uint32_t> wri_head;  // locs.size() + 1
  std::vector<NodeId> acc;
  std::vector<NodeId> wri;

  [[nodiscard]] std::size_t size() const noexcept { return locs.size(); }

  [[nodiscard]] std::span<const NodeId> accessors(std::size_t i) const {
    return {acc.data() + acc_head[i], acc.data() + acc_head[i + 1]};
  }
  [[nodiscard]] std::span<const NodeId> writers(std::size_t i) const {
    return {wri.data() + wri_head[i], wri.data() + wri_head[i + 1]};
  }

  /// Bytes held by the arena (for the data-plane accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return locs.capacity() * sizeof(Location) +
           (acc_head.capacity() + wri_head.capacity()) *
               sizeof(std::uint32_t) +
           (acc.capacity() + wri.capacity()) * sizeof(NodeId);
  }
};

/// Bucket the computation's accesses by location: one discovery pass
/// (hash per node, counts per location), a sort of the location list,
/// and one fill pass through the flat arrays.
[[nodiscard]] inline LocationGroups group_location_accesses(
    const Computation& c) {
  const std::size_t n = c.node_count();
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  // Pass 1: discover locations in first-appearance order, remember each
  // node's bucket, count accessors/writers per bucket.
  std::unordered_map<Location, std::uint32_t> index;
  std::vector<Location> found;
  std::vector<std::uint32_t> acc_count;
  std::vector<std::uint32_t> wri_count;
  std::vector<std::uint32_t> node_bucket(n, kNone);
  for (NodeId u = 0; u < n; ++u) {
    const Op o = c.op(u);
    if (o.is_nop()) continue;
    const auto [it, fresh] =
        index.try_emplace(o.loc, static_cast<std::uint32_t>(found.size()));
    if (fresh) {
      found.push_back(o.loc);
      acc_count.push_back(0);
      wri_count.push_back(0);
    }
    node_bucket[u] = it->second;
    ++acc_count[it->second];
    if (o.is_write()) ++wri_count[it->second];
  }

  // Sort the location list; `pos[b]` sends discovery bucket b to its
  // sorted slot.
  const std::size_t nloc = found.size();
  std::vector<std::uint32_t> order(nloc);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return found[a] < found[b];
  });
  std::vector<std::uint32_t> pos(nloc);
  for (std::uint32_t i = 0; i < nloc; ++i) pos[order[i]] = i;

  LocationGroups g;
  g.locs.resize(nloc);
  g.acc_head.assign(nloc + 1, 0);
  g.wri_head.assign(nloc + 1, 0);
  for (std::uint32_t i = 0; i < nloc; ++i) {
    g.locs[i] = found[order[i]];
    g.acc_head[i + 1] = g.acc_head[i] + acc_count[order[i]];
    g.wri_head[i + 1] = g.wri_head[i] + wri_count[order[i]];
  }
  g.acc.resize(g.acc_head[nloc]);
  g.wri.resize(g.wri_head[nloc]);

  // Pass 2: fill. Scanning u ascending keeps every slice id-sorted.
  std::vector<std::uint32_t> acc_at(g.acc_head.begin(),
                                    g.acc_head.end() - 1);
  std::vector<std::uint32_t> wri_at(g.wri_head.begin(),
                                    g.wri_head.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t b = node_bucket[u];
    if (b == kNone) continue;
    const std::uint32_t i = pos[b];
    g.acc[acc_at[i]++] = u;
    if (c.op(u).is_write()) g.wri[wri_at[i]++] = u;
  }
  return g;
}

}  // namespace ccmm
