// ccmm/trace/loc_kernel.hpp
//
// The shared per-location kernel: the two ingredients every streaming
// per-location analysis needs, factored out of trace/large_check.cpp so
// the oracle-backed race engine (analyze/race_oracle.hpp) and the
// model checkers stream the same machinery.
//
//  * group_location_accesses — one O(n + accesses) pass that buckets
//    every accessing node by location, replacing the per-location
//    Computation::writers()/readers() O(n) rescans (O(n·locations)
//    total, which is quadratic at a million nodes with n/8 locations);
//  * reflexive 64-bit reach-mask sweeps — given ≤ 64 marked "anchor"
//    nodes, one forward and one backward O(n + m) sweep compute, for
//    every node v, the anchors with a path to v / from v (v's own mark
//    included). Reflexive on purpose: the consumers' violation tests
//    all mask out v's own anchor bit (`& ~member_bit(v)`), and for any
//    anchor a ≠ v reflexive reach equals strict reach, so one kernel
//    serves both the large_check block masks and the race engine's
//    candidate pruning without a per-edge membership lookup.
//
// Header-only: ccmm_trace links ccmm_analyze (race engines live there),
// so a .cpp here would hand the analyze library an upward dependency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/computation.hpp"

namespace ccmm {

/// Every node touching one location, in increasing node-id order.
/// `accessors` holds readers and writers both; `writers` just the
/// writers (a subset, same order).
struct LocationAccess {
  Location loc = 0;
  std::vector<NodeId> writers;
  std::vector<NodeId> accessors;
};

/// Bucket the computation's accesses by location in one pass; the
/// result is sorted by location. Node ids within each bucket ascend
/// because the pass scans ids in order.
[[nodiscard]] inline std::vector<LocationAccess> group_location_accesses(
    const Computation& c) {
  std::vector<LocationAccess> groups;
  std::unordered_map<Location, std::size_t> index;
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (o.is_nop()) continue;
    const auto [it, fresh] = index.try_emplace(o.loc, groups.size());
    if (fresh) {
      groups.emplace_back();
      groups.back().loc = o.loc;
    }
    LocationAccess& g = groups[it->second];
    g.accessors.push_back(u);
    if (o.is_write()) g.writers.push_back(u);
  }
  std::sort(groups.begin(), groups.end(),
            [](const LocationAccess& a, const LocationAccess& b) {
              return a.loc < b.loc;
            });
  return groups;
}

/// Forward reach sweep: out[v] = member_bit(v) | OR over predecessors'
/// out. After the sweep, bit i of out[v] is set iff the i-th anchor
/// reflexively reaches v. `topo` is any topological order covering
/// every node once; `out` must hold node_count() words (overwritten).
template <class MemberBit>
inline void sweep_reach_forward(const Dag& dag, const std::vector<NodeId>& topo,
                                MemberBit&& member_bit, std::uint64_t* out) {
  for (const NodeId v : topo) {
    std::uint64_t m = member_bit(v);
    for (const NodeId p : dag.pred(v)) m |= out[p];
    out[v] = m;
  }
}

/// Forward sweep carrying two anchor channels at once (large_check's
/// member + writer masks); one pass over the edges instead of two.
template <class MemberBit, class SecondBit>
inline void sweep_reach_forward2(const Dag& dag,
                                 const std::vector<NodeId>& topo,
                                 MemberBit&& member_bit, SecondBit&& second_bit,
                                 std::uint64_t* out, std::uint64_t* out2) {
  for (const NodeId v : topo) {
    std::uint64_t m = member_bit(v);
    std::uint64_t s = second_bit(v);
    for (const NodeId p : dag.pred(v)) {
      m |= out[p];
      s |= out2[p];
    }
    out[v] = m;
    out2[v] = s;
  }
}

/// Backward reach sweep: bit i of out[v] is set iff v reflexively
/// reaches the i-th anchor.
template <class MemberBit>
inline void sweep_reach_backward(const Dag& dag,
                                 const std::vector<NodeId>& topo,
                                 MemberBit&& member_bit, std::uint64_t* out) {
  for (std::size_t i = topo.size(); i-- > 0;) {
    const NodeId v = topo[i];
    std::uint64_t m = member_bit(v);
    for (const NodeId s : dag.succ(v)) m |= out[s];
    out[v] = m;
  }
}

}  // namespace ccmm
