#include "trace/race.hpp"

#include <algorithm>
#include <unordered_map>

namespace ccmm {

std::vector<Race> find_races(const Computation& c) {
  std::vector<Race> races;
  // Group accessors per location, then test pairs for dag-incomparability
  // with the reachability bitsets.
  std::unordered_map<Location, std::vector<NodeId>> accessors;
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (!o.is_nop()) accessors[o.loc].push_back(u);
  }
  for (const auto& [l, nodes] : accessors) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        const NodeId a = nodes[i];
        const NodeId b = nodes[j];
        const bool aw = c.op(a).is_write();
        const bool bw = c.op(b).is_write();
        if (!aw && !bw) continue;  // read/read never races
        if (c.precedes(a, b) || c.precedes(b, a)) continue;
        races.push_back(
            {a, b, l, aw && bw ? RaceKind::kWriteWrite : RaceKind::kReadWrite});
      }
    }
  }
  std::sort(races.begin(), races.end(), [](const Race& x, const Race& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.loc < y.loc;
  });
  return races;
}

}  // namespace ccmm
