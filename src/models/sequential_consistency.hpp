// ccmm/models/sequential_consistency.hpp
//
// Definition 17: sequential consistency, computation-centrically:
//   SC = { (C, Φ) : ∃T ∈ TS(C) ∀l ∀u. Φ(l, u) = W_T(l, u) }
// One topological sort must explain every location at once.
//
// With a known observer function this is the VSC-read problem, which is
// NP-complete in general (Gibbons & Korach 1994), so membership is a
// backtracking search: we grow T one node at a time; a node is placeable
// iff its dag predecessors are placed and, for every location, its
// observed write equals the most recently placed writer. Dead
// (placed-set, current-writer-vector) states are memoized.
#pragma once

#include <memory>
#include <optional>

#include "core/memory_model.hpp"

namespace ccmm {

enum class SearchStatus : std::uint8_t { kYes, kNo, kExhausted };

struct ScResult {
  SearchStatus status = SearchStatus::kNo;
  /// Witnessing topological sort when status == kYes.
  std::optional<std::vector<NodeId>> witness;
  /// Search nodes expanded.
  std::size_t expanded = 0;
};

/// Tuning knobs, used by the ablation benchmark to quantify what the
/// memoization and the LC prefilter buy (both default on).
struct ScOptions {
  std::size_t budget = SIZE_MAX;
  bool memoize_dead_states = true;
  bool lc_prefilter = true;
};

/// Decide (c, phi) ∈ SC. `budget` bounds the number of search states
/// expanded; on exhaustion the status is kExhausted (answer unknown).
[[nodiscard]] ScResult sc_check(const Computation& c,
                                const ObserverFunction& phi,
                                std::size_t budget = SIZE_MAX);

/// Fully parameterized variant.
[[nodiscard]] ScResult sc_check_with(const Computation& c,
                                     const ObserverFunction& phi,
                                     const ScOptions& options);

/// Same answer on a PreparedPair: skips re-validation and runs the LC
/// prefilter on the pair's Φ⁻¹ block partition.
[[nodiscard]] ScResult sc_check_prepared(const PreparedPair& p,
                                         const ScOptions& options = {});

/// The scoped generalization the model compiler lowers partition
/// consistency onto: one topological sort must explain the columns of
/// exactly the locations in `locs` (other locations are unconstrained).
/// SC is the special case locs = phi.active_locations(). The search
/// core is the same backtracking engine as sc_check — it touches only
/// the dag's adjacency lists and the requested Φ columns, never the
/// transitive closure, which is what lets the streaming postmortem path
/// (trace/spec_check.hpp) run it on million-node traces.
/// Precondition: phi is a valid observer function for c (callers sit
/// behind a validity verdict; the LC prefilter option is ignored).
[[nodiscard]] ScResult serialization_check(const Computation& c,
                                           const ObserverFunction& phi,
                                           const std::vector<Location>& locs,
                                           const ScOptions& options = {});

/// Does the topological order `order` explain the columns of `locs` as
/// last-writer functions? A cheap O(n·|locs|) *verification* — the
/// streaming scoped check tries the trace's own execution order first,
/// which is always a witness for scope-consistent executions, before
/// paying for any search. Precondition: phi valid, `order` a
/// permutation of the nodes respecting the dag (not re-checked).
[[nodiscard]] bool order_explains(const Computation& c,
                                  const ObserverFunction& phi,
                                  const std::vector<Location>& locs,
                                  const std::vector<NodeId>& order);

[[nodiscard]] inline bool sequentially_consistent(const Computation& c,
                                                  const ObserverFunction& phi) {
  return sc_check(c, phi).status == SearchStatus::kYes;
}

class SequentialConsistencyModel final : public MemoryModel {
 public:
  [[nodiscard]] std::string name() const override { return "SC"; }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    const auto r = sc_check(c, phi);
    CCMM_CHECK(r.status != SearchStatus::kExhausted,
               "SC search budget exhausted");
    return r.status == SearchStatus::kYes;
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    const auto r = sc_check_prepared(p);
    CCMM_CHECK(r.status != SearchStatus::kExhausted,
               "SC search budget exhausted");
    return r.status == SearchStatus::kYes;
  }

  [[nodiscard]] static std::shared_ptr<const SequentialConsistencyModel>
  instance();
};

}  // namespace ccmm
