#include "models/relations.hpp"

namespace ccmm {

const char* relation_name(ModelRelation r) {
  switch (r) {
    case ModelRelation::kEqual:
      return "equal";
    case ModelRelation::kStrictlyStronger:
      return "strictly stronger";
    case ModelRelation::kStrictlyWeaker:
      return "strictly weaker";
    case ModelRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

ComparisonResult compare_models(const MemoryModel& a, const MemoryModel& b,
                                const std::vector<CPhi>& universe) {
  ComparisonResult r;
  r.universe = universe.size();
  CheckContext ctx;  // one preparation serves both models per pair
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const PreparedPair p = ctx.prepare(universe[i].c, universe[i].phi);
    const bool ina = a.contains_prepared(p);
    const bool inb = b.contains_prepared(p);
    if (ina) ++r.in_a;
    if (inb) ++r.in_b;
    if (ina && inb) ++r.in_both;
    if (ina && !inb && r.witness_a_minus_b == SIZE_MAX) r.witness_a_minus_b = i;
    if (inb && !ina && r.witness_b_minus_a == SIZE_MAX) r.witness_b_minus_a = i;
  }
  const bool a_sub_b = r.witness_a_minus_b == SIZE_MAX;
  const bool b_sub_a = r.witness_b_minus_a == SIZE_MAX;
  if (a_sub_b && b_sub_a)
    r.relation = ModelRelation::kEqual;
  else if (a_sub_b)
    r.relation = ModelRelation::kStrictlyStronger;
  else if (b_sub_a)
    r.relation = ModelRelation::kStrictlyWeaker;
  else
    r.relation = ModelRelation::kIncomparable;
  return r;
}

std::vector<std::size_t> membership_counts(
    const std::vector<const MemoryModel*>& models,
    const std::vector<CPhi>& universe) {
  std::vector<std::size_t> counts(models.size(), 0);
  CheckContext ctx;  // one preparation serves every model per pair
  for (const auto& pair : universe) {
    const PreparedPair p = ctx.prepare(pair.c, pair.phi);
    for (std::size_t m = 0; m < models.size(); ++m)
      if (models[m]->contains_prepared(p)) ++counts[m];
  }
  return counts;
}

MonotonicityResult check_monotonicity(const MemoryModel& model,
                                      const std::vector<CPhi>& universe) {
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const auto& [c, phi] = universe[i];
    if (!model.contains(c, phi)) continue;
    // Try deleting each edge in turn (single-edge relaxations generate all
    // relaxations transitively, and membership must survive each step).
    for (const auto& e : c.dag().edges()) {
      Dag relaxed(c.node_count());
      for (const auto& e2 : c.dag().edges())
        if (!(e2 == e)) relaxed.add_edge(e2.from, e2.to);
      const Computation cr(std::move(relaxed), c.ops());
      if (!model.contains(cr, phi)) return {false, i};
    }
  }
  return {};
}

}  // namespace ccmm
