// ccmm/models/spec.hpp
//
// Declarative model specs. A consistency model, in the fragment this
// repo's checkers decide, is a conjunction of four axiom families over
// a (computation, observer) pair:
//
//  * Q-dag triple axioms (Definition 20 cube corners): for all
//    l and u ≺ v ≺ w with the named coordinates writing l,
//    Φ(l,u) = Φ(l,w) ⇒ Φ(l,v) = Φ(l,u);
//  * freshness (the [BFJ+96a] strengthening behind WN⁺/NN⁺): a node
//    with a writer-ancestor never observes ⊥;
//  * order axioms: some family of topological sorts must explain the
//    observer's columns as last-writer functions — per location
//    (Definition 18, LC), per declared location *scope* (partition
//    consistency à la Cheng–Higham–Kawash: one witness sort jointly
//    explains every location of a scope), or globally (Definition 17,
//    SC).
//
// ModelSpec is the value type; models/compile.hpp lowers a spec onto
// the prepared checkers. The surface syntax (read_model_specs) is
// line-oriented like io/text.hpp:
//
//     model PC2
//     scope 0 1        # one witness sort for locations {0, 1}
//     scope 2 3
//     axiom WNN        # a cube corner: u must write; v, w free
//     fresh
//     end
//
// `order location` / `order global` declare the LC- and SC-shaped
// order axioms; `scope` lines imply `order scoped`. Locations not
// covered by any scope are implicitly singleton scopes, so scoped
// order always implies per-location order. Parse errors carry 1-based
// line numbers (SpecParseError), matching the trace parser's style.
//
// spec_implies gives the *derived lattice*: a sound syntactic
// implication test between specs (a ⇒ b means compiled(a) ⊆
// compiled(b)). The registry's classify short-circuiting and
// ModelSuite's hardcoded gates are both instances of these rules
// (tests pin the agreement).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/op.hpp"
#include "models/qdag.hpp"

namespace ccmm {

/// Which family of serialization witnesses the spec demands.
enum class OrderAxiom : std::uint8_t {
  kNone = 0,      // no order axiom
  kPerLocation,   // ∀l ∃T: Φ(l,·) = W_T(l,·)            (LC-shaped)
  kScoped,        // ∀ scope S ∃T ∀l ∈ S: Φ(l,·) = W_T(l,·); locations
                  // outside every scope are singleton scopes
  kGlobal,        // ∃T ∀l: Φ(l,·) = W_T(l,·)            (SC-shaped)
};

[[nodiscard]] const char* order_axiom_name(OrderAxiom order);

/// One declared scope: a set of locations that must be explained by a
/// single witness sort. Kept sorted and duplicate-free by normalize().
struct ScopeSpec {
  std::vector<Location> locations;
  [[nodiscard]] bool operator==(const ScopeSpec&) const = default;
};

struct ModelSpec {
  std::string name;
  OrderAxiom order = OrderAxiom::kNone;
  /// Non-empty iff order == kScoped. Scopes are pairwise disjoint.
  std::vector<ScopeSpec> scopes;
  /// Q-dag triple axioms (conjunction). CubeSpec{u,v,w} constrains
  /// which coordinates must write the location (qdag.hpp).
  std::vector<CubeSpec> axioms;
  bool freshness = false;

  /// Canonicalize: sort/dedupe scope members and axioms, drop empty
  /// and singleton scopes (a singleton scope is just the implicit
  /// per-location axiom), demote kScoped with no surviving scope to
  /// kPerLocation, and drop axioms implied by a stronger sibling or by
  /// the order axiom. Throws std::invalid_argument on overlapping
  /// scopes or a kScoped order with no scopes at construction sites
  /// that skipped validate().
  void normalize();

  /// Structural well-formedness (pre-normalize): non-empty name,
  /// scopes only with kScoped, pairwise-disjoint scope members.
  /// Returns an error message, empty when fine.
  [[nodiscard]] std::string validate() const;

  /// Structural fingerprint of the *normalized* spec — stable across
  /// runs, used to key membership caches (two specs with equal digests
  /// denote the same model by construction).
  [[nodiscard]] std::string digest() const;

  /// Surface-syntax rendering (parseable by read_model_specs).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const ModelSpec&) const = default;
};

/// Does cube axiom `a` imply cube axiom `b` (as constraints on the same
/// pair)? An axiom quantifies over triples satisfying its write
/// constraints, so fewer constraints = more triples = stronger:
/// a ⇒ b iff constraints(a) ⊆ constraints(b).
[[nodiscard]] bool cube_axiom_implies(CubeSpec a, CubeSpec b);

/// Sound syntactic implication on order axioms: global ≥ scoped ≥
/// per-location ≥ none; between two scoped axioms, a ⇒ b iff every
/// scope of b is contained in some scope of a.
[[nodiscard]] bool order_axiom_implies(OrderAxiom a,
                                       const std::vector<ScopeSpec>& a_scopes,
                                       OrderAxiom b,
                                       const std::vector<ScopeSpec>& b_scopes);

/// The derived lattice: true ⇒ every pair of compiled(a) is a pair of
/// compiled(b). Complete on the bundled specs (the paper's Theorem 21
/// lattice falls out) but conservative in general — false means
/// "not derivable syntactically", not a counterexample. Key rules:
///  * a per-location-or-stronger order axiom implies every cube axiom
///    (LC ⊆ NN ⊆ every corner) and freshness (a witness sort's last
///    writer is never ⊥ past a writer-ancestor);
///  * cube axioms imply weaker cube axioms (cube_axiom_implies);
///  * order axioms compare by order_axiom_implies.
[[nodiscard]] bool spec_implies(const ModelSpec& a, const ModelSpec& b);

/// Line-numbered spec parse failure, in the trace-parser style:
/// "spec line 12: unknown directive 'axoim'".
class SpecParseError : public std::runtime_error {
 public:
  SpecParseError(std::size_t line, const std::string& message)
      : std::runtime_error(format_message(line, message)), line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  static std::string format_message(std::size_t line,
                                    const std::string& message);
  std::size_t line_;
};

/// Parse a spec pack: a sequence of `model NAME ... end` blocks.
/// Throws SpecParseError with a 1-based line number on malformed
/// input. Returned specs are validated and normalized.
[[nodiscard]] std::vector<ModelSpec> read_model_specs(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] std::vector<ModelSpec> read_model_specs(const std::string& text);

/// The eight bundled specs, in suite-bit order: SC, LC, NN, NW, WN,
/// WW, WN+, NN+. These are the declarative *sources* for the built-in
/// models; the compiler lowers them back onto the same hand-fused
/// prepared checkers (models/compile.hpp), and tests pin the
/// round-trip byte-identical.
[[nodiscard]] const std::vector<ModelSpec>& builtin_model_specs();

/// The bundled spec-pack clients (first externally-shaped models):
///  * coherence-only "COH": per-location order and nothing else —
///    definitionally equal to LC, which makes it the cheapest
///    compiled-vs-fused differential;
///  * partition consistency "PC2": locations {0,1} and {2,3} each
///    jointly serialized (Cheng–Higham–Kawash shaped);
///  * "TSO-like": WN ∩ NW ∩ freshness — writes serialize against both
///    read-after-write and write-after-read triple patterns and reads
///    never miss a program-order-earlier write, but no global sort is
///    demanded.
[[nodiscard]] ModelSpec coherence_spec();
[[nodiscard]] ModelSpec partition_spec(std::string name,
                                       std::vector<ScopeSpec> scopes);
[[nodiscard]] ModelSpec tso_like_spec();

/// The three clients above as one pack (what examples/specs/pack.spec
/// contains).
[[nodiscard]] std::vector<ModelSpec> bundled_spec_pack();

}  // namespace ccmm
