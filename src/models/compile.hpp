// ccmm/models/compile.hpp
//
// The model compiler: lower a declarative ModelSpec (models/spec.hpp)
// into a CompiledModel whose contains_prepared plan reuses the whole
// prepared-pair machinery — the frozen closure and precedence oracle
// behind PreparedPair::precedes, the Φ⁻¹ block bitsets behind the
// named Q-dag scans, the per-location writer lists, and the
// backtracking serialization engine. Lowering rules:
//
//   axiom XYZ, w-independent   -> qdag_consistent_prepared (the named
//                                 64-writer mask fast path)
//   axiom XYW (w constrained)  -> cube_consistent_prepared cubic scan
//   fresh                      -> observer_is_fresh_prepared
//   order location             -> location_consistent_prepared
//   order global               -> sc_check_prepared (budgeted search)
//   scope lines                -> serialization_check per scope +
//                                 location_consistent_at on uncovered
//                                 locations
//
// The plan runs cheapest-first (named scans, freshness, cubic scans,
// LC, scoped/global search last), so compiled built-ins execute the
// *same* checker calls as their hand-fused originals — the
// differential tests pin byte-identity, and the hand-fused paths
// survive only as the functions the compiler lowers onto.
//
// ModelRegistry holds compiled models by name and classifies prepared
// pairs against all of them with short-circuiting *derived* from
// spec_implies — the generalization of ModelSuite's hardcoded
// Theorem 21 gates to arbitrary spec sets (acceptance propagates down
// the lattice, rejection propagates up).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "models/location_consistency.hpp"
#include "models/sequential_consistency.hpp"
#include "models/spec.hpp"
#include "models/suite.hpp"
#include "models/wn_plus.hpp"

namespace ccmm {

struct CompileOptions {
  /// Budget for each serialization search (global or per scope) a
  /// membership query may run. contains() / contains_prepared() abort
  /// (CCMM_CHECK) on exhaustion, like the hand-fused SC model;
  /// check_prepared reports it instead.
  std::size_t sc_budget = SIZE_MAX;
};

/// Membership with explicit budget-exhaustion reporting, for callers
/// (the registry, the anomaly classifier) that must degrade gracefully.
struct CompiledVerdict {
  bool member = false;
  bool exhausted = false;  // a search ran out of budget; member is false
};

class CompiledModel final : public MemoryModel {
 public:
  explicit CompiledModel(ModelSpec spec, const CompileOptions& options = {});

  [[nodiscard]] std::string name() const override { return spec_.name; }
  /// Structural tag: two compiled models with the same normalized spec
  /// share cache entries; same-named models with different axioms never
  /// collide.
  [[nodiscard]] std::string cache_tag() const override;
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override;
  /// Pruned enumeration: when the spec carries a named Q-dag axiom the
  /// enumerator of that corner's QDagModel drives (prefix-pruned
  /// backtracking over columns), filtered by the full plan — the
  /// IntersectionModel pattern. Specs without a named axiom fall back
  /// to generate-and-test, exactly like the hand-fused LC/SC models.
  bool for_each_member_observer(
      const Computation& c,
      const std::function<bool(const ObserverFunction&)>& visit)
      const override;

  /// contains_prepared with the budget surfaced instead of asserted.
  [[nodiscard]] CompiledVerdict check_prepared(const PreparedPair& p) const;

  [[nodiscard]] const ModelSpec& spec() const { return spec_; }
  [[nodiscard]] const CompileOptions& options() const { return options_; }

  /// How the spec lowers onto the streaming large_check path.
  struct StreamingPlan {
    /// Suite bits (incl. kSuiteFresh) whose conjunction large_check
    /// must report for the mask-decidable part of the plan.
    std::uint32_t mask = 0;
    /// Scoped order: per-scope serialization searches remain (plus the
    /// per-location LC verdicts for uncovered locations, folded into
    /// `mask` via kSuiteLC).
    bool scoped = false;
    /// Global order: the full SC search remains after the LC masks.
    bool global = false;
    /// False when some axiom has no streaming lowering (a w-constrained
    /// cube corner needs the cubic scan, which wants the closure).
    bool streamable = true;
  };
  [[nodiscard]] StreamingPlan streaming_plan() const;

 private:
  ModelSpec spec_;
  CompileOptions options_;
  std::vector<DagPred> named_;     // w-independent axioms, fast path
  std::vector<CubeSpec> cubic_;    // the rest, cubic scan
};

/// Compile a spec (normalizing a copy first).
[[nodiscard]] std::shared_ptr<const CompiledModel> compile_model(
    ModelSpec spec, const CompileOptions& options = {});

struct RegistryOptions {
  std::size_t sc_budget = SIZE_MAX;
  /// Derived-lattice pruning; off = evaluate every entry independently
  /// (the ablation the differential tests run both ways).
  bool short_circuit = true;
};

/// A named collection of compiled models plus the implication lattice
/// spec_implies derives between them. Holds at most 64 entries so a
/// classification is one bitmask.
class ModelRegistry {
 public:
  struct Entry {
    ModelSpec spec;
    std::shared_ptr<const CompiledModel> model;
  };

  ModelRegistry() = default;

  /// The eight built-in specs followed by the bundled spec pack
  /// (PC2, COH, TSO) — what --list-models prints before any --spec.
  [[nodiscard]] static const ModelRegistry& bundled();

  /// Register (or replace, by name) a spec; returns its index. The
  /// spec is normalized and the implication lattice re-derived.
  std::size_t add(ModelSpec spec, const CompileOptions& options = {});

  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Bit i of the result = (p ∈ entries()[i]). Entries are evaluated
  /// weakest-first along the derived lattice; with short_circuit a
  /// rejection by a weaker model decides every stronger one and an
  /// acceptance by a stronger model decides every weaker one without
  /// running its checker (answer-preserving — differentially tested
  /// against the unpruned sweep). Budget-exhausted entries report
  /// non-membership and set *exhausted.
  [[nodiscard]] std::uint64_t classify(const PreparedPair& p,
                                       const RegistryOptions& options = {},
                                       bool* exhausted = nullptr) const;

  /// spec_implies(entries[i], entries[j]) as a row bitmask — the derived
  /// lattice classify() walks, exposed for tests and --list-models.
  [[nodiscard]] std::uint64_t implies_mask(std::size_t i) const {
    return implies_[i];
  }

 private:
  void derive();

  std::vector<Entry> entries_;
  std::vector<std::uint64_t> implies_;
  std::vector<std::size_t> eval_order_;  // weakest-first topological
};

}  // namespace ccmm
