#include "models/sequential_consistency.hpp"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "models/location_consistency.hpp"

namespace ccmm {
namespace {

struct ScSearch {
  const Computation& c;
  const ObserverFunction& phi;
  std::vector<Location> locs;          // locations the sort must explain
  std::vector<std::size_t> loc_index;  // location -> index in locs
  std::vector<std::vector<NodeId>> col;  // col[i][u] = Φ(locs[i], u), dense
  // Block partition of each column (0 = B_⊥) and, per block, how many
  // unplaced non-writers still have to observe it. A write to locs[i] is
  // only placeable when the current block is drained: once cur[i] moves
  // on, an old block's writer never becomes current again, so any
  // remaining observer of it would be permanently unplaceable — pruning
  // such placements is sound, not heuristic.
  std::vector<std::vector<std::uint32_t>> blk;  // blk[i][u], dense
  std::vector<std::vector<std::size_t>> pending;  // pending[i][block]
  std::vector<std::uint32_t> cur_blk;             // block of cur[i]
  std::vector<std::size_t> indeg;
  DynBitset placed;
  std::vector<NodeId> cur;  // current last writer per active location
  std::vector<NodeId> order;
  std::vector<NodeId> witness;          // filled at the success leaf
  std::unordered_set<std::string> dead;  // exact encodings of failed states
  std::size_t budget;
  bool memoize;
  std::size_t expanded = 0;

  ScSearch(const Computation& comp, const ObserverFunction& f,
           std::vector<Location> ls, std::size_t b, bool use_memo)
      : c(comp),
        phi(f),
        placed(comp.node_count()),
        budget(b),
        memoize(use_memo) {
    locs = std::move(ls);
    Location max_loc = 0;
    for (const Location l : locs) max_loc = std::max(max_loc, l);
    loc_index.assign(locs.empty() ? 0 : max_loc + 1, SIZE_MAX);
    for (std::size_t i = 0; i < locs.size(); ++i) loc_index[locs[i]] = i;
    // Dense Φ columns: placeable() probes Φ for every active location of
    // every ready candidate at every expansion, so the per-call column
    // search inside ObserverFunction::get would dominate the search.
    col.resize(locs.size());
    blk.resize(locs.size());
    pending.resize(locs.size());
    cur_blk.assign(locs.size(), 0);
    for (std::size_t i = 0; i < locs.size(); ++i) {
      col[i].resize(c.node_count());
      blk[i].resize(c.node_count());
      std::unordered_map<NodeId, std::uint32_t> block_of_writer;
      for (NodeId u = 0; u < c.node_count(); ++u) {
        const NodeId x = phi.get(locs[i], u);
        col[i][u] = x;
        blk[i][u] =
            x == kBottom
                ? 0
                : block_of_writer
                      .try_emplace(x, static_cast<std::uint32_t>(
                                          block_of_writer.size() + 1))
                      .first->second;
      }
      pending[i].assign(block_of_writer.size() + 1, 0);
      for (NodeId u = 0; u < c.node_count(); ++u)
        if (!c.op(u).writes(locs[i])) ++pending[i][blk[i][u]];
    }
    indeg.resize(c.node_count());
    for (NodeId u = 0; u < c.node_count(); ++u)
      indeg[u] = c.dag().pred(u).size();
    cur.assign(locs.size(), kBottom);
    order.reserve(c.node_count());
  }

  /// Exact state key (placed set + current writers): memoizing on a
  /// hash alone would make a collision flip the answer.
  [[nodiscard]] std::string state_key() const {
    std::string key;
    key.reserve(placed.word_count() * 8 + cur.size() * 4);
    for (std::size_t w = 0; w < placed.word_count(); ++w) {
      const auto word = placed.word(w);
      for (int b = 0; b < 8; ++b)
        key.push_back(static_cast<char>((word >> (8 * b)) & 0xff));
    }
    for (const NodeId w : cur)
      for (int b = 0; b < 4; ++b)
        key.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
    return key;
  }

  /// Can node u be the next element of T in the current state?
  [[nodiscard]] bool placeable(NodeId u) const {
    if (placed.test(u) || indeg[u] != 0) return false;
    const Op o = c.op(u);
    for (std::size_t i = 0; i < locs.size(); ++i) {
      if (o.writes(locs[i])) continue;  // a write is its own last writer
      if (col[i][u] != cur[i]) return false;
    }
    if (o.is_write() && o.loc < loc_index.size() &&
        loc_index[o.loc] != SIZE_MAX) {
      // Don't retire a block that still has unplaced observers.
      const std::size_t i = loc_index[o.loc];
      if (pending[i][cur_blk[i]] != 0) return false;
    }
    return true;
  }

  SearchStatus run() {
    if (++expanded > budget) return SearchStatus::kExhausted;
    if (order.size() == c.node_count()) {
      witness = order;
      return SearchStatus::kYes;
    }
    const std::string key = memoize ? state_key() : std::string();
    if (memoize && dead.contains(key)) return SearchStatus::kNo;

    bool exhausted = false;
    for (NodeId u = 0; u < c.node_count(); ++u) {
      if (!placeable(u)) continue;
      // Place u.
      placed.set(u);
      const std::size_t saved_indeg = indeg[u];
      indeg[u] = SIZE_MAX;
      for (const NodeId v : c.dag().succ(u)) --indeg[v];
      order.push_back(u);
      const Op o = c.op(u);
      NodeId saved_cur = kBottom;
      std::uint32_t saved_cur_blk = 0;
      std::size_t li = SIZE_MAX;
      if (o.is_write() && o.loc < loc_index.size() &&
          loc_index[o.loc] != SIZE_MAX) {
        li = loc_index[o.loc];
        saved_cur = cur[li];
        cur[li] = u;
        saved_cur_blk = cur_blk[li];
        cur_blk[li] = blk[li][u];  // a writer's block is its own
      }
      for (std::size_t i = 0; i < locs.size(); ++i)
        if (!o.writes(locs[i])) --pending[i][blk[i][u]];
      const SearchStatus s = run();
      // Undo.
      for (std::size_t i = 0; i < locs.size(); ++i)
        if (!o.writes(locs[i])) ++pending[i][blk[i][u]];
      if (li != SIZE_MAX) {
        cur[li] = saved_cur;
        cur_blk[li] = saved_cur_blk;
      }
      order.pop_back();
      for (const NodeId v : c.dag().succ(u)) ++indeg[v];
      indeg[u] = saved_indeg;
      placed.reset(u);

      if (s == SearchStatus::kYes) return s;
      if (s == SearchStatus::kExhausted) exhausted = true;
    }
    if (exhausted) return SearchStatus::kExhausted;
    if (memoize) dead.insert(key);
    return SearchStatus::kNo;
  }
};

}  // namespace

namespace {

ScResult sc_search_validated(const Computation& c, const ObserverFunction& phi,
                             const ScOptions& options) {
  ScResult result;
  ScSearch search(c, phi, phi.active_locations(), options.budget,
                  options.memoize_dead_states);
  result.status = search.run();
  result.expanded = search.expanded;
  if (result.status == SearchStatus::kYes)
    result.witness = std::move(search.witness);
  return result;
}

}  // namespace

ScResult serialization_check(const Computation& c, const ObserverFunction& phi,
                             const std::vector<Location>& locs,
                             const ScOptions& options) {
  // Inactive locations (no writers, all-⊥ column) are explained by any
  // sort; dropping them keeps the per-expansion placeable() loop tight.
  std::vector<Location> active;
  for (const Location l : locs)
    for (NodeId u = 0; u < c.node_count(); ++u)
      if (phi.get(l, u) != kBottom) {
        active.push_back(l);
        break;
      }
  ScResult result;
  ScSearch search(c, phi, std::move(active), options.budget,
                  options.memoize_dead_states);
  result.status = search.run();
  result.expanded = search.expanded;
  if (result.status == SearchStatus::kYes)
    result.witness = std::move(search.witness);
  return result;
}

bool order_explains(const Computation& c, const ObserverFunction& phi,
                    const std::vector<Location>& locs,
                    const std::vector<NodeId>& order) {
  if (order.size() != c.node_count()) return false;
  // One pass per location, carrying the last writer placed so far.
  for (const Location l : locs) {
    NodeId cur = kBottom;
    for (const NodeId u : order) {
      if (c.op(u).writes(l)) {
        cur = u;
        if (phi.get(l, u) != u) return false;  // 2.3, defensively
      } else if (phi.get(l, u) != cur) {
        return false;
      }
    }
  }
  return true;
}

ScResult sc_check_with(const Computation& c, const ObserverFunction& phi,
                       const ScOptions& options) {
  if (!is_valid_observer(c, phi)) return {};
  // SC ⊆ LC and the LC test is linear: a cheap complete rejection filter.
  if (options.lc_prefilter && !location_consistent(c, phi)) return {};
  return sc_search_validated(c, phi, options);
}

ScResult sc_check_prepared(const PreparedPair& p, const ScOptions& options) {
  if (!p.valid()) return {};
  if (options.lc_prefilter && !location_consistent_prepared(p)) return {};
  return sc_search_validated(p.computation(), p.observer(), options);
}

ScResult sc_check(const Computation& c, const ObserverFunction& phi,
                  std::size_t budget) {
  ScOptions options;
  options.budget = budget;
  return sc_check_with(c, phi, options);
}

std::shared_ptr<const SequentialConsistencyModel>
SequentialConsistencyModel::instance() {
  static const auto m = std::make_shared<const SequentialConsistencyModel>();
  return m;
}

}  // namespace ccmm
