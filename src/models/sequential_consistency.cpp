#include "models/sequential_consistency.hpp"

#include <unordered_set>

#include "models/location_consistency.hpp"

namespace ccmm {
namespace {

struct ScSearch {
  const Computation& c;
  const ObserverFunction& phi;
  std::vector<Location> locs;          // active locations
  std::vector<std::size_t> loc_index;  // location -> index in locs
  std::vector<std::size_t> indeg;
  DynBitset placed;
  std::vector<NodeId> cur;  // current last writer per active location
  std::vector<NodeId> order;
  std::vector<NodeId> witness;          // filled at the success leaf
  std::unordered_set<std::string> dead;  // exact encodings of failed states
  std::size_t budget;
  bool memoize;
  std::size_t expanded = 0;

  ScSearch(const Computation& comp, const ObserverFunction& f, std::size_t b,
           bool use_memo)
      : c(comp),
        phi(f),
        placed(comp.node_count()),
        budget(b),
        memoize(use_memo) {
    locs = phi.active_locations();
    Location max_loc = 0;
    for (const Location l : locs) max_loc = std::max(max_loc, l);
    loc_index.assign(locs.empty() ? 0 : max_loc + 1, SIZE_MAX);
    for (std::size_t i = 0; i < locs.size(); ++i) loc_index[locs[i]] = i;
    indeg.resize(c.node_count());
    for (NodeId u = 0; u < c.node_count(); ++u)
      indeg[u] = c.dag().pred(u).size();
    cur.assign(locs.size(), kBottom);
    order.reserve(c.node_count());
  }

  /// Exact state key (placed set + current writers): memoizing on a
  /// hash alone would make a collision flip the answer.
  [[nodiscard]] std::string state_key() const {
    std::string key;
    key.reserve(placed.word_count() * 8 + cur.size() * 4);
    for (std::size_t w = 0; w < placed.word_count(); ++w) {
      const auto word = placed.word(w);
      for (int b = 0; b < 8; ++b)
        key.push_back(static_cast<char>((word >> (8 * b)) & 0xff));
    }
    for (const NodeId w : cur)
      for (int b = 0; b < 4; ++b)
        key.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
    return key;
  }

  /// Can node u be the next element of T in the current state?
  [[nodiscard]] bool placeable(NodeId u) const {
    if (placed.test(u) || indeg[u] != 0) return false;
    const Op o = c.op(u);
    for (std::size_t i = 0; i < locs.size(); ++i) {
      const Location l = locs[i];
      if (o.writes(l)) continue;  // a write is its own last writer
      if (phi.get(l, u) != cur[i]) return false;
    }
    return true;
  }

  SearchStatus run() {
    if (++expanded > budget) return SearchStatus::kExhausted;
    if (order.size() == c.node_count()) {
      witness = order;
      return SearchStatus::kYes;
    }
    const std::string key = memoize ? state_key() : std::string();
    if (memoize && dead.contains(key)) return SearchStatus::kNo;

    bool exhausted = false;
    for (NodeId u = 0; u < c.node_count(); ++u) {
      if (!placeable(u)) continue;
      // Place u.
      placed.set(u);
      const std::size_t saved_indeg = indeg[u];
      indeg[u] = SIZE_MAX;
      for (const NodeId v : c.dag().succ(u)) --indeg[v];
      order.push_back(u);
      const Op o = c.op(u);
      NodeId saved_cur = kBottom;
      std::size_t li = SIZE_MAX;
      if (o.is_write() && o.loc < loc_index.size() &&
          loc_index[o.loc] != SIZE_MAX) {
        li = loc_index[o.loc];
        saved_cur = cur[li];
        cur[li] = u;
      }
      const SearchStatus s = run();
      // Undo.
      if (li != SIZE_MAX) cur[li] = saved_cur;
      order.pop_back();
      for (const NodeId v : c.dag().succ(u)) ++indeg[v];
      indeg[u] = saved_indeg;
      placed.reset(u);

      if (s == SearchStatus::kYes) return s;
      if (s == SearchStatus::kExhausted) exhausted = true;
    }
    if (exhausted) return SearchStatus::kExhausted;
    if (memoize) dead.insert(key);
    return SearchStatus::kNo;
  }
};

}  // namespace

ScResult sc_check_with(const Computation& c, const ObserverFunction& phi,
                       const ScOptions& options) {
  ScResult result;
  if (!is_valid_observer(c, phi)) {
    result.status = SearchStatus::kNo;
    return result;
  }
  // SC ⊆ LC and the LC test is linear: a cheap complete rejection filter.
  if (options.lc_prefilter && !location_consistent(c, phi)) {
    result.status = SearchStatus::kNo;
    return result;
  }
  ScSearch search(c, phi, options.budget, options.memoize_dead_states);
  result.status = search.run();
  result.expanded = search.expanded;
  if (result.status == SearchStatus::kYes)
    result.witness = std::move(search.witness);
  return result;
}

ScResult sc_check(const Computation& c, const ObserverFunction& phi,
                  std::size_t budget) {
  ScOptions options;
  options.budget = budget;
  return sc_check_with(c, phi, options);
}

std::shared_ptr<const SequentialConsistencyModel>
SequentialConsistencyModel::instance() {
  static const auto m = std::make_shared<const SequentialConsistencyModel>();
  return m;
}

}  // namespace ccmm
