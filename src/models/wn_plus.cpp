#include "models/wn_plus.hpp"

namespace ccmm {

bool observer_is_fresh(const Computation& c, const ObserverFunction& phi) {
  if (phi.node_count() != c.node_count()) return false;
  const Dag& dag = c.dag();
  for (const Location l : c.written_locations()) {
    // Union of descendants of all writers: the nodes a write precedes.
    DynBitset shadow(c.node_count());
    for (const NodeId w : c.writers(l)) shadow |= dag.descendants(w);
    bool ok = true;
    shadow.for_each([&](std::size_t u) {
      if (phi.get(l, static_cast<NodeId>(u)) == kBottom) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

bool observer_is_fresh_prepared(const PreparedPair& p) {
  const Computation& c = p.computation();
  const ObserverFunction& phi = p.observer();
  if (phi.node_count() != c.node_count()) return false;
  const Dag& dag = c.dag();
  for (const Location l : c.written_locations()) {
    // Union of descendants of all writers: the nodes a write precedes.
    // The prepared writer lists cover Φ-active locations only, so fall
    // back to the computation for all-⊥ columns (which are exactly the
    // interesting ones for freshness).
    const auto* lp = p.location(l);
    DynBitset& shadow = p.context().scratch_bits(c.node_count());
    if (lp != nullptr) {
      for (const NodeId w : lp->writers) shadow |= dag.descendants(w);
    } else {
      for (const NodeId w : c.writers(l)) shadow |= dag.descendants(w);
    }
    bool ok = true;
    shadow.for_each([&](std::size_t u) {
      if (phi.get(l, static_cast<NodeId>(u)) == kBottom) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

bool wn_plus_consistent(const Computation& c, const ObserverFunction& phi) {
  return observer_is_fresh(c, phi) && qdag_consistent(c, phi, DagPred::kWN);
}

bool wn_plus_consistent_prepared(const PreparedPair& p) {
  if (!p.valid()) return false;
  return observer_is_fresh_prepared(p) &&
         qdag_consistent_prepared(p, DagPred::kWN);
}

bool nn_plus_consistent_prepared(const PreparedPair& p) {
  if (!p.valid()) return false;
  return observer_is_fresh_prepared(p) &&
         qdag_consistent_prepared(p, DagPred::kNN);
}

std::shared_ptr<const WnPlusModel> WnPlusModel::instance() {
  static const auto m = std::make_shared<const WnPlusModel>();
  return m;
}

std::shared_ptr<const NnPlusModel> NnPlusModel::instance() {
  static const auto m = std::make_shared<const NnPlusModel>();
  return m;
}

}  // namespace ccmm
