// ccmm/models/location_consistency.hpp
//
// Definition 18: location consistency (often called coherence).
//   LC = { (C, Φ) : ∀l ∃T ∈ TS(C) ∀u. Φ(l, u) = W_T(l, u) }
// Each location may be serialized by its own topological sort.
//
// Membership is decided in polynomial time by a block-quotient argument:
// for location l, Φ(l,·) partitions V into B_⊥ = Φ⁻¹(⊥) and B_x = Φ⁻¹(x)
// per observed write x. A witnessing T exists iff the quotient graph on
// blocks (edges inherited from the dag) is acyclic and B_⊥ can be placed
// first. Observer validity (2.2/2.3) guarantees each block's writer can
// lead its block, so no further condition is needed. See DESIGN.md.
#pragma once

#include <memory>
#include <optional>

#include "core/memory_model.hpp"

namespace ccmm {

/// Is (c, phi) location consistent? O(L·(V+E)) after closure.
[[nodiscard]] bool location_consistent(const Computation& c,
                                       const ObserverFunction& phi);

/// Same answer on a PreparedPair: reuses the pair's validity verdict and
/// Φ⁻¹ block partition instead of recomputing both.
[[nodiscard]] bool location_consistent_prepared(const PreparedPair& p);

/// Is location l of (c, phi) serializable? (phi must be valid.)
[[nodiscard]] bool location_consistent_at(const Computation& c,
                                          const ObserverFunction& phi,
                                          Location l);

namespace detail {
/// Shared core of the LC test: does the quotient graph on blocks (node u
/// in block block_of[u]; block 0 = B_⊥) admit a topological order with
/// block 0 first? Isolated empty blocks are permitted and harmless.
[[nodiscard]] bool lc_quotient_sortable(const Computation& c,
                                        const std::uint32_t* block_of,
                                        std::size_t nblocks,
                                        std::vector<std::size_t>* order_out);
}  // namespace detail

/// A topological sort T of c with W_T(l,·) = Φ(l,·), if one exists —
/// the per-location witness demanded by Definition 18.
[[nodiscard]] std::optional<std::vector<NodeId>> lc_witness(
    const Computation& c, const ObserverFunction& phi, Location l);

class LocationConsistencyModel final : public MemoryModel {
 public:
  [[nodiscard]] std::string name() const override { return "LC"; }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    return location_consistent(c, phi);
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    return location_consistent_prepared(p);
  }

  [[nodiscard]] static std::shared_ptr<const LocationConsistencyModel>
  instance();
};

}  // namespace ccmm
