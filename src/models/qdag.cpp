#include "models/qdag.hpp"

#include <cstdint>
#include <unordered_map>

#include "util/str.hpp"

namespace ccmm {

const char* dag_pred_name(DagPred p) {
  switch (p) {
    case DagPred::kNN:
      return "NN";
    case DagPred::kNW:
      return "NW";
    case DagPred::kWN:
      return "WN";
    case DagPred::kWW:
      return "WW";
  }
  return "?";
}

std::string QDagViolation::to_string() const {
  std::string us = (u == kBottom) ? "_" : format("%u", u);
  return format("Q-dag violation at location %u: u=%s, v=%u, w=%u", loc,
                us.c_str(), v, w);
}

namespace {

void report(QDagViolation* out, Location l, NodeId u, NodeId v, NodeId w) {
  if (out != nullptr) *out = {l, u, v, w};
}

/// Named-predicate check for one location (legacy entry point; the
/// prepared path runs the same scan on the precomputed block partition).
/// `observers_of(x)` must return Φ⁻¹(x) for any observed write x of this
/// location (only queried for NN/NW).
///
/// For a pair v ≺ w with x = Φ(l,w) ≠ Φ(l,v), a violation needs some
/// u ∈ anc(v) ∪ {⊥} with Φ(l,u) = x and Q(l,u,v,w):
///  * NN: any such u; u = ⊥ qualifies whenever x = ⊥.
///  * NW: same u condition but only pairs where v writes l.
///  * WN: Q forces u to write l, and a writer observes itself, so u = x;
///        the condition collapses to x ≠ ⊥ ∧ x ≺ v.
///  * WW: the WN collapse restricted to pairs where v writes l.
template <typename ObserversOf>
bool check_location_impl(const Computation& c, const ObserverFunction& phi,
                         DagPred pred, Location l,
                         const ObserversOf& observers_of,
                         QDagViolation* violation) {
  const Dag& dag = c.dag();
  const std::size_t n = c.node_count();

  const bool v_must_write = pred == DagPred::kNW || pred == DagPred::kWW;
  const bool u_must_write = pred == DagPred::kWN || pred == DagPred::kWW;

  for (NodeId w = 0; w < n; ++w) {
    const NodeId x = phi.get(l, w);
    const DynBitset& anc_w = dag.ancestors(w);
    bool bad = false;
    anc_w.for_each([&](std::size_t vi) {
      if (bad) return;
      const auto v = static_cast<NodeId>(vi);
      if (phi.get(l, v) == x) return;
      if (v_must_write && !c.op(v).writes(l)) return;
      if (u_must_write) {
        // u must be a writer observing x, hence u = x itself.
        if (x != kBottom && dag.precedes(x, v)) {
          report(violation, l, x, v, w);
          bad = true;
        }
        return;
      }
      // u unconstrained: u = ⊥ works when x = ⊥ (⊥ ≺ v always).
      if (x == kBottom) {
        report(violation, l, kBottom, v, w);
        bad = true;
        return;
      }
      const DynBitset& phi_inv_x = observers_of(x);
      const DynBitset& anc_v = dag.ancestors(v);
      if (anc_v.intersects(phi_inv_x)) {
        if (violation != nullptr) {
          DynBitset inter = anc_v;
          inter &= phi_inv_x;
          report(violation, l, static_cast<NodeId>(inter.find_first()), v, w);
        }
        bad = true;
      }
    });
    if (bad) return false;
  }
  return true;
}

/// Legacy per-call path: builds the Φ⁻¹ bitsets in a fresh map.
bool check_location(const Computation& c, const ObserverFunction& phi,
                    DagPred pred, Location l, QDagViolation* violation) {
  const std::size_t n = c.node_count();

  // Φ⁻¹(x) bitsets for each observed write x (needed for NN/NW only).
  const bool need_sets = pred == DagPred::kNN || pred == DagPred::kNW;
  std::unordered_map<NodeId, DynBitset> observers_of;
  if (need_sets) {
    for (NodeId u = 0; u < n; ++u) {
      const NodeId x = phi.get(l, u);
      if (x == kBottom) continue;
      auto [it, fresh] = observers_of.try_emplace(x, DynBitset(n));
      (void)fresh;
      it->second.set(u);
    }
  }
  const auto lookup = [&observers_of](NodeId x) -> const DynBitset& {
    const auto it = observers_of.find(x);
    CCMM_ASSERT(it != observers_of.end());  // w itself observes x
    return it->second;
  };
  return check_location_impl(c, phi, pred, l, lookup, violation);
}

/// Shared body of the cubic custom-predicate scan (validity pre-checked).
bool custom_scan(const Computation& c, const ObserverFunction& phi,
                 const QPredicate& q, QDagViolation* violation) {
  const Dag& dag = c.dag();
  const std::size_t n = c.node_count();
  for (const Location l : phi.active_locations()) {
    for (NodeId w = 0; w < n; ++w) {
      const NodeId x = phi.get(l, w);
      for (NodeId v = 0; v < n; ++v) {
        if (!dag.precedes(v, w)) continue;
        if (phi.get(l, v) == x) continue;
        // u ranges over ancestors of v plus ⊥.
        if (x == kBottom && q(c, l, kBottom, v, w)) {
          report(violation, l, kBottom, v, w);
          return false;
        }
        for (NodeId u = 0; u < n; ++u) {
          if (!dag.precedes(u, v)) continue;
          if (phi.get(l, u) != x) continue;
          if (q(c, l, u, v, w)) {
            report(violation, l, u, v, w);
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace

bool qdag_consistent(const Computation& c, const ObserverFunction& phi,
                     DagPred pred, QDagViolation* violation) {
  if (!is_valid_observer(c, phi)) return false;
  for (const Location l : phi.active_locations())
    if (!check_location(c, phi, pred, l, violation)) return false;
  return true;
}

bool qdag_consistent_prepared(const PreparedPair& p, DagPred pred,
                              QDagViolation* violation) {
  if (!p.valid()) return false;
  const Computation& c = p.computation();
  const Dag& dag = c.dag();
  const std::size_t n = c.node_count();
  const bool v_must_write = pred == DagPred::kNW || pred == DagPred::kWW;
  const bool u_must_write = pred == DagPred::kWN || pred == DagPred::kWW;

  // Same scan as check_location_impl, but on the prepared block
  // partition: Φ(l,v) = Φ(l,w) iff the two nodes share a block, so the
  // inner loop compares dense block indices instead of querying Φ (a
  // per-call column search), and Φ⁻¹(x) is block_sets[bw] directly.
  for (const auto& lp : p.locations()) {
    const Location l = lp.loc;
    const std::uint32_t* block_of = lp.block_of.data();
    for (NodeId w = 0; w < n; ++w) {
      const std::uint32_t bw = block_of[w];
      const NodeId x = lp.block_writer(bw);
      const DynBitset& anc_w = dag.ancestors(w);
      bool bad = false;
      anc_w.for_each([&](std::size_t vi) {
        if (bad) return;
        const auto v = static_cast<NodeId>(vi);
        if (block_of[v] == bw) return;
        if (v_must_write && !c.op(v).writes(l)) return;
        if (u_must_write) {
          // Point query: the pair's oracle (SP labels on Cilk-generated
          // computations, closure otherwise).
          if (x != kBottom && p.precedes(x, v)) {
            report(violation, l, x, v, w);
            bad = true;
          }
          return;
        }
        if (x == kBottom) {
          report(violation, l, kBottom, v, w);
          bad = true;
          return;
        }
        const DynBitset& phi_inv_x = lp.block_sets[bw];
        const DynBitset& anc_v = dag.ancestors(v);
        if (anc_v.intersects(phi_inv_x)) {
          if (violation != nullptr) {
            DynBitset inter = anc_v;
            inter &= phi_inv_x;
            report(violation, l, static_cast<NodeId>(inter.find_first()), v,
                   w);
          }
          bad = true;
        }
      });
      if (bad) return false;
    }
  }
  return true;
}

bool qdag_consistent_custom(const Computation& c, const ObserverFunction& phi,
                            const QPredicate& q, QDagViolation* violation) {
  if (!is_valid_observer(c, phi)) return false;
  return custom_scan(c, phi, q, violation);
}

bool qdag_consistent_custom_prepared(const PreparedPair& p, const QPredicate& q,
                                     QDagViolation* violation) {
  if (!p.valid()) return false;
  return custom_scan(p.computation(), p.observer(), q, violation);
}

std::string cube_name(CubeSpec spec) {
  std::string out = "Q[";
  out += spec.u_writes ? 'W' : 'N';
  out += spec.v_writes ? 'W' : 'N';
  out += spec.w_writes ? 'W' : 'N';
  out += ']';
  return out;
}

namespace {

/// The w-independent corners are the paper's named models.
std::optional<DagPred> named_corner(CubeSpec spec) {
  if (spec.w_writes) return std::nullopt;
  if (!spec.u_writes && !spec.v_writes) return DagPred::kNN;
  if (!spec.u_writes && spec.v_writes) return DagPred::kNW;
  if (spec.u_writes && !spec.v_writes) return DagPred::kWN;
  return DagPred::kWW;
}

QPredicate cube_predicate(CubeSpec spec) {
  return [spec](const Computation& comp, Location l, NodeId u, NodeId v,
                NodeId w) {
    if (spec.u_writes && (u == kBottom || !comp.op(u).writes(l)))
      return false;
    if (spec.v_writes && !comp.op(v).writes(l)) return false;
    if (spec.w_writes && !comp.op(w).writes(l)) return false;
    return true;
  };
}

}  // namespace

bool cube_consistent(const Computation& c, const ObserverFunction& phi,
                     CubeSpec spec) {
  if (const auto pred = named_corner(spec))
    return qdag_consistent(c, phi, *pred);
  return qdag_consistent_custom(c, phi, cube_predicate(spec));
}

bool cube_consistent_prepared(const PreparedPair& p, CubeSpec spec) {
  if (const auto pred = named_corner(spec))
    return qdag_consistent_prepared(p, *pred);
  return qdag_consistent_custom_prepared(p, cube_predicate(spec));
}

std::shared_ptr<const MemoryModel> cube_model(CubeSpec spec) {
  return std::make_shared<PredicateModel>(
      cube_name(spec), PredicateModel::PreparedPred([spec](
                           const PreparedPair& p) {
        return cube_consistent_prepared(p, spec);
      }));
}

std::vector<CubeSpec> all_cube_corners() {
  std::vector<CubeSpec> out;
  for (const bool u : {false, true})
    for (const bool v : {false, true})
      for (const bool w : {false, true}) out.push_back({u, v, w});
  return out;
}

bool QDagModel::for_each_member_observer(
    const Computation& c,
    const std::function<bool(const ObserverFunction&)>& visit) const {
  const Dag& dag = c.dag();
  const std::size_t n = c.node_count();
  const std::vector<NodeId> topo = dag.topological_order();
  const bool v_must_write = pred_ == DagPred::kNW || pred_ == DagPred::kWW;
  const bool u_must_write = pred_ == DagPred::kWN || pred_ == DagPred::kWW;

  // One backtracking state per written location (Condition 20.1 and
  // Definition 2 both constrain the columns independently, so members
  // are exactly the cross product of per-location consistent columns).
  struct LocState {
    Location loc;
    std::vector<std::vector<NodeId>> choices;  // per topo position
    std::vector<NodeId> val;                   // by node id; kBottom if unset
    std::vector<DynBitset> phi_inv;            // Φ⁻¹(x) by writer node id
  };
  std::vector<LocState> locs;
  for (const Location l : c.written_locations()) {
    LocState st;
    st.loc = l;
    st.val.assign(n, kBottom);
    st.phi_inv.assign(n, DynBitset(n));
    st.choices.resize(n);
    const std::vector<NodeId> ws = c.writers(l);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const NodeId u = topo[pos];
      if (c.op(u).writes(l)) {
        st.choices[pos] = {u};  // condition 2.3: writes observe themselves
        continue;
      }
      st.choices[pos].push_back(kBottom);
      for (const NodeId w : ws)
        if (!c.precedes(u, w)) st.choices[pos].push_back(w);  // 2.1 + 2.2
    }
    locs.push_back(std::move(st));
  }

  // Would assigning Φ(l, w) = x violate 20.1? Every triple u ≺ v ≺ w is
  // checked when its maximum w is assigned; all of anc(w) already holds
  // final values then, so a failing prefix has no consistent completion
  // and the subtree is pruned. Same per-v logic as check_location_impl,
  // with phi_inv maintained incrementally instead of precomputed.
  const auto violates = [&](const LocState& st, NodeId w, NodeId x) {
    bool bad = false;
    dag.ancestors(w).for_each([&](std::size_t vi) {
      if (bad) return;
      const auto v = static_cast<NodeId>(vi);
      if (st.val[v] == x) return;
      if (v_must_write && !c.op(v).writes(st.loc)) return;
      if (u_must_write) {
        bad = x != kBottom && dag.precedes(x, v);
        return;
      }
      if (x == kBottom) {
        bad = true;
        return;
      }
      bad = dag.ancestors(v).intersects(st.phi_inv[x]);
    });
    return bad;
  };

  ObserverFunction phi(n);
  // Depth-first over (location, topo position); reaching past the last
  // location means every column is complete and consistent. Returns
  // false iff visit stopped the enumeration.
  std::function<bool(std::size_t, std::size_t)> dfs =
      [&](std::size_t li, std::size_t pos) -> bool {
    if (li == locs.size()) return visit(phi);
    LocState& st = locs[li];
    if (pos == n) return dfs(li + 1, 0);
    const NodeId u = topo[pos];
    for (const NodeId x : st.choices[pos]) {
      if (violates(st, u, x)) continue;
      st.val[u] = x;
      if (x != kBottom) st.phi_inv[x].set(u);
      phi.set(st.loc, u, x);
      const bool go_on = dfs(li, pos + 1);
      st.val[u] = kBottom;
      if (x != kBottom) st.phi_inv[x].reset(u);
      phi.set(st.loc, u, kBottom);
      if (!go_on) return false;
    }
    return true;
  };
  return dfs(0, 0);
}

std::shared_ptr<const QDagModel> QDagModel::nn() {
  static const auto m = std::make_shared<const QDagModel>(DagPred::kNN);
  return m;
}
std::shared_ptr<const QDagModel> QDagModel::nw() {
  static const auto m = std::make_shared<const QDagModel>(DagPred::kNW);
  return m;
}
std::shared_ptr<const QDagModel> QDagModel::wn() {
  static const auto m = std::make_shared<const QDagModel>(DagPred::kWN);
  return m;
}
std::shared_ptr<const QDagModel> QDagModel::ww() {
  static const auto m = std::make_shared<const QDagModel>(DagPred::kWW);
  return m;
}

}  // namespace ccmm
