#include "models/suite.hpp"

#include "models/location_consistency.hpp"
#include "models/wn_plus.hpp"

namespace ccmm {

std::uint32_t ModelSuite::classify(const PreparedPair& p,
                                   const SuiteOptions& opt,
                                   bool* sc_exhausted) {
  if (sc_exhausted != nullptr) *sc_exhausted = false;
  if (!p.valid()) return 0;  // every model rejects an invalid observer

  const bool prune = opt.short_circuit;
  // Weakest first: ∉ WW ⇒ ∉ {NN, NW, WN, LC, SC, WN⁺, NN⁺}.
  const bool in_ww = qdag_consistent_prepared(p, DagPred::kWW);
  const bool in_nw =
      (in_ww || !prune) && qdag_consistent_prepared(p, DagPred::kNW);
  const bool in_wn =
      (in_ww || !prune) && qdag_consistent_prepared(p, DagPred::kWN);
  // NN ⊆ NW ∩ WN (Theorem 21's lattice): both must have admitted the pair.
  const bool in_nn =
      ((in_nw && in_wn) || !prune) && qdag_consistent_prepared(p, DagPred::kNN);
  // LC ⊆ NN.
  const bool in_lc = (in_nn || !prune) && location_consistent_prepared(p);

  bool in_sc = false;
  if (opt.include_sc && (in_lc || !prune)) {
    ScOptions sc_opt;
    sc_opt.budget = opt.sc_budget;
    // When pruning, LC membership is already established above; re-running
    // the prefilter inside sc_check would repeat the same linear test.
    sc_opt.lc_prefilter = !prune;
    const ScResult r = sc_check_prepared(p, sc_opt);
    in_sc = r.status == SearchStatus::kYes;
    if (r.status == SearchStatus::kExhausted && sc_exhausted != nullptr)
      *sc_exhausted = true;
  }

  std::uint32_t mask = 0;
  if (in_sc) mask |= kSuiteSC;
  if (in_lc) mask |= kSuiteLC;
  if (in_nn) mask |= kSuiteNN;
  if (in_nw) mask |= kSuiteNW;
  if (in_wn) mask |= kSuiteWN;
  if (in_ww) mask |= kSuiteWW;

  if (opt.include_plus) {
    // WN⁺ ⊆ WN and NN⁺ ⊆ NN; one freshness test serves both.
    const bool fresh =
        (in_wn || in_nn || !prune) && observer_is_fresh_prepared(p);
    if (fresh && in_wn) mask |= kSuiteWNPlus;
    if (fresh && in_nn) mask |= kSuiteNNPlus;
  }
  return mask;
}

std::uint32_t ModelSuite::classify(const Computation& c,
                                   const ObserverFunction& phi,
                                   const SuiteOptions& opt,
                                   bool* sc_exhausted) {
  return classify(prepare_pair(c, phi), opt, sc_exhausted);
}

const char* ModelSuite::bit_name(std::uint32_t bit) {
  switch (bit) {
    case kSuiteSC:
      return "SC";
    case kSuiteLC:
      return "LC";
    case kSuiteNN:
      return "NN";
    case kSuiteNW:
      return "NW";
    case kSuiteWN:
      return "WN";
    case kSuiteWW:
      return "WW";
    case kSuiteWNPlus:
      return "WN+";
    case kSuiteNNPlus:
      return "NN+";
    case kSuiteFresh:
      return "FRESH";
  }
  return "?";
}

}  // namespace ccmm
