#include "models/compile.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace ccmm {
namespace {

/// The w-independent corners are the paper's named predicates with
/// bitset-accelerated scans; everything else pays the cubic scan.
std::optional<DagPred> named_corner(CubeSpec q) {
  if (q.w_writes) return std::nullopt;
  if (q.u_writes) return q.v_writes ? DagPred::kWW : DagPred::kWN;
  return q.v_writes ? DagPred::kNW : DagPred::kNN;
}

std::uint32_t corner_suite_bit(DagPred pred) {
  switch (pred) {
    case DagPred::kNN:
      return kSuiteNN;
    case DagPred::kNW:
      return kSuiteNW;
    case DagPred::kWN:
      return kSuiteWN;
    case DagPred::kWW:
      return kSuiteWW;
  }
  return 0;
}

/// Constraint count orders corner strength: fewer constraints = more
/// quantified triples = stronger axiom.
int cube_constraints(CubeSpec q) {
  return (q.u_writes ? 1 : 0) + (q.v_writes ? 1 : 0) + (q.w_writes ? 1 : 0);
}

}  // namespace

CompiledModel::CompiledModel(ModelSpec spec, const CompileOptions& options)
    : spec_(std::move(spec)), options_(options) {
  spec_.normalize();
  for (const CubeSpec& q : spec_.axioms) {
    if (const auto pred = named_corner(q))
      named_.push_back(*pred);
    else
      cubic_.push_back(q);
  }
}

std::string CompiledModel::cache_tag() const {
  return "spec\x1d" + spec_.digest();
}

CompiledVerdict CompiledModel::check_prepared(const PreparedPair& p) const {
  CompiledVerdict v;
  if (!p.valid()) return v;
  // Cheapest first: the named 64-writer mask scans, the linear
  // freshness shadow, the cubic corners, then the order axioms with
  // the budgeted searches last.
  for (const DagPred pred : named_)
    if (!qdag_consistent_prepared(p, pred)) return v;
  if (spec_.freshness && !observer_is_fresh_prepared(p)) return v;
  for (const CubeSpec& q : cubic_)
    if (!cube_consistent_prepared(p, q)) return v;

  switch (spec_.order) {
    case OrderAxiom::kNone:
      break;
    case OrderAxiom::kPerLocation:
      if (!location_consistent_prepared(p)) return v;
      break;
    case OrderAxiom::kGlobal: {
      ScOptions opt;
      opt.budget = options_.sc_budget;
      const ScResult r = sc_check_prepared(p, opt);
      if (r.status == SearchStatus::kExhausted) {
        v.exhausted = true;
        return v;
      }
      if (r.status != SearchStatus::kYes) return v;
      break;
    }
    case OrderAxiom::kScoped: {
      const Computation& c = p.computation();
      const ObserverFunction& phi = p.observer();
      // Locations outside every scope are singleton scopes: plain LC.
      for (const Location l : phi.active_locations()) {
        const bool covered = std::any_of(
            spec_.scopes.begin(), spec_.scopes.end(), [&](const ScopeSpec& s) {
              return std::binary_search(s.locations.begin(), s.locations.end(),
                                        l);
            });
        if (!covered && !location_consistent_at(c, phi, l)) return v;
      }
      ScOptions opt;
      opt.budget = options_.sc_budget;
      for (const ScopeSpec& s : spec_.scopes) {
        const ScResult r = serialization_check(c, phi, s.locations, opt);
        if (r.status == SearchStatus::kExhausted) {
          v.exhausted = true;
          return v;
        }
        if (r.status != SearchStatus::kYes) return v;
      }
      break;
    }
  }
  v.member = true;
  return v;
}

bool CompiledModel::contains_prepared(const PreparedPair& p) const {
  const CompiledVerdict v = check_prepared(p);
  CCMM_CHECK(!v.exhausted, "serialization search budget exhausted");
  return v.member;
}

bool CompiledModel::for_each_member_observer(
    const Computation& c,
    const std::function<bool(const ObserverFunction&)>& visit) const {
  // Drive with the strongest named corner's prefix-pruned enumerator:
  // its member set is the tightest superset of ours we can enumerate
  // without generate-and-test.
  const DagPred* best = nullptr;
  int best_constraints = 4;
  for (const DagPred& pred : named_) {
    const int k = cube_constraints(
        CubeSpec{pred == DagPred::kWN || pred == DagPred::kWW,
                 pred == DagPred::kNW || pred == DagPred::kWW, false});
    if (k < best_constraints) {
      best_constraints = k;
      best = &pred;
    }
  }
  if (best == nullptr) return MemoryModel::for_each_member_observer(c, visit);

  const std::shared_ptr<const QDagModel> base =
      *best == DagPred::kNN   ? QDagModel::nn()
      : *best == DagPred::kNW ? QDagModel::nw()
      : *best == DagPred::kWN ? QDagModel::wn()
                              : QDagModel::ww();
  const bool pure = named_.size() == 1 && cubic_.empty() && !spec_.freshness &&
                    spec_.order == OrderAxiom::kNone;
  if (pure) return base->for_each_member_observer(c, visit);
  // IntersectionModel's pattern: enumerate the corner, filter by the
  // full plan (the corner re-check inside contains is redundant but
  // keeps the filter trivially correct).
  return base->for_each_member_observer(c, [&](const ObserverFunction& phi) {
    return !contains(c, phi) || visit(phi);
  });
}

CompiledModel::StreamingPlan CompiledModel::streaming_plan() const {
  StreamingPlan plan;
  for (const DagPred pred : named_) plan.mask |= corner_suite_bit(pred);
  if (spec_.freshness) plan.mask |= kSuiteFresh;
  if (!cubic_.empty()) plan.streamable = false;
  switch (spec_.order) {
    case OrderAxiom::kNone:
      break;
    case OrderAxiom::kPerLocation:
      plan.mask |= kSuiteLC;
      break;
    case OrderAxiom::kScoped:
      // Uncovered locations are per-location checks, answered by the
      // LC bit's per-location verdicts; the scopes need searches.
      plan.mask |= kSuiteLC;
      plan.scoped = true;
      break;
    case OrderAxiom::kGlobal:
      // LC is SC's complete rejection prefilter and is mask-decidable;
      // the search only runs on LC-consistent survivors.
      plan.mask |= kSuiteLC;
      plan.global = true;
      break;
  }
  return plan;
}

std::shared_ptr<const CompiledModel> compile_model(
    ModelSpec spec, const CompileOptions& options) {
  return std::make_shared<const CompiledModel>(std::move(spec), options);
}

const ModelRegistry& ModelRegistry::bundled() {
  static const ModelRegistry registry = [] {
    ModelRegistry r;
    for (const ModelSpec& s : builtin_model_specs()) r.add(s);
    for (ModelSpec& s : bundled_spec_pack()) r.add(std::move(s));
    return r;
  }();
  return registry;
}

std::size_t ModelRegistry::add(ModelSpec spec, const CompileOptions& options) {
  spec.normalize();
  const auto model = compile_model(spec, options);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].spec.name == spec.name) {
      entries_[i] = Entry{std::move(spec), model};
      derive();
      return i;
    }
  }
  CCMM_CHECK(entries_.size() < 64, "registry holds at most 64 models");
  entries_.push_back(Entry{std::move(spec), model});
  derive();
  return entries_.size() - 1;
}

const ModelRegistry::Entry* ModelRegistry::find(std::string_view name) const {
  for (const Entry& e : entries_)
    if (e.spec.name == name) return &e;
  return nullptr;
}

void ModelRegistry::derive() {
  const std::size_t n = entries_.size();
  implies_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (spec_implies(entries_[i].spec, entries_[j].spec))
        implies_[i] |= std::uint64_t{1} << j;

  // Weakest-first topological order over *strict* implications (equal
  // specs — e.g. COH and LC — imply each other; ties break by index).
  eval_order_.clear();
  std::vector<bool> placed(n, false);
  const auto strict_weaker_unplaced = [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool i_to_j = (implies_[i] >> j) & 1;
      const bool j_to_i = (implies_[j] >> i) & 1;
      if (i != j && i_to_j && !j_to_i && !placed[j]) return true;
    }
    return false;
  };
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i] || strict_weaker_unplaced(i)) continue;
      eval_order_.push_back(i);
      placed[i] = true;
      break;
    }
  }
  CCMM_CHECK(eval_order_.size() == n, "implication lattice is not a preorder");
}

std::uint64_t ModelRegistry::classify(const PreparedPair& p,
                                      const RegistryOptions& options,
                                      bool* exhausted) const {
  if (exhausted != nullptr) *exhausted = false;
  if (!p.valid()) return 0;  // every spec model rejects invalid observers
  std::uint64_t member = 0;
  std::uint64_t known = 0;  // decided without budget exhaustion
  for (const std::size_t i : eval_order_) {
    const std::uint64_t self = std::uint64_t{1} << i;
    if (options.short_circuit) {
      // Rejection propagates up the lattice: i ⊆ j and p ∉ j ⇒ p ∉ i.
      if ((implies_[i] & known & ~member) != 0) {
        known |= self;
        continue;
      }
      // Acceptance propagates down: j ⊆ i and p ∈ j ⇒ p ∈ i.
      bool accepted = false;
      for (std::size_t j = 0; j < entries_.size() && !accepted; ++j)
        accepted = ((known & member) >> j & 1) != 0 &&
                   ((implies_[j] >> i) & 1) != 0;
      if (accepted) {
        member |= self;
        known |= self;
        continue;
      }
    }
    CompileOptions copt;
    copt.sc_budget = options.sc_budget;
    // Re-budget only when the entry's own budget differs: the compiled
    // plan is stateless, so a throwaway twin is cheap and keeps the
    // registry const.
    const CompiledModel& m = *entries_[i].model;
    const CompiledVerdict v =
        m.options().sc_budget == options.sc_budget
            ? m.check_prepared(p)
            : CompiledModel(entries_[i].spec, copt).check_prepared(p);
    if (v.exhausted) {
      if (exhausted != nullptr) *exhausted = true;
      continue;  // unknown: neither member nor usable for pruning
    }
    known |= self;
    if (v.member) member |= self;
  }
  return member;
}

}  // namespace ccmm
