#include "models/spec.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

#include "util/check.hpp"
#include "util/str.hpp"

namespace ccmm {

const char* order_axiom_name(OrderAxiom order) {
  switch (order) {
    case OrderAxiom::kNone:
      return "none";
    case OrderAxiom::kPerLocation:
      return "location";
    case OrderAxiom::kScoped:
      return "scoped";
    case OrderAxiom::kGlobal:
      return "global";
  }
  return "?";
}

namespace {

bool scope_less(const ScopeSpec& a, const ScopeSpec& b) {
  return a.locations < b.locations;
}

bool cube_less(CubeSpec a, CubeSpec b) {
  const auto rank = [](CubeSpec s) {
    return (s.u_writes ? 4 : 0) | (s.v_writes ? 2 : 0) | (s.w_writes ? 1 : 0);
  };
  return rank(a) < rank(b);
}

bool cube_eq(CubeSpec a, CubeSpec b) { return a == b; }

}  // namespace

bool cube_axiom_implies(CubeSpec a, CubeSpec b) {
  // a's constraint set must be a subset of b's: wherever a constrains a
  // coordinate to write, b must too.
  return (!a.u_writes || b.u_writes) && (!a.v_writes || b.v_writes) &&
         (!a.w_writes || b.w_writes);
}

bool order_axiom_implies(OrderAxiom a, const std::vector<ScopeSpec>& a_scopes,
                         OrderAxiom b,
                         const std::vector<ScopeSpec>& b_scopes) {
  if (b == OrderAxiom::kNone) return true;
  if (a == OrderAxiom::kNone) return false;
  // Any surviving order axiom implies per-location: scoped witnesses
  // restrict to single locations, and uncovered locations are singleton
  // scopes by definition.
  if (b == OrderAxiom::kPerLocation) return true;
  if (a == OrderAxiom::kGlobal) return true;  // one sort explains anything
  if (a == OrderAxiom::kPerLocation) return false;  // a == per-location only
  // a is scoped. It implies b iff every witness b demands is a
  // restriction of one a demands: every scope of b inside some scope
  // of a (kGlobal b would need a universal scope, which normalize()
  // never produces — declared scopes are finite).
  if (b == OrderAxiom::kGlobal) return false;
  for (const ScopeSpec& sb : b_scopes) {
    const bool covered = std::any_of(
        a_scopes.begin(), a_scopes.end(), [&](const ScopeSpec& sa) {
          return std::includes(sa.locations.begin(), sa.locations.end(),
                               sb.locations.begin(), sb.locations.end());
        });
    if (!covered) return false;
  }
  return true;
}

bool spec_implies(const ModelSpec& a, const ModelSpec& b) {
  const bool a_orders =
      order_axiom_implies(a.order, a.scopes, OrderAxiom::kPerLocation, {});
  // Order: b's order axiom must be derivable from a's.
  if (!order_axiom_implies(a.order, a.scopes, b.order, b.scopes)) return false;
  // Freshness: implied by a's own freshness axiom or by any witness-sort
  // order axiom (the last writer W_T(l,u) of a writer-ancestor's sort
  // position is never ⊥).
  if (b.freshness && !(a.freshness || a_orders)) return false;
  // Cube axioms: each of b's must follow from a stronger one of a's or
  // from a's order axiom (LC ⊆ NN ⊆ every corner, Theorem 21).
  for (const CubeSpec& qb : b.axioms) {
    const bool covered =
        a_orders || std::any_of(a.axioms.begin(), a.axioms.end(),
                                [&](const CubeSpec& qa) {
                                  return cube_axiom_implies(qa, qb);
                                });
    if (!covered) return false;
  }
  return true;
}

std::string ModelSpec::validate() const {
  if (name.empty()) return "model has no name";
  if (order != OrderAxiom::kScoped && !scopes.empty())
    return "scope lines require scoped order";
  if (order == OrderAxiom::kScoped && scopes.empty())
    return "scoped order requires at least one scope";
  std::vector<Location> all;
  for (const ScopeSpec& s : scopes) {
    if (s.locations.empty()) return "empty scope";
    all.insert(all.end(), s.locations.begin(), s.locations.end());
  }
  std::sort(all.begin(), all.end());
  if (std::adjacent_find(all.begin(), all.end()) != all.end())
    return format("location %u appears in two scopes",
                  *std::adjacent_find(all.begin(), all.end()));
  return "";
}

void ModelSpec::normalize() {
  CCMM_CHECK(validate().empty(), "invalid model spec");
  for (ScopeSpec& s : scopes) {
    std::sort(s.locations.begin(), s.locations.end());
    s.locations.erase(std::unique(s.locations.begin(), s.locations.end()),
                      s.locations.end());
  }
  // A singleton scope is exactly the implicit per-location treatment of
  // an uncovered location; dropping it changes nothing.
  std::erase_if(scopes, [](const ScopeSpec& s) {
    return s.locations.size() <= 1;
  });
  std::sort(scopes.begin(), scopes.end(), scope_less);
  if (order == OrderAxiom::kScoped && scopes.empty())
    order = OrderAxiom::kPerLocation;

  std::sort(axioms.begin(), axioms.end(), cube_less);
  axioms.erase(std::unique(axioms.begin(), axioms.end(), cube_eq),
               axioms.end());
  // Drop axioms already implied by the order axiom or by a stronger
  // sibling, so the compiled plan never runs a redundant scan and the
  // digest is canonical.
  if (order_axiom_implies(order, scopes, OrderAxiom::kPerLocation, {})) {
    axioms.clear();
    if (freshness) freshness = false;  // implied by the order witness
  } else {
    // After unique() axioms are pairwise distinct, so domination by a
    // sibling is strict and dropping dominated ones cannot cascade.
    std::vector<CubeSpec> kept;
    for (std::size_t i = 0; i < axioms.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < axioms.size() && !dominated; ++j)
        dominated = i != j && cube_axiom_implies(axioms[j], axioms[i]);
      if (!dominated) kept.push_back(axioms[i]);
    }
    axioms = std::move(kept);
  }
}

std::string ModelSpec::digest() const {
  // A canonical rendering (minus the name) is already a collision-free
  // fingerprint of the normalized structure.
  std::string d = order_axiom_name(order);
  for (const ScopeSpec& s : scopes) {
    d += "|s";
    for (const Location l : s.locations) d += format(",%u", l);
  }
  for (const CubeSpec& q : axioms) {
    d += "|a";
    d += q.u_writes ? 'W' : 'N';
    d += q.v_writes ? 'W' : 'N';
    d += q.w_writes ? 'W' : 'N';
  }
  if (freshness) d += "|f";
  return d;
}

std::string ModelSpec::to_string() const {
  std::string out = format("model %s\n", name.c_str());
  if (order == OrderAxiom::kScoped) {
    for (const ScopeSpec& s : scopes) {
      out += "scope";
      for (const Location l : s.locations) out += format(" %u", l);
      out += "\n";
    }
  } else if (order != OrderAxiom::kNone) {
    out += format("order %s\n", order_axiom_name(order));
  }
  for (const CubeSpec& q : axioms) {
    out += format("axiom %c%c%c\n", q.u_writes ? 'W' : 'N',
                  q.v_writes ? 'W' : 'N', q.w_writes ? 'W' : 'N');
  }
  if (freshness) out += "fresh\n";
  out += "end\n";
  return out;
}

std::string SpecParseError::format_message(std::size_t line,
                                           const std::string& message) {
  return format("spec line %zu: %s", line, message.c_str());
}

namespace {

/// Strip a trailing comment and surrounding whitespace.
std::string clean_line(std::string s) {
  const std::size_t hash = s.find('#');
  if (hash != std::string::npos) s.resize(hash);
  const auto not_space = [](unsigned char ch) { return !std::isspace(ch); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

Location parse_location(const std::string& word, std::size_t line) {
  std::size_t pos = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(word, &pos);
  } catch (const std::exception&) {
    throw SpecParseError(line, format("'%s' is not a location", word.c_str()));
  }
  if (pos != word.size() || v > 0xFFFFFFFFull)
    throw SpecParseError(line, format("'%s' is not a location", word.c_str()));
  return static_cast<Location>(v);
}

CubeSpec parse_cube(const std::string& word, std::size_t line) {
  if (word.size() != 3 ||
      !std::all_of(word.begin(), word.end(),
                   [](char ch) { return ch == 'N' || ch == 'W'; }))
    throw SpecParseError(
        line, format("axiom wants three letters from {N, W} (e.g. WNN), "
                     "got '%s'",
                     word.c_str()));
  return CubeSpec{word[0] == 'W', word[1] == 'W', word[2] == 'W'};
}

}  // namespace

std::vector<ModelSpec> read_model_specs(std::istream& in) {
  std::vector<ModelSpec> specs;
  ModelSpec cur;
  bool open = false;
  bool order_seen = false;
  std::size_t model_line = 0;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = clean_line(std::move(raw));
    if (line.empty()) continue;
    const std::vector<std::string> words = split_words(line);
    const std::string& head = words[0];
    if (head == "model") {
      if (open)
        throw SpecParseError(
            lineno, format("'model' before 'end' of model '%s' (line %zu)",
                           cur.name.c_str(), model_line));
      if (words.size() != 2)
        throw SpecParseError(lineno, "usage: model NAME");
      cur = ModelSpec{};
      cur.name = words[1];
      open = true;
      order_seen = false;
      model_line = lineno;
      continue;
    }
    if (!open)
      throw SpecParseError(
          lineno, format("'%s' outside a model block", head.c_str()));
    if (head == "end") {
      if (words.size() != 1) throw SpecParseError(lineno, "usage: end");
      const std::string why = cur.validate();
      if (!why.empty()) throw SpecParseError(lineno, why);
      cur.normalize();
      for (const ModelSpec& s : specs)
        if (s.name == cur.name)
          throw SpecParseError(
              lineno, format("duplicate model name '%s'", cur.name.c_str()));
      specs.push_back(std::move(cur));
      open = false;
    } else if (head == "order") {
      if (order_seen)
        throw SpecParseError(lineno, "more than one order directive");
      if (words.size() != 2 ||
          (words[1] != "none" && words[1] != "location" &&
           words[1] != "global"))
        throw SpecParseError(lineno,
                             "usage: order none|location|global "
                             "(scoped order is declared by scope lines)");
      order_seen = true;
      cur.order = words[1] == "none"       ? OrderAxiom::kNone
                  : words[1] == "location" ? OrderAxiom::kPerLocation
                                           : OrderAxiom::kGlobal;
    } else if (head == "scope") {
      if (order_seen && cur.order != OrderAxiom::kScoped)
        throw SpecParseError(lineno,
                             "scope lines conflict with the order directive");
      if (words.size() < 2)
        throw SpecParseError(lineno, "usage: scope LOC [LOC...]");
      order_seen = true;
      cur.order = OrderAxiom::kScoped;
      ScopeSpec s;
      for (std::size_t i = 1; i < words.size(); ++i)
        s.locations.push_back(parse_location(words[i], lineno));
      cur.scopes.push_back(std::move(s));
    } else if (head == "axiom") {
      if (words.size() != 2)
        throw SpecParseError(lineno, "usage: axiom XYZ with X,Y,Z in {N, W}");
      cur.axioms.push_back(parse_cube(words[1], lineno));
    } else if (head == "fresh") {
      if (words.size() != 1) throw SpecParseError(lineno, "usage: fresh");
      cur.freshness = true;
    } else {
      throw SpecParseError(
          lineno, format("unknown directive '%s'", head.c_str()));
    }
  }
  if (open)
    throw SpecParseError(
        lineno == 0 ? 1 : lineno,
        format("model '%s' (line %zu) is missing its 'end'",
               cur.name.c_str(), model_line));
  return specs;
}

std::vector<ModelSpec> read_model_specs(const std::string& text) {
  std::istringstream in(text);
  return read_model_specs(in);
}

namespace {

ModelSpec make_spec(std::string name, OrderAxiom order,
                    std::vector<CubeSpec> axioms, bool fresh) {
  ModelSpec s;
  s.name = std::move(name);
  s.order = order;
  s.axioms = std::move(axioms);
  s.freshness = fresh;
  s.normalize();
  return s;
}

}  // namespace

const std::vector<ModelSpec>& builtin_model_specs() {
  static const std::vector<ModelSpec> specs = [] {
    // The named Q-dag corners are w-independent: NN = [NNN], NW = [NWN],
    // WN = [WNN], WW = [WWN] (qdag.hpp).
    std::vector<ModelSpec> v;
    v.push_back(make_spec("SC", OrderAxiom::kGlobal, {}, false));
    v.push_back(make_spec("LC", OrderAxiom::kPerLocation, {}, false));
    v.push_back(make_spec("NN", OrderAxiom::kNone,
                          {CubeSpec{false, false, false}}, false));
    v.push_back(make_spec("NW", OrderAxiom::kNone,
                          {CubeSpec{false, true, false}}, false));
    v.push_back(make_spec("WN", OrderAxiom::kNone,
                          {CubeSpec{true, false, false}}, false));
    v.push_back(make_spec("WW", OrderAxiom::kNone,
                          {CubeSpec{true, true, false}}, false));
    v.push_back(make_spec("WN+", OrderAxiom::kNone,
                          {CubeSpec{true, false, false}}, true));
    v.push_back(make_spec("NN+", OrderAxiom::kNone,
                          {CubeSpec{false, false, false}}, true));
    return v;
  }();
  return specs;
}

ModelSpec coherence_spec() {
  return make_spec("COH", OrderAxiom::kPerLocation, {}, false);
}

ModelSpec partition_spec(std::string name, std::vector<ScopeSpec> scopes) {
  ModelSpec s;
  s.name = std::move(name);
  s.order = OrderAxiom::kScoped;
  s.scopes = std::move(scopes);
  s.normalize();
  return s;
}

ModelSpec tso_like_spec() {
  // WN ∩ NW ∩ freshness: write-read and read-write triple patterns both
  // serialize and reads never miss a dag-earlier write; no global sort.
  return make_spec("TSO", OrderAxiom::kNone,
                   {CubeSpec{true, false, false}, CubeSpec{false, true, false}},
                   true);
}

std::vector<ModelSpec> bundled_spec_pack() {
  std::vector<ModelSpec> pack;
  pack.push_back(partition_spec("PC2", {ScopeSpec{{0, 1}}, ScopeSpec{{2, 3}}}));
  pack.push_back(coherence_spec());
  pack.push_back(tso_like_spec());
  return pack;
}

}  // namespace ccmm
