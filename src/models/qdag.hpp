// ccmm/models/qdag.hpp
//
// Definition 20: Q-dag consistency. For a predicate Q on (l, u, v, w),
// the model contains (C, Φ) iff Φ is an observer function for C and for
// all l and u ≺ v ≺ w with Q(l, u, v, w):
//     Φ(l, u) = Φ(l, w)  ⇒  Φ(l, v) = Φ(l, u).
// Here u ranges over V ∪ {⊥} (⊥ precedes every node; a predicate that
// inspects op(u) is false at ⊥). The four named predicates of the paper:
//     NN: true            NW: op(v) = W(l)
//     WN: op(u) = W(l)    WW: op(u) = W(l) ∧ op(v) = W(l)
// NN is the strongest dag-consistent model (Theorem 21); WW is the
// original dag consistency of [BFJ+96b]; WN the revision of [BFJ+96a].
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/memory_model.hpp"

namespace ccmm {

enum class DagPred : std::uint8_t { kNN, kNW, kWN, kWW };

[[nodiscard]] const char* dag_pred_name(DagPred p);

/// A witnessing violation of Condition 20.1, for diagnostics.
struct QDagViolation {
  Location loc;
  NodeId u;  // may be kBottom
  NodeId v;
  NodeId w;
  [[nodiscard]] std::string to_string() const;
};

/// Membership test for the four named predicates (bitset-accelerated).
/// If `violation` is non-null and the pair is not in the model, it
/// receives one witnessing triple. Precondition: phi is a valid observer
/// function for c (checked; returns false otherwise).
[[nodiscard]] bool qdag_consistent(const Computation& c,
                                   const ObserverFunction& phi, DagPred pred,
                                   QDagViolation* violation = nullptr);

/// Same answer on a PreparedPair: reuses the pair's validity verdict and
/// Φ⁻¹ block bitsets instead of re-validating and rebuilding them.
[[nodiscard]] bool qdag_consistent_prepared(const PreparedPair& p,
                                            DagPred pred,
                                            QDagViolation* violation = nullptr);

/// A custom predicate Q(c, l, u, v, w); u may be kBottom.
using QPredicate = std::function<bool(const Computation&, Location, NodeId,
                                      NodeId, NodeId)>;

/// Membership test for an arbitrary predicate (cubic triple scan).
[[nodiscard]] bool qdag_consistent_custom(const Computation& c,
                                          const ObserverFunction& phi,
                                          const QPredicate& q,
                                          QDagViolation* violation = nullptr);

/// Prepared-pair variant of the cubic scan (skips re-validation).
[[nodiscard]] bool qdag_consistent_custom_prepared(
    const PreparedPair& p, const QPredicate& q,
    QDagViolation* violation = nullptr);

/// Q-dag consistency as a MemoryModel.
class QDagModel final : public MemoryModel {
 public:
  explicit QDagModel(DagPred pred) : pred_(pred) {}

  [[nodiscard]] std::string name() const override {
    return dag_pred_name(pred_);
  }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    return qdag_consistent(c, phi, pred_);
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    return qdag_consistent_prepared(p, pred_);
  }
  /// Pruned member enumeration: Condition 20.1 constrains each location
  /// column independently and every violating triple u ≺ v ≺ w lies
  /// inside anc(w) ∪ {w}, so a backtracking search that assigns Φ(l, ·)
  /// in topological order detects dead prefixes at the node that
  /// completes the triple and never expands them. Orders of magnitude
  /// fewer candidates than generate-and-test on write-heavy universes.
  bool for_each_member_observer(
      const Computation& c,
      const std::function<bool(const ObserverFunction&)>& visit)
      const override;
  [[nodiscard]] DagPred pred() const { return pred_; }

  [[nodiscard]] static std::shared_ptr<const QDagModel> nn();
  [[nodiscard]] static std::shared_ptr<const QDagModel> nw();
  [[nodiscard]] static std::shared_ptr<const QDagModel> wn();
  [[nodiscard]] static std::shared_ptr<const QDagModel> ww();

 private:
  DagPred pred_;
};

/// The full predicate cube: Definition 20 lets Q inspect all of
/// (u, v, w); the paper's named predicates are the w-independent corner
/// (NN = [NNN], NW = [NWN], WN = [WNN], WW = [WWN]). CubeSpec names a
/// conjunction of "must write l" constraints per coordinate; the
/// remaining four corners ([NNW], [NWW], [WNW], [WWW]) complete the cube
/// the paper's "symmetry suggests we also consider NW" remark opens.
struct CubeSpec {
  bool u_writes = false;
  bool v_writes = false;
  bool w_writes = false;
  [[nodiscard]] bool operator==(const CubeSpec&) const = default;
};

/// "Q[XYZ]" with X/Y/Z ∈ {N, W} for the u/v/w constraints.
[[nodiscard]] std::string cube_name(CubeSpec spec);

/// The Q-dag model for a cube corner (shares the named fast paths where
/// they exist, the cubic checker otherwise).
[[nodiscard]] std::shared_ptr<const MemoryModel> cube_model(CubeSpec spec);

/// Membership test for a cube corner.
[[nodiscard]] bool cube_consistent(const Computation& c,
                                   const ObserverFunction& phi, CubeSpec spec);

/// Prepared-pair variant (named fast paths and cubic scan alike).
[[nodiscard]] bool cube_consistent_prepared(const PreparedPair& p,
                                            CubeSpec spec);

/// All eight corners in lexicographic order (NNN first).
[[nodiscard]] std::vector<CubeSpec> all_cube_corners();

/// Q-dag consistency for a user-supplied predicate.
class CustomQDagModel final : public MemoryModel {
 public:
  CustomQDagModel(std::string name, QPredicate q)
      : name_(std::move(name)), q_(std::move(q)) {
    CCMM_CHECK(q_ != nullptr, "null predicate");
  }

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    return qdag_consistent_custom(c, phi, q_);
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    return qdag_consistent_custom_prepared(p, q_);
  }

 private:
  std::string name_;
  QPredicate q_;
};

}  // namespace ccmm
