#include "models/location_consistency.hpp"

#include <algorithm>
#include <unordered_map>

namespace ccmm {
namespace {

/// Blocks of Φ(l,·): block 0 is B_⊥ (possibly empty); block i >= 1 is the
/// block of the i-th distinct observed write. block_of[u] gives a node's
/// block; writer_of[i] gives block i's writer (kBottom for block 0).
struct Blocks {
  std::vector<std::uint32_t> block_of;
  std::vector<NodeId> writer_of;
};

Blocks make_blocks(const Computation& c, const ObserverFunction& phi,
                   Location l) {
  Blocks b;
  b.block_of.assign(c.node_count(), 0);
  b.writer_of.push_back(kBottom);
  std::unordered_map<NodeId, std::uint32_t> index_of;
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const NodeId x = phi.get(l, u);
    if (x == kBottom) continue;
    auto [it, fresh] = index_of.try_emplace(
        x, static_cast<std::uint32_t>(b.writer_of.size()));
    if (fresh) b.writer_of.push_back(x);
    b.block_of[u] = it->second;
  }
  return b;
}

bool quotient_sortable(const Computation& c, const Blocks& b,
                       std::vector<std::size_t>* order_out) {
  return detail::lc_quotient_sortable(c, b.block_of.data(),
                                      b.writer_of.size(), order_out);
}

}  // namespace

namespace detail {

/// Does the block quotient graph admit a topological order with B_⊥ first?
/// `order_out`, if non-null, receives such a block order.
bool lc_quotient_sortable(const Computation& c, const std::uint32_t* block_of,
                          std::size_t nblocks,
                          std::vector<std::size_t>* order_out) {
  const std::size_t nb = nblocks;
  // Quotient adjacency + indegrees from dag edges crossing blocks.
  std::vector<std::vector<std::size_t>> qsucc(nb);
  std::vector<std::size_t> indeg(nb, 0);
  for (const auto& e : c.dag().edges()) {
    const std::size_t bu = block_of[e.from];
    const std::size_t bv = block_of[e.to];
    if (bu == bv) continue;
    qsucc[bu].push_back(bv);
    ++indeg[bv];
  }
  // B_⊥ must be first: it may have no incoming edges (when nonempty; an
  // empty B_⊥ has no dag nodes, hence no incoming edges anyway).
  if (indeg[0] != 0) return false;
  // Kahn with block 0 forced first, then any order.
  std::vector<std::size_t> order;
  order.reserve(nb);
  std::vector<std::size_t> stack;
  stack.push_back(0);
  std::vector<char> emitted(nb, 0);
  emitted[0] = 1;
  while (!stack.empty()) {
    const std::size_t x = stack.back();
    stack.pop_back();
    order.push_back(x);
    for (const std::size_t y : qsucc[x]) {
      if (--indeg[y] == 0 && !emitted[y]) {
        emitted[y] = 1;
        stack.push_back(y);
      }
    }
    if (stack.empty()) {
      // Seed any remaining zero-indegree blocks (disconnected pieces).
      for (std::size_t y = 1; y < nb; ++y)
        if (!emitted[y] && indeg[y] == 0) {
          emitted[y] = 1;
          stack.push_back(y);
        }
    }
  }
  if (order.size() != nb) return false;  // quotient cycle
  if (order_out != nullptr) *order_out = std::move(order);
  return true;
}

}  // namespace detail

bool location_consistent_at(const Computation& c, const ObserverFunction& phi,
                            Location l) {
  const Blocks b = make_blocks(c, phi, l);
  return quotient_sortable(c, b, nullptr);
}

bool location_consistent(const Computation& c, const ObserverFunction& phi) {
  if (!is_valid_observer(c, phi)) return false;
  for (const Location l : phi.active_locations())
    if (!location_consistent_at(c, phi, l)) return false;
  return true;
}

bool location_consistent_prepared(const PreparedPair& p) {
  if (!p.valid()) return false;
  for (const auto& lp : p.locations())
    if (!detail::lc_quotient_sortable(p.computation(), lp.block_of.data(),
                                      lp.block_count(), nullptr))
      return false;
  return true;
}

std::optional<std::vector<NodeId>> lc_witness(const Computation& c,
                                              const ObserverFunction& phi,
                                              Location l) {
  if (!is_valid_observer(c, phi)) return std::nullopt;
  const Blocks b = make_blocks(c, phi, l);
  std::vector<std::size_t> block_order;
  if (!quotient_sortable(c, b, &block_order)) return std::nullopt;

  // Emit blocks in order; within a block, writer first, then the rest in a
  // linear extension of the induced subgraph (Kahn restricted to block).
  std::vector<std::size_t> rank(b.writer_of.size());
  for (std::size_t i = 0; i < block_order.size(); ++i)
    rank[block_order[i]] = i;

  // Sort key: (block rank, canonical topological position). Sorting the
  // canonical order stably by block rank keeps intra-block dag order.
  std::vector<NodeId> order = c.dag().topological_order();
  std::stable_sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    return rank[b.block_of[x]] < rank[b.block_of[y]];
  });
  // The writer leads its block automatically: nothing in B_x precedes x
  // (observer condition 2.2), and a write to l precedes every member of
  // its block that it is dag-ordered with; but dag-unordered members
  // could sort before it, so rotate the writer to the front of its block.
  std::size_t i = 0;
  while (i < order.size()) {
    const std::size_t blk = b.block_of[order[i]];
    std::size_t j = i;
    while (j < order.size() && b.block_of[order[j]] == blk) ++j;
    const NodeId writer = b.writer_of[blk];
    if (writer != kBottom) {
      const auto it = std::find(order.begin() + static_cast<std::ptrdiff_t>(i),
                                order.begin() + static_cast<std::ptrdiff_t>(j),
                                writer);
      CCMM_ASSERT(it != order.begin() + static_cast<std::ptrdiff_t>(j));
      std::rotate(order.begin() + static_cast<std::ptrdiff_t>(i), it, it + 1);
    }
    i = j;
  }
  return order;
}

}  // namespace ccmm

namespace ccmm {

std::shared_ptr<const LocationConsistencyModel>
LocationConsistencyModel::instance() {
  static const auto m = std::make_shared<const LocationConsistencyModel>();
  return m;
}

}  // namespace ccmm
