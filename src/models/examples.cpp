#include "models/examples.hpp"

namespace ccmm::examples {

ExamplePair figure2() {
  Dag g(4);
  g.add_edge(0, 2);  // A -> C
  g.add_edge(2, 3);  // C -> D
  Computation c(g, {Op::write(0), Op::write(0), Op::read(0), Op::read(0)});
  ObserverFunction phi(4);
  phi.set(0, 0, 0);
  phi.set(0, 1, 1);
  phi.set(0, 2, 1);  // C observes B
  phi.set(0, 3, 0);  // D observes A
  return {"figure2", std::move(c), std::move(phi),
          /*nn=*/false, /*nw=*/true, /*wn=*/false, /*ww=*/true,
          /*lc=*/false, /*sc=*/false};
}

ExamplePair figure3() {
  Dag g(4);
  g.add_edge(1, 2);  // C -> B
  g.add_edge(2, 3);  // B -> D
  Computation c(g, {Op::write(0), Op::read(0), Op::write(0), Op::read(0)});
  ObserverFunction phi(4);
  phi.set(0, 0, 0);
  phi.set(0, 1, 0);  // C observes A
  phi.set(0, 2, 2);
  phi.set(0, 3, 0);  // D observes A
  return {"figure3", std::move(c), std::move(phi),
          /*nn=*/false, /*nw=*/false, /*wn=*/true, /*ww=*/true,
          /*lc=*/false, /*sc=*/false};
}

ExamplePair lc_not_sc() {
  Dag g(4);
  Computation c(g, {Op::write(0), Op::write(1), Op::nop(), Op::nop()});
  ObserverFunction phi(4);
  phi.set(0, 0, 0);
  phi.set(1, 1, 1);
  phi.set(0, 2, 0);  // C sees A at location 0, nothing at 1
  phi.set(1, 3, 1);  // D sees B at location 1, nothing at 0
  return {"lc-not-sc", std::move(c), std::move(phi),
          /*nn=*/true, /*nw=*/true, /*wn=*/true, /*ww=*/true,
          /*lc=*/true, /*sc=*/false};
}

std::vector<ExamplePair> all() {
  std::vector<ExamplePair> out;
  out.push_back(figure2());
  out.push_back(figure3());
  out.push_back(lc_not_sc());
  return out;
}

}  // namespace ccmm::examples
