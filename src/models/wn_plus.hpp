// ccmm/models/wn_plus.hpp
//
// WN⁺: WN-dag consistency strengthened with a freshness axiom:
//   if some write to l precedes u in the dag, then Φ(l, u) ≠ ⊥.
// Motivation: under the paper's exact Definition 20, WN answers every
// one-node extension by valuing the new node at ⊥ (see EXPERIMENTS.md),
// which makes WN constructible — contradicting the paper's prose claim
// that only WW among the four dag models is constructible. The prose
// refers to the strengthened dag consistency of [BFJ+96a], which rules
// out "a read sees nothing although a write already happened before
// it". WN⁺ is that natural strengthening; ccmm uses it to study how
// the freshness axiom changes the constructibility landscape (bench
// fig4_nonconstructibility and open_problem_probe report on it).
#pragma once

#include <memory>

#include "models/qdag.hpp"

namespace ccmm {

/// The freshness axiom alone: ∀l, u: (∃ write w to l with w ≺ u) ⇒
/// Φ(l, u) ≠ ⊥.
[[nodiscard]] bool observer_is_fresh(const Computation& c,
                                     const ObserverFunction& phi);

/// Freshness on a PreparedPair: same answer, but the writer-shadow union
/// reuses the context's scratch bitset instead of allocating per location.
[[nodiscard]] bool observer_is_fresh_prepared(const PreparedPair& p);

/// Membership in WN⁺ = WN ∩ freshness.
[[nodiscard]] bool wn_plus_consistent(const Computation& c,
                                      const ObserverFunction& phi);
[[nodiscard]] bool wn_plus_consistent_prepared(const PreparedPair& p);

/// Membership in NN⁺ = NN ∩ freshness.
[[nodiscard]] bool nn_plus_consistent_prepared(const PreparedPair& p);

class WnPlusModel final : public MemoryModel {
 public:
  [[nodiscard]] std::string name() const override { return "WN+"; }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    return wn_plus_consistent(c, phi);
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    return wn_plus_consistent_prepared(p);
  }

  [[nodiscard]] static std::shared_ptr<const WnPlusModel> instance();
};

/// NN ∩ freshness, for symmetry (the strongest "fresh" dag model).
class NnPlusModel final : public MemoryModel {
 public:
  [[nodiscard]] std::string name() const override { return "NN+"; }
  [[nodiscard]] bool contains(const Computation& c,
                              const ObserverFunction& phi) const override {
    return observer_is_fresh(c, phi) && qdag_consistent(c, phi, DagPred::kNN);
  }
  [[nodiscard]] bool contains_prepared(const PreparedPair& p) const override {
    return nn_plus_consistent_prepared(p);
  }

  [[nodiscard]] static std::shared_ptr<const NnPlusModel> instance();
};

}  // namespace ccmm
