// ccmm/models/suite.hpp
//
// ModelSuite: classify one prepared (C, Φ) pair against the built-in
// model family in a single call, returning a membership bitmask instead
// of running eight independent contains() calls. The strength lattice
// (Theorem 21 and SC ⊆ LC ⊆ NN ⊆ NW, WN ⊆ WW; NN⁺ ⊆ NN, WN⁺ ⊆ WN)
// licenses short-circuiting: a pair outside WW is outside everything,
// NN need only run when both NW and WN admitted the pair, LC only when
// NN did, and the NP-hard SC search only when the linear LC test passed
// (exactly the prefilter ScOptions already exploits — the suite then
// disables the redundant in-search LC re-check). Pruning is
// answer-preserving; tests/test_prepared pins the ablation.
//
// Since the model-compiler refactor the eight built-ins are *bundled
// specs* (models/spec.hpp): every gate hardcoded below is an instance
// of the derived implication lattice spec_implies computes between
// builtin_model_specs() (tests/test_compile pins gate-by-gate
// agreement). ModelSuite survives as the compiler-verified fused
// specialization of ModelRegistry::classify (models/compile.hpp) for
// exactly this model set — same bits, no per-entry dispatch — which is
// what the BM_ClassifyAllSix benchmarks gate in CI. Arbitrary spec
// sets, including user packs, classify through the registry instead.
#pragma once

#include <cstdint>

#include "models/qdag.hpp"
#include "models/sequential_consistency.hpp"

namespace ccmm {

/// Membership bits returned by ModelSuite::classify.
enum SuiteBit : std::uint32_t {
  kSuiteSC = 1u << 0,
  kSuiteLC = 1u << 1,
  kSuiteNN = 1u << 2,
  kSuiteNW = 1u << 3,
  kSuiteWN = 1u << 4,
  kSuiteWW = 1u << 5,
  kSuiteWNPlus = 1u << 6,
  kSuiteNNPlus = 1u << 7,
  /// The freshness axiom alone (models/wn_plus.hpp): not a model the
  /// suite classifies, but a first-class bit so compiled specs can
  /// request it from the streaming large_check path, where WN⁺/NN⁺ are
  /// decided as WN ∧ FRESH / NN ∧ FRESH.
  kSuiteFresh = 1u << 8,
};

struct SuiteOptions {
  /// Budget for the SC backtracking search (states expanded).
  std::size_t sc_budget = SIZE_MAX;
  /// Lattice pruning; off = run every checker independently (ablation).
  bool short_circuit = true;
  /// Run the NP-hard SC membership search at all.
  bool include_sc = true;
  /// Classify the freshness-strengthened WN⁺/NN⁺ as well.
  bool include_plus = true;
};

class ModelSuite {
 public:
  /// Membership bitmask of `p` over the suite. Equals the OR of the
  /// individual models' contains() answers (pinned by tests). If the SC
  /// search exhausts `sc_budget`, the SC bit is left unset and
  /// *sc_exhausted (when non-null) is set to true.
  [[nodiscard]] static std::uint32_t classify(const PreparedPair& p,
                                              const SuiteOptions& opt = {},
                                              bool* sc_exhausted = nullptr);

  /// Convenience overload: prepares (c, phi) with a per-thread context.
  [[nodiscard]] static std::uint32_t classify(const Computation& c,
                                              const ObserverFunction& phi,
                                              const SuiteOptions& opt = {},
                                              bool* sc_exhausted = nullptr);

  /// "SC" for kSuiteSC etc.; "?" for a non-bit.
  [[nodiscard]] static const char* bit_name(std::uint32_t bit);
};

}  // namespace ccmm
