// ccmm/models/examples.hpp
//
// The paper's example (computation, observer function) pairs, with their
// expected memberships across the six models. Figures 2 and 3 are
// reconstructed to the memberships the prose states (the anomalies that
// separate NW from WN); the LC-but-not-SC pair realizes the strictness
// of SC ⊊ LC, which requires two locations.
#pragma once

#include "core/observer.hpp"

namespace ccmm::examples {

struct ExamplePair {
  const char* name;
  Computation c;
  ObserverFunction phi;
  // Expected memberships.
  bool in_nn, in_nw, in_wn, in_ww, in_lc, in_sc;
};

/// Figure 2: in WW and NW but not WN or NN. One location. Nodes:
/// 0 = A: W, 1 = B: W, 2 = C: R, 3 = D: R; edges A->C, C->D;
/// Φ: A->A, B->B, C->B, D->A. The WN-forbidden triple is (A, C, D).
[[nodiscard]] ExamplePair figure2();

/// Figure 3: in WW and WN but not NW or NN. Nodes: 0 = A: W, 1 = C: R,
/// 2 = B: W, 3 = D: R; edges C->B, B->D; Φ: A->A, C->A, B->B, D->A.
/// The NW-forbidden triple is (C, B, D).
[[nodiscard]] ExamplePair figure3();

/// Four mutually unordered nodes over two locations whose observations
/// force the cyclic serialization A < C < B < D < A: location consistent
/// but not sequentially consistent.
[[nodiscard]] ExamplePair lc_not_sc();

/// All three, for table-driven consumers.
[[nodiscard]] std::vector<ExamplePair> all();

}  // namespace ccmm::examples
