// ccmm/models/relations.hpp
//
// Comparing memory models extensionally (Definition 4: Δ is stronger than
// Δ' iff Δ ⊆ Δ'). The theory's inclusions are verified mechanically by
// evaluating both membership predicates over a universe of (computation,
// observer function) pairs produced by the enumeration layer.
#pragma once

#include <string>
#include <vector>

#include "core/memory_model.hpp"

namespace ccmm {

/// One (computation, observer function) pair of a universe.
struct CPhi {
  Computation c;
  ObserverFunction phi;
};

enum class ModelRelation : std::uint8_t {
  kEqual,
  kStrictlyStronger,  // A ⊊ B (A admits strictly fewer behaviours)
  kStrictlyWeaker,    // A ⊋ B
  kIncomparable,
};

[[nodiscard]] const char* relation_name(ModelRelation r);

struct ComparisonResult {
  ModelRelation relation = ModelRelation::kEqual;
  std::size_t in_a = 0;         // |A ∩ U|
  std::size_t in_b = 0;         // |B ∩ U|
  std::size_t in_both = 0;      // |A ∩ B ∩ U|
  std::size_t universe = 0;     // |U|
  /// A pair in A \ B (resp. B \ A) if any; indexes into the universe.
  std::size_t witness_a_minus_b = SIZE_MAX;
  std::size_t witness_b_minus_a = SIZE_MAX;
};

/// Evaluate both models on every pair of `universe` and classify the
/// relation *restricted to that universe*.
[[nodiscard]] ComparisonResult compare_models(const MemoryModel& a,
                                              const MemoryModel& b,
                                              const std::vector<CPhi>& universe);

/// Membership counts for several models over a universe (one pass).
[[nodiscard]] std::vector<std::size_t> membership_counts(
    const std::vector<const MemoryModel*>& models,
    const std::vector<CPhi>& universe);

/// Is `model` monotonic on this universe? (Definition 5: membership must
/// survive edge deletion.) Checks every pair against every one-edge
/// relaxation; returns false with a witness index if violated.
struct MonotonicityResult {
  bool monotonic = true;
  std::size_t witness = SIZE_MAX;  // universe index of a violating pair
};
[[nodiscard]] MonotonicityResult check_monotonicity(
    const MemoryModel& model, const std::vector<CPhi>& universe);

}  // namespace ccmm
