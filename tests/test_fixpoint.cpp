// Theorem 23: LC = NN*, verified by computing the bounded greatest
// fixpoint Δ* of NN and comparing with LC per size class.
#include "construct/fixpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "construct/extension.hpp"
#include "construct/witness.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

UniverseSpec thin_spec(std::size_t max_nodes) {
  UniverseSpec spec;
  spec.max_nodes = max_nodes;
  spec.nlocations = 1;
  spec.include_nop = false;
  spec.max_writes_per_location = 2;
  return spec;
}

TEST(BoundedModelSet, RestrictionCountsMembers) {
  const auto spec = thin_spec(3);
  const BoundedModelSet lc =
      BoundedModelSet::restrict_model(*LocationConsistencyModel::instance(),
                                      spec);
  const BoundedModelSet nn =
      BoundedModelSet::restrict_model(*QDagModel::nn(), spec);
  EXPECT_GT(lc.live_count(), 0u);
  EXPECT_GE(nn.live_count(), lc.live_count());  // LC ⊆ NN (Theorem 22)
  EXPECT_EQ(lc.live_count_at_size(0), 1u);      // (ε, Φ_ε)
}

TEST(BoundedModelSet, ContainsPairAgreesWithModel) {
  const auto spec = thin_spec(3);
  const BoundedModelSet lc =
      BoundedModelSet::restrict_model(*LocationConsistencyModel::instance(),
                                      spec);
  std::size_t live = 0;
  lc.for_each_live([&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_TRUE(lc.contains_pair(c, phi));
    EXPECT_TRUE(LocationConsistencyModel::instance()->contains(c, phi));
    ++live;
    return true;
  });
  EXPECT_EQ(live, lc.live_count());
}

TEST(Fixpoint, Theorem23_NNStarCollapsesToLC) {
  // Horizon 5 decides all sizes <= 4 (size-5 pairs are boundary).
  const auto spec = thin_spec(5);
  FixpointStats stats;
  const BoundedModelSet nn_star =
      constructible_version(*QDagModel::nn(), spec, &stats);
  EXPECT_GT(stats.pruned, 0u);  // NN \ LC pairs exist at size 4 and die
  EXPECT_LT(stats.final_pairs, stats.initial_pairs);

  const auto cmp =
      compare_with_model(nn_star, *LocationConsistencyModel::instance());
  for (const auto& row : cmp) {
    if (row.size >= 5) continue;  // boundary sizes carry no information
    EXPECT_TRUE(row.equal) << "NN* != LC at size " << row.size << " ("
                           << row.fixpoint_pairs << " vs "
                           << row.reference_pairs << ")";
  }
}

TEST(Fixpoint, Figure4PairIsPruned) {
  // The NN \ LC witness pair must be dead in the fixpoint.
  const auto spec = thin_spec(5);
  const BoundedModelSet nn_star =
      constructible_version(*QDagModel::nn(), spec);
  const NonconstructibilityWitness w = figure4_witness();
  EXPECT_TRUE(QDagModel::nn()->contains(w.c, w.phi));
  EXPECT_FALSE(nn_star.contains_pair(w.c, w.phi));
  // while its LC siblings survive: the last-writer observer does.
  const auto lw = LocationConsistencyModel::instance()->any_observer(w.c);
  ASSERT_TRUE(lw.has_value());
  EXPECT_TRUE(nn_star.contains_pair(w.c, *lw));
}

TEST(Fixpoint, ConstructibleModelIsItsOwnFixpoint) {
  // LC is constructible (Theorem 19): nothing may be pruned.
  const auto spec = thin_spec(4);
  FixpointStats stats;
  const BoundedModelSet lc_star = constructible_version(
      *LocationConsistencyModel::instance(), spec, &stats);
  EXPECT_EQ(stats.pruned, 0u);
  EXPECT_EQ(stats.initial_pairs, stats.final_pairs);
  const auto cmp =
      compare_with_model(lc_star, *LocationConsistencyModel::instance());
  for (const auto& row : cmp) EXPECT_TRUE(row.equal) << row.size;
}

TEST(Fixpoint, Theorem9_FixpointIsSelfSupporting) {
  // 9.1: Δ* ⊆ Δ (by construction of restrict+prune, checked anyway);
  // 9.2: every live pair below the boundary answers every in-universe
  // extension with a live pair — the defining fixpoint property.
  const auto spec = thin_spec(4);
  const BoundedModelSet nn_star =
      constructible_version(*QDagModel::nn(), spec);
  const std::vector<Op> alphabet = op_alphabet(spec.nlocations);
  nn_star.for_each_live([&](const Computation& c,
                            const ObserverFunction& phi) {
    EXPECT_TRUE(QDagModel::nn()->contains(c, phi));  // 9.1
    if (c.node_count() >= spec.max_nodes) return true;
    bool all_answered = true;
    for_each_one_node_extension(
        c, alphabet, /*dedupe=*/false, [&](const Computation& ext) {
          // Extensions filtered out of the universe are unconstraining.
          bool in_universe = true;
          std::vector<std::size_t> writes(spec.nlocations, 0);
          for (NodeId u = 0; u < ext.node_count(); ++u) {
            const Op o = ext.op(u);
            if (o.is_nop() && !spec.include_nop) in_universe = false;
            if (o.is_write() &&
                ++writes[o.loc] > spec.max_writes_per_location)
              in_universe = false;
          }
          if (!in_universe) return true;
          bool answered = false;
          for_each_extension_observer(
              ext, phi, [&](const ObserverFunction& phi2) {
                if (nn_star.contains_pair(ext, phi2)) {
                  answered = true;
                  return false;
                }
                return true;
              });
          if (!answered) all_answered = false;
          return all_answered;
        });
    EXPECT_TRUE(all_answered);
    return true;
  });
}

TEST(Fixpoint, ParallelJacobiMatchesSequential) {
  const auto spec = thin_spec(5);
  ThreadPool pool(4);
  const BoundedModelSet seq = constructible_version(*QDagModel::nn(), spec);
  FixpointStats pstats;
  const BoundedModelSet par =
      constructible_version_parallel(*QDagModel::nn(), spec, pool, &pstats);
  EXPECT_EQ(seq.live_count(), par.live_count());
  for (std::size_t n = 0; n <= spec.max_nodes; ++n)
    EXPECT_EQ(seq.live_count_at_size(n), par.live_count_at_size(n)) << n;
  // Identical live sets, pair by pair.
  seq.for_each_live([&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_TRUE(par.contains_pair(c, phi));
    return true;
  });
  EXPECT_EQ(pstats.final_pairs, seq.live_count());
}

TEST(Fixpoint, StatsRoundsAreReported) {
  const auto spec = thin_spec(3);
  FixpointStats stats;
  (void)constructible_version(*QDagModel::nn(), spec, &stats);
  EXPECT_GE(stats.rounds, 1u);
}

/// Serialize the full labeled membership a fixpoint stands for: every
/// labeled pair of the universe it contains, in sorted encoding order.
/// Labeled and quotient results must serialize byte-identically.
std::string labeled_image(const BoundedModelSet& set, const UniverseSpec& spec) {
  std::vector<std::string> lines;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    if (set.contains_pair(c, phi))
      lines.push_back(encode_computation(c) + '\x1f' + encode_observer(phi));
    return true;
  });
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

TEST(Fixpoint, QuotientMatchesLabeledByteForByte) {
  // The acceptance check of the quotient engine: identical Δ*
  // membership over the whole labeled universe, identical
  // multiplicity-weighted censuses, identical pruning stats.
  for (const UniverseSpec& spec : {thin_spec(3), thin_spec(4)}) {
    FixpointStats lstats, qstats;
    const BoundedModelSet labeled =
        constructible_version(*QDagModel::nn(), spec, &lstats);
    const BoundedModelSet quotient =
        constructible_version_quotient(*QDagModel::nn(), spec, &qstats);
    EXPECT_TRUE(quotient.quotient());
    EXPECT_EQ(lstats.initial_pairs, qstats.initial_pairs);
    EXPECT_EQ(lstats.final_pairs, qstats.final_pairs);
    EXPECT_EQ(lstats.pruned, qstats.pruned);
    for (std::size_t n = 0; n <= spec.max_nodes; ++n)
      EXPECT_EQ(labeled.live_count_at_size(n),
                quotient.live_count_at_size(n))
          << n;
    EXPECT_EQ(labeled_image(labeled, spec), labeled_image(quotient, spec));
  }
}

TEST(Fixpoint, QuotientMatchesLabeledWithWriteCapUnset) {
  // Same check on a universe without the write-per-location filter, so
  // no extension ever leaves the universe (a different code path: every
  // extension constrains).
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  FixpointStats lstats, qstats;
  const BoundedModelSet labeled =
      constructible_version(*QDagModel::nn(), spec, &lstats);
  const BoundedModelSet quotient =
      constructible_version_quotient(*QDagModel::nn(), spec, &qstats);
  EXPECT_EQ(lstats.final_pairs, qstats.final_pairs);
  EXPECT_EQ(lstats.pruned, qstats.pruned);
  EXPECT_EQ(labeled_image(labeled, spec), labeled_image(quotient, spec));
}

TEST(Fixpoint, QuotientParallelMatchesSequentialQuotient) {
  const auto spec = thin_spec(4);
  ThreadPool pool(4);
  FixpointStats qstats, pstats;
  const BoundedModelSet seq =
      constructible_version_quotient(*QDagModel::nn(), spec, &qstats);
  const BoundedModelSet par =
      constructible_version_quotient_parallel(*QDagModel::nn(), spec, pool,
                                              &pstats);
  EXPECT_EQ(qstats.final_pairs, pstats.final_pairs);
  EXPECT_EQ(labeled_image(seq, spec), labeled_image(par, spec));
}

TEST(Fixpoint, RestrictedEntriesArriveFrozen) {
  // The parallel drivers assert this instead of calling ensure_closure()
  // from worker threads: a dirty lazy closure on a shared dag is a data
  // race (two tasks building desc_/anc_ concurrently).
  const auto spec = thin_spec(3);
  const BoundedModelSet labeled =
      BoundedModelSet::restrict_model(*QDagModel::nn(), spec);
  for (const auto& [key, e] : labeled.entries())
    EXPECT_TRUE(e.c.dag().closure_frozen()) << key;
  const BoundedModelSet quotient =
      BoundedModelSet::restrict_model_quotient(*QDagModel::nn(), spec);
  for (const auto& [key, e] : quotient.entries())
    EXPECT_TRUE(e.c.dag().closure_frozen()) << key;
}

TEST(Fixpoint, QuotientParallelTwoLocationStress) {
  // Exercised under TSan in CI: stage 1 stores shared extension
  // computations that parallel stage-2 tasks read concurrently; their
  // closures must be frozen before the fan-out.
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  spec.include_nop = false;
  ThreadPool pool(8);
  FixpointStats qstats, pstats;
  const BoundedModelSet seq =
      constructible_version_quotient(*QDagModel::nn(), spec, &qstats);
  const BoundedModelSet par =
      constructible_version_quotient_parallel(*QDagModel::nn(), spec, pool,
                                              &pstats);
  EXPECT_EQ(qstats.final_pairs, pstats.final_pairs);
  EXPECT_EQ(labeled_image(seq, spec), labeled_image(par, spec));
}

/// Serialize a result's entry table exactly: key, multiplicity, per-pair
/// liveness, and every stored observer, in sorted key order. Two engines
/// produce "byte-identical results" iff these strings match.
std::string entries_signature(const BoundedModelSet& set) {
  std::vector<std::string> lines;
  for (const auto& [key, e] : set.entries()) {
    std::string line = key;
    line += '\x1e';
    line += std::to_string(e.multiplicity);
    for (std::size_t i = 0; i < e.phis.size(); ++i) {
      line += '\x1f';
      line.push_back(e.alive[i] ? '1' : '0');
      line += encode_observer(e.phis[i]);
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

/// The six models of the paper's hierarchy (Figure 1).
std::vector<std::pair<const char*, std::shared_ptr<const MemoryModel>>>
six_models() {
  return {{"SC", SequentialConsistencyModel::instance()},
          {"LC", LocationConsistencyModel::instance()},
          {"NN", QDagModel::nn()},
          {"NW", QDagModel::nw()},
          {"WN", QDagModel::wn()},
          {"WW", QDagModel::ww()}};
}

TEST(Fixpoint, WorklistMatchesJacobiSixModelsQuotient) {
  // The tentpole differential: semi-naive worklist (+ extension dedupe)
  // against the legacy Jacobi schedule (no dedupe), byte-identical
  // entries/liveness/multiplicities, all six models, exhaustive n<=5.
  const auto spec = thin_spec(5);
  FixpointOptions worklist;  // defaults: worklist + dedupe
  FixpointOptions jacobi;
  jacobi.worklist = false;
  jacobi.dedupe_extensions = false;
  for (const auto& [name, model] : six_models()) {
    FixpointStats ws, js;
    const BoundedModelSet w =
        constructible_version_quotient(*model, spec, worklist, &ws);
    const BoundedModelSet j =
        constructible_version_quotient(*model, spec, jacobi, &js);
    EXPECT_EQ(ws.final_pairs, js.final_pairs) << name;
    EXPECT_EQ(ws.pruned, js.pruned) << name;
    EXPECT_EQ(entries_signature(w), entries_signature(j)) << name;
    // The worklist engine's counters must be populated whenever work
    // happened; Jacobi must leave them zero.
    if (ws.pruned > 0) EXPECT_GT(ws.support_edges, 0u) << name;
    EXPECT_EQ(js.support_edges, 0u) << name;
    EXPECT_EQ(js.repairs, 0u) << name;
  }
}

TEST(Fixpoint, WorklistMatchesJacobiSixModelsLabeled) {
  // Same differential through the labeled driver (no quotient): n<=4
  // keeps the full-universe runs in test budget while still crossing
  // the pruning threshold (the NN \ LC witnesses die at size 4).
  const auto spec = thin_spec(4);
  FixpointOptions worklist;
  FixpointOptions jacobi;
  jacobi.worklist = false;
  jacobi.dedupe_extensions = false;
  for (const auto& [name, model] : six_models()) {
    FixpointStats ws, js;
    const BoundedModelSet w =
        constructible_version(*model, spec, worklist, &ws);
    const BoundedModelSet j = constructible_version(*model, spec, jacobi, &js);
    EXPECT_EQ(ws.final_pairs, js.final_pairs) << name;
    EXPECT_EQ(ws.pruned, js.pruned) << name;
    EXPECT_EQ(entries_signature(w), entries_signature(j)) << name;
  }
}

TEST(Fixpoint, WorklistKillOrderIndependence) {
  // The gfp is kill-schedule-independent (kills are monotone), so
  // scrambling every propagation wave must not change the result.
  const auto spec = thin_spec(5);
  FixpointOptions base;  // worklist, seed 0 (FIFO order)
  FixpointStats bs;
  const BoundedModelSet reference =
      constructible_version_quotient(*QDagModel::nn(), spec, base, &bs);
  const std::string ref_sig = entries_signature(reference);
  EXPECT_GT(bs.pruned, 0u);
  for (const std::uint64_t seed :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{12345},
        std::uint64_t{0xdeadbeefULL}}) {
    FixpointOptions opt;
    opt.scramble_seed = seed;
    FixpointStats ss;
    const BoundedModelSet scrambled =
        constructible_version_quotient(*QDagModel::nn(), spec, opt, &ss);
    EXPECT_EQ(bs.final_pairs, ss.final_pairs) << seed;
    EXPECT_EQ(bs.pruned, ss.pruned) << seed;
    EXPECT_EQ(ref_sig, entries_signature(scrambled)) << seed;
  }
}

TEST(Fixpoint, ParallelRestrictQuotientMatchesSequential) {
  // The pool-parallel shard enumeration must build the exact entry
  // table the sequential path builds (classes never cross dag shards,
  // so the merge is collision-free).
  const auto spec = thin_spec(4);
  ThreadPool pool(4);
  const BoundedModelSet seq =
      BoundedModelSet::restrict_model_quotient(*QDagModel::nn(), spec);
  const BoundedModelSet par =
      BoundedModelSet::restrict_model_quotient(*QDagModel::nn(), spec, &pool);
  EXPECT_EQ(seq.entries().size(), par.entries().size());
  EXPECT_EQ(entries_signature(seq), entries_signature(par));
}

TEST(Fixpoint, WorklistQuotientParallelStressMatches) {
  // TSan CI target (the *Parallel* filter): the worklist engine under a
  // wide pool on a two-location universe, against the sequential
  // worklist result. Stage-1 stores shared frozen computations that
  // stage-2 tasks judge concurrently; support-edge recording and kill
  // propagation stay serial.
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  spec.include_nop = false;
  ThreadPool pool(8);
  FixpointOptions worklist;  // defaults
  FixpointStats ss, ps;
  const BoundedModelSet seq =
      constructible_version_quotient(*QDagModel::nn(), spec, worklist, &ss);
  const BoundedModelSet par = constructible_version_quotient_parallel(
      *QDagModel::nn(), spec, pool, worklist, &ps);
  EXPECT_EQ(ss.final_pairs, ps.final_pairs);
  EXPECT_EQ(ss.pruned, ps.pruned);
  EXPECT_EQ(entries_signature(seq), entries_signature(par));
}

TEST(Fixpoint, QuotientConstructibleModelIsItsOwnFixpoint) {
  const auto spec = thin_spec(4);
  FixpointStats stats;
  const BoundedModelSet lc_star = constructible_version_quotient(
      *LocationConsistencyModel::instance(), spec, &stats);
  EXPECT_EQ(stats.pruned, 0u);
  const auto cmp =
      compare_with_model(lc_star, *LocationConsistencyModel::instance());
  for (const auto& row : cmp) EXPECT_TRUE(row.equal) << row.size;
}

}  // namespace
}  // namespace ccmm
