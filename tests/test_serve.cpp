// The online-serving differential: a CheckSession fed the trace's
// binary records — in any chunking, in any linear-extension arrival
// order — must produce verdicts AND witness strings byte-identical to
// `ccmm_check --trace` (large_check_trace) on the concatenated trace.
// The second half drives the whole daemon: framing protocol, many
// concurrent clients, reconnects, snapshot/restore, backpressure and
// the /status endpoint, with the *Parallel* cases running under TSan.
#include "trace/session_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "exec/sc_memory.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "exec/schedule.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "dag/generators.hpp"
#include "proc/random_program.hpp"
#include "trace/large_check.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

/// Execution-order binary records of a trace — what a serve client
/// puts on the wire (write_trace_binary's stable seq sort included).
std::vector<BinaryTraceEvent> records_of(const Trace& trace) {
  std::vector<std::uint32_t> order(trace.events.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return trace.events[a].seq < trace.events[b].seq;
                   });
  std::vector<BinaryTraceEvent> out(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TraceEvent& e = trace.events[order[i]];
    out[i] = BinaryTraceEvent{e.seq, e.time, e.proc, e.node,
                              e.observed == kBottom
                                  ? 0xFFFFFFFFu
                                  : static_cast<std::uint32_t>(e.observed),
                              0};
  }
  return out;
}

/// Normalize seq to the sorted arrival order so corrupted streams stay
/// seq-ordered however we perturb them.
void renumber(std::vector<BinaryTraceEvent>& recs) {
  for (std::size_t i = 0; i < recs.size(); ++i) recs[i].seq = i;
}

/// Point some read events at other writes of their location — stale
/// ones violate models, forward ones exercise the oracle and the
/// validity scan. Mirrors test_loc_incremental's observer corruption
/// at the trace level.
void corrupt_records(const Computation& c, std::vector<BinaryTraceEvent>& recs,
                     Rng& rng, int flips) {
  for (int k = 0; k < flips; ++k) {
    const std::size_t i = rng.below(recs.size());
    const NodeId u = recs[i].node;
    if (!c.op(u).is_read()) continue;
    const std::vector<NodeId> ws = c.writers(c.op(u).loc);
    if (ws.empty()) continue;
    recs[i].observed = ws[rng.below(ws.size())];
  }
}

void expect_reports_identical(const LargeCheckReport& got,
                              const LargeCheckReport& want,
                              const std::string& ctx) {
  ASSERT_EQ(got.checked, want.checked) << ctx;
  ASSERT_EQ(got.valid_observer, want.valid_observer)
      << ctx << " got=" << got.detail << " want=" << want.detail;
  EXPECT_EQ(got.satisfied, want.satisfied) << ctx;
  EXPECT_EQ(got.detail, want.detail) << ctx;
  ASSERT_EQ(got.locations.size(), want.locations.size()) << ctx;
  for (std::size_t i = 0; i < got.locations.size(); ++i) {
    EXPECT_EQ(got.locations[i].loc, want.locations[i].loc) << ctx;
    EXPECT_EQ(got.locations[i].valid, want.locations[i].valid) << ctx;
    EXPECT_EQ(got.locations[i].violated, want.locations[i].violated) << ctx;
    EXPECT_EQ(got.locations[i].writers, want.locations[i].writers) << ctx;
    EXPECT_EQ(got.locations[i].detail, want.locations[i].detail) << ctx;
  }
}

Trace trace_from_records(const Computation& c,
                         const std::vector<BinaryTraceEvent>& recs) {
  Trace t;
  t.events.resize(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    TraceEvent& e = t.events[i];
    e.seq = recs[i].seq;
    e.time = recs[i].time;
    e.proc = static_cast<ProcId>(recs[i].proc);
    e.node = static_cast<NodeId>(recs[i].node);
    e.op = recs[i].node < c.node_count() ? c.op(recs[i].node) : Op::nop();
    e.observed = static_cast<NodeId>(recs[i].observed);
  }
  return t;
}

/// Stream `recs` through a CheckSession in `chunk`-sized feeds and
/// demand the finish() report match the batch postmortem byte for
/// byte.
void expect_session_matches_batch(const Computation& c,
                                  const std::vector<BinaryTraceEvent>& recs,
                                  std::uint32_t models, std::size_t chunk) {
  SessionOptions sopt;
  sopt.models = models;
  CheckSession session(c, sopt);
  for (std::size_t at = 0; at < recs.size(); at += chunk) {
    const std::size_t k = std::min(chunk, recs.size() - at);
    if (!session.feed(recs.data() + at, k)) break;
  }
  LargeCheckReport got = session.finish();

  LargeCheckOptions bopt;
  bopt.models = models;
  bopt.parallel = false;
  const LargeCheckReport want =
      large_check_trace(c, trace_from_records(c, recs), bopt);
  expect_reports_identical(
      got, want,
      "chunk=" + std::to_string(chunk) + " models=" + std::to_string(models));

  // finish() is idempotent: the verdict is a pure function of the
  // consumed stream.
  expect_reports_identical(session.finish(), want, "refinish");
}

TEST(CheckSession, SerialScStreamMatchesBatch) {
  Rng rng(11);
  proc::RandomCilkOptions opt;
  opt.target_ops = 3000;
  opt.nlocations = 8;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  const std::vector<BinaryTraceEvent> recs = records_of(run_serial(c, mem).trace);
  for (const std::size_t chunk : {1u, 7u, 64u, 4096u})
    for (const std::uint32_t models : std::initializer_list<std::uint32_t>{
             kSuiteLC, kLargeCheckAll, kLargeCheckExt})
      expect_session_matches_batch(c, recs, models, chunk);
}

TEST(CheckSession, CorruptedStreamsMatchBatch) {
  // Stale and forward observations: violations, invalid observers and
  // oracle-consulting 2.2 pairs, all byte-compared against batch.
  Rng rng(23);
  proc::RandomCilkOptions opt;
  opt.target_ops = 2000;
  opt.nlocations = 5;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  const std::vector<BinaryTraceEvent> base = records_of(run_serial(c, mem).trace);
  for (int round = 0; round < 6; ++round) {
    std::vector<BinaryTraceEvent> recs = base;
    corrupt_records(c, recs, rng, 2 + round);
    renumber(recs);
    for (const std::size_t chunk : {1u, 64u, 4096u})
      expect_session_matches_batch(c, recs, kLargeCheckExt, chunk);
  }
}

TEST(CheckSession, InterleavedScheduleStreamMatchesBatch) {
  // A multi-proc schedule: the arrival order is a nontrivial linear
  // extension, so the kernel's watermark lags arrival and the session
  // exercises the out-of-scan-order path.
  Rng rng(31);
  const Computation c = workload::random_ops(gen::random_dag(400, 0.03, rng),
                                             6, 0.4, 0.4, rng);
  WeakMemory mem(5);
  const Schedule s = greedy_schedule(c, 4);
  const std::vector<BinaryTraceEvent> base =
      records_of(run_execution(c, s, mem).trace);
  for (const std::size_t chunk : {1u, 7u, 64u})
    expect_session_matches_batch(c, base, kLargeCheckExt, chunk);
  std::vector<BinaryTraceEvent> bad = base;
  corrupt_records(c, bad, rng, 4);
  renumber(bad);
  for (const std::size_t chunk : {1u, 64u})
    expect_session_matches_batch(c, bad, kLargeCheckExt, chunk);
}

/// Retarget one read of `c` at never-written location `extra`, plant a
/// recorded observation on it mid-stream, and demand online ≡ batch.
/// The extra state splices into the location-sorted task list at a
/// position determined by `extra`, so callers pick it to land before
/// or after the written states.
void expect_extra_location_matches_batch(Computation c, Location extra) {
  std::vector<Op> ops;
  ops.reserve(c.node_count());
  for (NodeId u = 0; u < c.node_count(); ++u) ops.push_back(c.op(u));
  NodeId reader = kBottom;
  for (NodeId u = 0; u < c.node_count(); ++u)
    if (ops[u].is_read()) {
      ops[u] = Op::read(extra);
      reader = u;
      break;
    }
  ASSERT_NE(reader, kBottom);
  c.set_ops(ops);
  ScMemory mem;
  std::vector<BinaryTraceEvent> recs = records_of(run_serial(c, mem).trace);
  bool planted = false;
  for (BinaryTraceEvent& r : recs)
    if (r.node == reader) {
      r.observed = recs.front().node;  // any node: must fail 2.1
      planted = true;
    }
  ASSERT_TRUE(planted);
  renumber(recs);
  for (const std::size_t chunk : {1u, 64u})
    expect_session_matches_batch(c, recs, kLargeCheckExt, chunk);
}

TEST(CheckSession, NeverWrittenLocationObservationsMatchBatch) {
  // A recorded observation at a never-written location must spawn the
  // batch engine's extra all-⊥ column (always failing 2.1) online too.
  // Location 999 sorts after every written location: the splice lands
  // at the tail of the task list.
  Rng rng(41);
  const Computation c = workload::random_ops(gen::random_dag(120, 0.05, rng),
                                             4, 0.5, 0.1, rng);
  expect_extra_location_matches_batch(c, Location{999});
}

TEST(CheckSession, NeverWrittenLowLocationSplicesBeforeWrittenStates) {
  // The mirror case: the extra location sorts BEFORE every written
  // one, so the mid-stream splice shifts every written state's index
  // in the task list. Regression test for per-state bookkeeping kept
  // in a states_-indexed side vector going out of alignment after the
  // shift (out-of-bounds writes and wrong carried last-writes).
  Rng rng(41);
  Computation c = workload::random_ops(gen::random_dag(120, 0.05, rng), 4,
                                       0.5, 0.1, rng);
  std::vector<Op> ops;
  ops.reserve(c.node_count());
  for (NodeId u = 0; u < c.node_count(); ++u) {
    Op o = c.op(u);
    if (!o.is_nop()) ++o.loc;  // free up Location 0
    ops.push_back(o);
  }
  c.set_ops(ops);
  expect_extra_location_matches_batch(c, Location{0});
}

TEST(CheckSession, MidStreamCheckAndFastVerdictAreConsistent) {
  Rng rng(53);
  proc::RandomCilkOptions opt;
  opt.target_ops = 1500;
  opt.nlocations = 4;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  std::vector<BinaryTraceEvent> recs = records_of(run_serial(c, mem).trace);
  corrupt_records(c, recs, rng, 5);
  renumber(recs);

  SessionOptions sopt;
  sopt.models = kLargeCheckExt;
  CheckSession session(c, sopt);
  for (std::size_t at = 0; at < recs.size(); at += 97) {
    const std::size_t k = std::min<std::size_t>(97, recs.size() - at);
    ASSERT_TRUE(session.feed(recs.data() + at, k)) << session.error();
    // The fast verdict's sticky bits are a lower bound on the full
    // prefix verdict, and its validity flag matches exactly.
    const SessionVerdict fast = session.fast_verdict();
    const LargeCheckReport mid = session.check();
    EXPECT_EQ(fast.valid, mid.valid_observer);
    std::uint32_t mid_violated = 0;
    for (const LocationCheck& lc : mid.locations) mid_violated |= lc.violated;
    EXPECT_EQ(fast.violated & ~mid_violated, 0u);
    EXPECT_EQ(fast.events, session.events_seen());
  }
  const LargeCheckReport final_report = session.finish();
  LargeCheckOptions bopt;
  bopt.models = kLargeCheckExt;
  bopt.parallel = false;
  expect_reports_identical(
      final_report, large_check_trace(c, trace_from_records(c, recs), bopt),
      "after mid-stream checks");
}

TEST(CheckSession, RejectsInconsistentStreams) {
  Rng rng(61);
  proc::RandomCilkOptions opt;
  opt.target_ops = 200;
  opt.nlocations = 3;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  const std::vector<BinaryTraceEvent> recs = records_of(run_serial(c, mem).trace);
  const std::size_t n = c.node_count();

  {  // duplicate node
    SessionOptions so;
    CheckSession s(c, so);
    ASSERT_TRUE(s.feed(recs.data(), 2));
    BinaryTraceEvent dup = recs[1];
    dup.seq = recs[2].seq;
    EXPECT_FALSE(s.feed(&dup, 1));
    EXPECT_NE(s.error().find("more than one event"), std::string::npos);
    const LargeCheckReport r = s.finish();
    EXPECT_FALSE(r.valid_observer);
    EXPECT_NE(r.detail.find("trace does not fit the computation"),
              std::string::npos);
  }
  {  // unknown node
    CheckSession s(c, {});
    BinaryTraceEvent bad = recs[0];
    bad.node = static_cast<std::uint32_t>(n + 7);
    EXPECT_FALSE(s.feed(&bad, 1));
    EXPECT_NE(s.error().find("unknown node"), std::string::npos);
  }
  {  // successor before its predecessor (flipped dag edge)
    NodeId child = kBottom;
    for (NodeId u = 0; u < n && child == kBottom; ++u)
      if (!c.dag().pred(u).empty()) child = u;
    ASSERT_NE(child, kBottom);
    CheckSession s(c, {});
    BinaryTraceEvent first{};
    first.seq = 0;
    first.node = child;
    first.observed = 0xFFFFFFFFu;
    EXPECT_FALSE(s.feed(&first, 1));
    EXPECT_NE(s.error().find("flips dag edge"), std::string::npos);
  }
  {  // seq going backwards
    std::vector<BinaryTraceEvent> renum = recs;
    renumber(renum);  // seq = 0,1,2,...
    CheckSession s(c, {});
    ASSERT_TRUE(s.feed(renum.data(), 3));
    BinaryTraceEvent back = renum[3];
    back.seq = 1;  // strictly before the last accepted seq (2)
    EXPECT_FALSE(s.feed(&back, 1));
    EXPECT_NE(s.error().find("seq-ordered"), std::string::npos);
  }
  {  // incomplete stream: batch's event-count mismatch, verbatim
    CheckSession s(c, {});
    ASSERT_TRUE(s.feed(recs.data(), recs.size() / 2));
    const LargeCheckReport r = s.finish();
    LargeCheckOptions bopt;
    bopt.parallel = false;
    Trace half = trace_from_records(c, recs);
    half.events.resize(recs.size() / 2);
    const LargeCheckReport want = large_check_trace(c, half, bopt);
    EXPECT_EQ(r.detail, want.detail);
    // ...and the session is still alive: completing it still works.
    ASSERT_TRUE(s.feed(recs.data() + recs.size() / 2,
                       recs.size() - recs.size() / 2));
    EXPECT_TRUE(s.finish().valid_observer);
  }
}

TEST(CheckSession, RetainedEventReplayReproducesVerdicts) {
  // The snapshot/restore substrate: replaying the retained log through
  // a fresh session lands in an identical state.
  Rng rng(71);
  proc::RandomCilkOptions opt;
  opt.target_ops = 800;
  opt.nlocations = 4;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  std::vector<BinaryTraceEvent> recs = records_of(run_serial(c, mem).trace);
  corrupt_records(c, recs, rng, 3);
  renumber(recs);

  SessionOptions sopt;
  sopt.models = kLargeCheckExt;
  sopt.retain_events = true;
  CheckSession a(c, sopt);
  ASSERT_TRUE(a.feed(recs.data(), recs.size() / 3));

  CheckSession b(c, sopt);
  ASSERT_TRUE(b.feed(a.retained_events().data(), a.retained_events().size()));
  ASSERT_TRUE(a.feed(recs.data() + recs.size() / 3,
                     recs.size() - recs.size() / 3));
  ASSERT_TRUE(b.feed(recs.data() + recs.size() / 3,
                     recs.size() - recs.size() / 3));
  expect_reports_identical(b.finish(), a.finish(), "retained replay");
}

// ---------------------------------------------------------------------------
// The daemon: protocol framing, concurrent clients, reconnects,
// snapshot/restore, backpressure, /status. POSIX sockets only.

#if defined(__unix__) || defined(__APPLE__)

/// A running server on a fresh unix socket, torn down with the test.
struct TestServer {
  explicit TestServer(serve::ServerOptions o = {}) {
    static std::atomic<int> counter{0};
    path = ::testing::TempDir() +
           "ccmm_serve_t" + std::to_string(counter.fetch_add(1)) + ".sock";
    o.listen = "unix:" + path;
    server = std::make_unique<serve::Server>(std::move(o));
    server->start();
  }
  ~TestServer() {
    server->stop();
    ::unlink(path.c_str());
  }
  [[nodiscard]] std::string addr() const { return "unix:" + path; }

  std::string path;
  std::unique_ptr<serve::Server> server;
};

/// The shared fixture workload: a corrupted interleaved execution, so
/// verdicts carry real violations and witnesses.
struct Workload {
  Computation c;
  std::vector<BinaryTraceEvent> recs;
  LargeCheckReport batch;
};

Workload make_workload(std::uint64_t seed, std::size_t ops,
                       std::uint32_t models, int flips) {
  Rng rng(seed);
  proc::RandomCilkOptions opt;
  opt.target_ops = ops;
  opt.nlocations = 8;
  Workload w{proc::random_cilk(opt, rng), {}, {}};
  ScMemory mem;
  w.recs = records_of(run_serial(w.c, mem).trace);
  corrupt_records(w.c, w.recs, rng, flips);
  renumber(w.recs);
  LargeCheckOptions bopt;
  bopt.models = models;
  bopt.parallel = false;
  w.batch = large_check_trace(w.c, trace_from_records(w.c, w.recs), bopt);
  return w;
}

TEST(Serve, EndToEndMatchesBatchAcrossChunkSizes) {
  const Workload w = make_workload(71, 2000, kLargeCheckExt, 4);
  for (const serve::ServerOptions& base :
       {serve::ServerOptions{}, [] {
          serve::ServerOptions o;
          o.kernel_offload = false;  // 1-core inline mode
          return o;
        }()}) {
    TestServer ts(base);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{64},
                                    std::size_t{4096}}) {
      serve::ClientOptions copts;
      copts.session.models = kLargeCheckExt;
      copts.batch_events = chunk;
      serve::ServeClient client(ts.addr(), copts);
      client.open(w.c);
      EXPECT_EQ(client.node_count(), w.c.node_count());
      client.feed(w.recs);
      const SessionVerdict v = client.verdict();
      EXPECT_EQ(v.events, w.recs.size());
      expect_reports_identical(client.finish(), w.batch,
                               "serve chunk=" + std::to_string(chunk));
      client.close_session();
    }
    EXPECT_EQ(ts.server->session_count(), 0u);
  }
}

TEST(Serve, MidStreamCheckMatchesBatchPrefix) {
  const Workload w = make_workload(72, 1500, kLargeCheckExt, 3);
  TestServer ts;
  serve::ClientOptions copts;
  copts.session.models = kLargeCheckExt;
  serve::ServeClient client(ts.addr(), copts);
  client.open(w.c);
  const std::size_t half = w.recs.size() / 2;
  client.feed(w.recs.data(), half);
  // The serve-side check() equals a local session's check() on the
  // same prefix (itself differentially pinned against batch prefixes
  // in the CheckSession tests above).
  SessionOptions sopt;
  sopt.models = kLargeCheckExt;
  CheckSession local(w.c, sopt);
  ASSERT_TRUE(local.feed(w.recs.data(), half));
  expect_reports_identical(client.check(), local.check(), "mid check");
  client.feed(w.recs.data() + half, w.recs.size() - half);
  expect_reports_identical(client.finish(), w.batch, "after mid check");
}

TEST(Serve, ReconnectAttachResumesTheSession) {
  const Workload w = make_workload(73, 1500, kLargeCheckExt, 4);
  TestServer ts;
  std::uint64_t id = 0;
  const std::size_t third = w.recs.size() / 3;
  {
    serve::ClientOptions copts;
    copts.session.models = kLargeCheckExt;
    serve::ServeClient client(ts.addr(), copts);
    id = client.open(w.c);
    client.feed(w.recs.data(), third);
    client.flush();
    (void)client.verdict();  // drain: everything applied server-side
  }  // connection drops; the session must survive
  EXPECT_EQ(ts.server->session_count(), 1u);
  {
    serve::ServeClient client(ts.addr());
    client.attach(id);
    EXPECT_EQ(client.node_count(), w.c.node_count());
    client.feed(w.recs.data() + third, w.recs.size() - third);
    expect_reports_identical(client.finish(), w.batch, "post attach");
    client.close_session();
  }
  EXPECT_EQ(ts.server->session_count(), 0u);
}

TEST(Serve, SnapshotRestoreReproducesVerdicts) {
  const Workload w = make_workload(74, 1200, kLargeCheckExt, 4);
  TestServer ts;
  serve::ClientOptions copts;
  copts.session.models = kLargeCheckExt;
  copts.session.retain_events = true;
  serve::ServeClient client(ts.addr(), copts);
  client.open(w.c);
  const std::size_t half = w.recs.size() / 2;
  client.feed(w.recs.data(), half);
  client.flush();
  const std::string blob = client.snapshot();
  ASSERT_GT(blob.size(), 8u);

  // Restore on the SAME server: an independent session that must reach
  // the identical final report.
  {
    serve::ServeClient other(ts.addr());
    const std::uint64_t rid = other.restore(blob);
    EXPECT_NE(rid, client.session_id());
    other.feed(w.recs.data() + half, w.recs.size() - half);
    expect_reports_identical(other.finish(), w.batch, "restore same server");
    other.close_session();
  }
  // Restore on a FRESH server (migration).
  {
    TestServer ts2;
    serve::ServeClient other(ts2.addr());
    other.restore(blob);
    other.feed(w.recs.data() + half, w.recs.size() - half);
    expect_reports_identical(other.finish(), w.batch, "restore migration");
  }
  // The original session is unaffected.
  client.feed(w.recs.data() + half, w.recs.size() - half);
  expect_reports_identical(client.finish(), w.batch, "snapshot source");
}

TEST(Serve, RejectedStreamsReportTheBatchError) {
  const Workload w = make_workload(75, 800, kSuiteLC, 0);
  TestServer ts;
  serve::ServeClient client(ts.addr());
  client.open(w.c);

  // Flip a dag edge: stream an event whose predecessor never arrived.
  std::vector<BinaryTraceEvent> bad = w.recs;
  std::reverse(bad.begin(), bad.end());
  renumber(bad);
  client.feed(bad);
  try {
    (void)client.verdict();
    FAIL() << "verdict on a rejected stream must throw";
  } catch (const serve::ServeError& e) {
    EXPECT_TRUE(e.stream_rejected());
    EXPECT_NE(std::string(e.what()).find("trace order flips"),
              std::string::npos)
        << e.what();
  }
  // finish() still answers, with the batch engine's error report.
  LargeCheckOptions bopt;
  bopt.models = kSuiteLC;
  bopt.parallel = false;
  const LargeCheckReport want =
      large_check_trace(w.c, trace_from_records(w.c, bad), bopt);
  expect_reports_identical(client.finish(), want, "rejected stream");
}

TEST(Serve, ProtocolErrorPaths) {
  TestServer ts;
  {
    serve::ServeClient client(ts.addr());
    EXPECT_THROW((void)client.attach(999999), serve::ServeError);
  }
  {
    // kEvents with no session.
    serve::ServeClient client(ts.addr());
    BinaryTraceEvent e{};
    client.feed(&e, 1);
    EXPECT_THROW((void)client.verdict(), serve::ServeError);
  }
  {
    // Snapshot without retain_events.
    const Workload w = make_workload(76, 200, kSuiteLC, 0);
    serve::ServeClient client(ts.addr());
    client.open(w.c);
    EXPECT_THROW((void)client.snapshot(), serve::ServeError);
  }
}

TEST(Serve, StatusOverProtocolAndHttp) {
  const Workload w = make_workload(77, 400, kSuiteLC, 0);
  TestServer ts;
  serve::ServeClient client(ts.addr());
  client.open(w.c);
  client.feed(w.recs);
  (void)client.finish();

  const std::string status = client.status();
  EXPECT_NE(status.find("ccmm_serve status"), std::string::npos);
  EXPECT_NE(status.find("events_ingested: " +
                        std::to_string(w.recs.size())),
            std::string::npos)
      << status;

  // Raw HTTP GET on the same socket.
  net::Fd http = net::connect_to(net::Addr::parse(ts.addr()));
  const std::string req = "GET /status HTTP/1.0\r\n\r\n";
  net::write_all(http.get(), req.data(), req.size());
  std::string page;
  char buf[4096];
  for (;;) {
    const ssize_t k = ::read(http.get(), buf, sizeof buf);
    if (k <= 0) break;
    page.append(buf, static_cast<std::size_t>(k));
  }
  EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(page.find("ccmm_serve status"), std::string::npos);
}

TEST(Serve, BackpressureBoundsInFlightBatches) {
  // A tiny in-flight cap with the kernel offloaded: the shard must
  // throttle the connection instead of queueing without bound, and the
  // stream must still complete byte-identically.
  const Workload w = make_workload(78, 2000, kSuiteLC, 2);
  serve::ServerOptions sopt;
  sopt.max_pending_batches = 2;
  TestServer ts(sopt);
  serve::ClientOptions copts;
  copts.batch_events = 16;  // many small batches -> deep pipelining
  serve::ServeClient client(ts.addr(), copts);
  client.open(w.c);
  client.feed(w.recs);
  expect_reports_identical(client.finish(), w.batch, "backpressure");
}

TEST(Serve, ParallelManyClientsMatchBatch) {
  // The TSan target: concurrent sessions across shards, every final
  // report diffed against the batch engine.
  const Workload w = make_workload(79, 1000, kLargeCheckExt, 3);
  serve::ServerOptions sopt;
  sopt.shards = 2;
  TestServer ts(sopt);
  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          serve::ClientOptions copts;
          copts.session.models = kLargeCheckExt;
          copts.batch_events = 64 + 97 * static_cast<std::size_t>(t);
          serve::ServeClient client(ts.addr(), copts);
          client.open(w.c);
          client.feed(w.recs);
          const LargeCheckReport got = client.finish();
          if (got.satisfied != w.batch.satisfied ||
              got.detail != w.batch.detail ||
              got.valid_observer != w.batch.valid_observer)
            failures.fetch_add(1);
          client.close_session();
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ts.server->session_count(), 0u);
  EXPECT_GE(ts.server->stats().sessions_opened.load(),
            static_cast<std::uint64_t>(kThreads * kSessionsPerThread));
}

#endif  // POSIX

}  // namespace
}  // namespace ccmm
