// Figure 1: the lattice of model relations, verified extensionally on a
// bounded universe (Theorems 21 and 22 plus the strictness examples).
#include "models/relations.hpp"

#include <gtest/gtest.h>

#include "enumerate/universe.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

class RelationsOnUniverse : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniverseSpec spec;
    spec.max_nodes = 4;
    spec.nlocations = 1;
    spec.include_nop = false;  // keeps the universe tight; nops are
                               // exercised by the handcrafted pairs
    universe_ = new std::vector<CPhi>(build_universe(spec));
    // Add the two-location separator pairs the 1-location universe lacks.
    const auto p = test::lc_not_sc_pair();
    universe_->push_back({p.c, p.phi});
  }
  static void TearDownTestSuite() {
    delete universe_;
    universe_ = nullptr;
  }

  static std::vector<CPhi>* universe_;
};

std::vector<CPhi>* RelationsOnUniverse::universe_ = nullptr;

TEST_F(RelationsOnUniverse, UniverseIsSubstantial) {
  EXPECT_GT(universe_->size(), 3000u);
}

TEST_F(RelationsOnUniverse, Figure1Lattice) {
  const auto nn = QDagModel::nn();
  const auto nw = QDagModel::nw();
  const auto wn = QDagModel::wn();
  const auto ww = QDagModel::ww();
  const auto lc = LocationConsistencyModel::instance();
  const auto sc = SequentialConsistencyModel::instance();

  // SC ⊊ LC (strictness needs the 2-location pair appended in SetUp).
  EXPECT_EQ(compare_models(*sc, *lc, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  // LC ⊊ NN (Theorem 22).
  EXPECT_EQ(compare_models(*lc, *nn, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  // NN ⊊ NW and NN ⊊ WN.
  EXPECT_EQ(compare_models(*nn, *nw, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  EXPECT_EQ(compare_models(*nn, *wn, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  // NW ⊊ WW and WN ⊊ WW.
  EXPECT_EQ(compare_models(*nw, *ww, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  EXPECT_EQ(compare_models(*wn, *ww, *universe_).relation,
            ModelRelation::kStrictlyStronger);
  // NW and WN are incomparable (Figures 2 and 3 in the two directions).
  EXPECT_EQ(compare_models(*nw, *wn, *universe_).relation,
            ModelRelation::kIncomparable);
}

TEST_F(RelationsOnUniverse, Theorem21_NNIsStrongestDagModel) {
  // NN ⊆ Q-dag consistency for arbitrary predicates Q: try a few exotic
  // ones alongside the named models.
  const auto nn = QDagModel::nn();
  const CustomQDagModel parity(
      "parity", [](const Computation&, Location, NodeId u, NodeId v,
                   NodeId w) { return (u + v + w) % 2 == 0; });
  const CustomQDagModel only_far(
      "only-far", [](const Computation& c, Location, NodeId u, NodeId v,
                     NodeId w) {
        (void)v;
        return u != kBottom && c.precedes(u, w);
      });
  for (const MemoryModel* q :
       std::initializer_list<const MemoryModel*>{&parity, &only_far}) {
    const auto r = compare_models(*nn, *q, *universe_);
    EXPECT_TRUE(r.relation == ModelRelation::kEqual ||
                r.relation == ModelRelation::kStrictlyStronger)
        << q->name() << ": " << relation_name(r.relation);
  }
}

TEST_F(RelationsOnUniverse, MembershipCountsAreMonotoneAlongTheLattice) {
  const auto nn = QDagModel::nn();
  const auto ww = QDagModel::ww();
  const auto lc = LocationConsistencyModel::instance();
  const auto sc = SequentialConsistencyModel::instance();
  const auto counts = membership_counts(
      {sc.get(), lc.get(), nn.get(), ww.get()}, *universe_);
  EXPECT_LT(counts[0], counts[1]);  // |SC| < |LC|
  EXPECT_LT(counts[1], counts[2]);  // |LC| < |NN|
  EXPECT_LT(counts[2], counts[3]);  // |NN| < |WW|
  EXPECT_GT(counts[0], 0u);
}

TEST_F(RelationsOnUniverse, Definition5_AllSixModelsMonotonic) {
  // Monotonicity on a thinned universe (full one is slow under SC).
  std::vector<CPhi> thin;
  for (std::size_t i = 0; i < universe_->size(); i += 7)
    thin.push_back((*universe_)[i]);
  for (const auto* m : std::initializer_list<const MemoryModel*>{
           QDagModel::nn().get(), QDagModel::nw().get(),
           QDagModel::wn().get(), QDagModel::ww().get(),
           LocationConsistencyModel::instance().get(),
           SequentialConsistencyModel::instance().get()}) {
    const auto r = check_monotonicity(*m, thin);
    EXPECT_TRUE(r.monotonic) << m->name() << " violated at index "
                             << r.witness;
  }
}

TEST(Relations, IntersectionModel) {
  const auto nw = QDagModel::nw();
  const auto wn = QDagModel::wn();
  const IntersectionModel both(nw, wn);
  const auto f2 = test::figure2_pair();  // in NW, not WN
  EXPECT_FALSE(both.contains(f2.c, f2.phi));
  const auto f3 = test::figure3_pair();  // in WN, not NW
  EXPECT_FALSE(both.contains(f3.c, f3.phi));
  const auto p = test::lc_not_sc_pair();  // in everything but SC
  EXPECT_TRUE(both.contains(p.c, p.phi));
}

TEST(Relations, PredicateModelWrapsLambdas) {
  const PredicateModel anything(
      "valid-only", [](const Computation& c, const ObserverFunction& phi) {
        return is_valid_observer(c, phi);
      });
  const auto p = test::figure2_pair();
  EXPECT_TRUE(anything.contains(p.c, p.phi));
  EXPECT_EQ(anything.name(), "valid-only");
}

}  // namespace
}  // namespace ccmm
