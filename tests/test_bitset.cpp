#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccmm {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynBitset, SetResetAssign) {
  DynBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  b.assign(64, true);
  EXPECT_TRUE(b.test(64));
  b.assign(64, false);
  EXPECT_FALSE(b.test(64));
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynBitset, FindFirstAndNext) {
  DynBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(3), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynBitset, BooleanAlgebra) {
  DynBitset a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);

  DynBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));

  DynBitset d = a;
  d.and_not(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));

  DynBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(99));
}

TEST(DynBitset, IntersectsAndSubset) {
  DynBitset a(64), b(64), c(64);
  a.set(10);
  b.set(10);
  b.set(20);
  c.set(30);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(DynBitset, ForEachVisitsExactlySetBits) {
  DynBitset b(300);
  std::vector<std::size_t> want = {0, 63, 64, 65, 128, 299};
  for (const auto i : want) b.set(i);
  EXPECT_EQ(b.to_indices(), want);
}

TEST(DynBitset, EqualityAndHash) {
  DynBitset a(100), b(100);
  a.set(42);
  b.set(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(43);
  EXPECT_FALSE(a == b);
}

TEST(DynBitset, ResizeKeepsLowBitsAndZeroFillsGrowth) {
  DynBitset b(40);
  b.set(0);
  b.set(39);
  b.resize(200);  // inline word -> heap
  EXPECT_EQ(b.size(), 200u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(39));
  EXPECT_EQ(b.count(), 2u);
  for (std::size_t i = 40; i < 200; ++i) EXPECT_FALSE(b.test(i));
  b.set(199);
  b.resize(40);  // heap -> inline word
  EXPECT_EQ(b.size(), 40u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(39));
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.memory_bytes(), 0u);
}

TEST(DynBitset, ResizeAtExactlyOneWord) {
  // Size exactly 64 must stay on the inline word with no tail mask.
  DynBitset b(64);
  b.set_all();
  EXPECT_EQ(b.count(), 64u);
  EXPECT_EQ(b.memory_bytes(), 0u);
  b.resize(65);  // the first size that needs the heap
  EXPECT_EQ(b.count(), 64u);
  EXPECT_FALSE(b.test(64));
  EXPECT_GT(b.memory_bytes(), 0u);
  b.set(64);
  b.resize(64);
  EXPECT_EQ(b.count(), 64u);
  EXPECT_EQ(b.find_next(62), 63u);
}

TEST(DynBitset, ShrinkThenGrowLeavesNoGhostBits) {
  // A stale tail bit surviving a shrink would resurface on regrow;
  // resize must re-trim. Cover both the in-word tail and whole dropped
  // words, on both sides of the SBO boundary.
  for (const std::size_t big : {64u, 70u, 128u, 190u}) {
    for (const std::size_t small : {1u, 63u, 64u, 65u}) {
      if (small >= big) continue;
      DynBitset b(big);
      b.set_all();
      b.resize(small);
      EXPECT_EQ(b.count(), small) << big << "->" << small;
      b.resize(big);
      EXPECT_EQ(b.count(), small) << big << "->" << small << "->" << big;
      for (std::size_t i = small; i < big; ++i)
        EXPECT_FALSE(b.test(i)) << big << "->" << small << " bit " << i;
    }
  }
}

TEST(DynBitset, ResizeToZeroAndBack) {
  DynBitset b(100);
  b.set_all();
  b.resize(0);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.none());
  b.resize(100);
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynBitset, RandomizedResizeAgainstReference) {
  Rng rng(907);
  for (int round = 0; round < 10; ++round) {
    std::size_t n = 1 + rng.below(150);
    DynBitset b(n);
    std::vector<bool> ref(n, false);
    for (int k = 0; k < 60; ++k) {
      if (rng.chance(0.25)) {
        const std::size_t m = 1 + rng.below(200);
        b.resize(m);
        ref.resize(m, false);
        n = m;
      } else {
        const std::size_t i = rng.below(n);
        const bool v = rng.chance(0.6);
        b.assign(i, v);
        ref[i] = v;
      }
      ASSERT_EQ(b.size(), n);
      std::size_t want = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(b.test(i), ref[i]) << "size " << n << " bit " << i;
        want += ref[i] ? 1 : 0;
      }
      ASSERT_EQ(b.count(), want);
    }
  }
}

TEST(DynBitset, RandomizedAgainstReference) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(200);
    DynBitset b(n);
    std::vector<bool> ref(n, false);
    for (int k = 0; k < 100; ++k) {
      const std::size_t i = rng.below(n);
      if (rng.chance(0.5)) {
        b.set(i);
        ref[i] = true;
      } else {
        b.reset(i);
        ref[i] = false;
      }
    }
    std::size_t want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(b.test(i), ref[i]);
      want += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(b.count(), want);
  }
}

}  // namespace
}  // namespace ccmm
