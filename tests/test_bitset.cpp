#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccmm {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynBitset, SetResetAssign) {
  DynBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  b.assign(64, true);
  EXPECT_TRUE(b.test(64));
  b.assign(64, false);
  EXPECT_FALSE(b.test(64));
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynBitset, FindFirstAndNext) {
  DynBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(3), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynBitset, BooleanAlgebra) {
  DynBitset a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);

  DynBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));

  DynBitset d = a;
  d.and_not(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));

  DynBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(99));
}

TEST(DynBitset, IntersectsAndSubset) {
  DynBitset a(64), b(64), c(64);
  a.set(10);
  b.set(10);
  b.set(20);
  c.set(30);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(DynBitset, ForEachVisitsExactlySetBits) {
  DynBitset b(300);
  std::vector<std::size_t> want = {0, 63, 64, 65, 128, 299};
  for (const auto i : want) b.set(i);
  EXPECT_EQ(b.to_indices(), want);
}

TEST(DynBitset, EqualityAndHash) {
  DynBitset a(100), b(100);
  a.set(42);
  b.set(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(43);
  EXPECT_FALSE(a == b);
}

TEST(DynBitset, RandomizedAgainstReference) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(200);
    DynBitset b(n);
    std::vector<bool> ref(n, false);
    for (int k = 0; k < 100; ++k) {
      const std::size_t i = rng.below(n);
      if (rng.chance(0.5)) {
        b.set(i);
        ref[i] = true;
      } else {
        b.reset(i);
        ref[i] = false;
      }
    }
    std::size_t want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(b.test(i), ref[i]);
      want += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(b.count(), want);
  }
}

}  // namespace
}  // namespace ccmm
