// WN⁺ (WN with the freshness axiom) and the constructibility landscape
// around the paper's WN prose claim; plus separator mining and
// completeness checking.
#include "models/wn_plus.hpp"

#include <gtest/gtest.h>

#include "construct/constructibility.hpp"
#include "construct/witness.hpp"
#include "enumerate/separators.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(WnPlus, FreshnessAxiomSemantics) {
  // w ≺ r with r observing ⊥ violates freshness; concurrent w does not.
  ComputationBuilder b1;
  const NodeId w1 = b1.write(0);
  b1.read(0, {w1});
  const Computation seq = std::move(b1).build();
  ObserverFunction stale(2);
  stale.set(0, 0, 0);
  EXPECT_TRUE(is_valid_observer(seq, stale));
  EXPECT_FALSE(observer_is_fresh(seq, stale));
  EXPECT_FALSE(wn_plus_consistent(seq, stale));

  ComputationBuilder b2;
  b2.write(0);
  b2.read(0);
  const Computation par = std::move(b2).build();
  ObserverFunction ok(2);
  ok.set(0, 0, 0);
  EXPECT_TRUE(observer_is_fresh(par, ok));  // the write is concurrent
  EXPECT_TRUE(wn_plus_consistent(par, ok));
}

TEST(WnPlus, SitsBetweenLcAndWn) {
  // LC ⊆ WN⁺ ⊆ WN on an exhaustive universe.
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  const auto lc = LocationConsistencyModel::instance();
  const auto wnp = WnPlusModel::instance();
  std::size_t in_lc = 0, in_wnp = 0, in_wn = 0;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& f) {
    const bool a = lc->contains(c, f);
    const bool b = wnp->contains(c, f);
    const bool d = qdag_consistent(c, f, DagPred::kWN);
    in_lc += a;
    in_wnp += b;
    in_wn += d;
    if (a) {
      EXPECT_TRUE(b);  // LC ⊆ WN+
    }
    if (b) {
      EXPECT_TRUE(d);  // WN+ ⊆ WN
    }
    return true;
  });
  EXPECT_LT(in_lc, in_wnp);
  EXPECT_LT(in_wnp, in_wn);
}

TEST(WnPlus, FigurePairsClassified) {
  // Figure 3 (in WN) is *not* fresh: D observes A although B ≺ D.
  const auto f3 = test::figure3_pair();
  EXPECT_TRUE(qdag_consistent(f3.c, f3.phi, DagPred::kWN));
  EXPECT_TRUE(wn_plus_consistent(f3.c, f3.phi));  // fresh: no ⊥ anywhere
  // Figure 4's pair has no ⊥ either, so it is fresh and in NN ⊆ WN.
  const auto w = figure4_witness();
  EXPECT_TRUE(wn_plus_consistent(w.c, w.phi));
  EXPECT_TRUE(NnPlusModel::instance()->contains(w.c, w.phi));
}

TEST(WnPlus, ConstructibilityStatusUpToBound) {
  // The experiment the model exists for: with the ⊥ escape closed, is
  // WN+ constructible? The search answers mechanically (see the fig4
  // bench for the headline run; here a smaller bound keeps tests fast).
  WitnessSearchOptions options;
  options.spec.max_nodes = 4;
  options.spec.nlocations = 1;
  options.spec.include_nop = false;
  const auto w =
      find_nonconstructibility_witness(*WnPlusModel::instance(), options);
  // The Figure-4 pair is fresh and in WN+; its stuck extension under NN
  // is NOT stuck under WN+'s weaker triple rule, but freshness forbids
  // the ⊥ answer, so only write-observing answers remain — which WN+'s
  // triple rule then constrains. The search decides:
  if (w.has_value()) {
    EXPECT_TRUE(validate_witness(*WnPlusModel::instance(), *w));
  }
  SUCCEED();  // status documented by the bench output either way
}

TEST(Separators, MinimalWwVsWnSeparatorIsFigure2Sized) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  // A pair in WW (weaker) but not WN (stronger): Figure-2-like.
  const auto sep = find_minimal_separator(*QDagModel::wn(), *QDagModel::ww(),
                                          spec);
  ASSERT_TRUE(sep.has_value());
  EXPECT_TRUE(QDagModel::ww()->contains(sep->c, sep->phi));
  EXPECT_FALSE(QDagModel::wn()->contains(sep->c, sep->phi));
  EXPECT_LE(sep->c.node_count(), 4u);
}

TEST(Separators, LcVsNnSeparatorMatchesFigure4Size) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  const auto sep = find_minimal_separator(
      *LocationConsistencyModel::instance(), *QDagModel::nn(), spec);
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->c.node_count(), 4u);  // the Figure-4 separator is minimal
}

TEST(Separators, NoneBetweenEqualModels) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  // SC = LC with one location.
  const auto sep = find_minimal_separator(
      *SequentialConsistencyModel::instance(),
      *LocationConsistencyModel::instance(), spec);
  EXPECT_FALSE(sep.has_value());
}

TEST(Completeness, StandardModelsAreComplete) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  for (const MemoryModel* m : std::initializer_list<const MemoryModel*>{
           SequentialConsistencyModel::instance().get(),
           LocationConsistencyModel::instance().get(),
           QDagModel::nn().get(), WnPlusModel::instance().get()}) {
    EXPECT_FALSE(find_incompleteness_witness(*m, spec).has_value())
        << m->name();
  }
}

TEST(Completeness, ArtificialIncompleteModelCaught) {
  // A model that rejects every pair whose computation has 2 nodes.
  const PredicateModel broken(
      "no-two-node", [](const Computation& c, const ObserverFunction& phi) {
        return c.node_count() != 2 && is_valid_observer(c, phi);
      });
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  const auto w = find_incompleteness_witness(broken, spec);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->node_count(), 2u);
}

}  // namespace
}  // namespace ccmm
