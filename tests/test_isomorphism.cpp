#include "enumerate/isomorphism.hpp"

#include <gtest/gtest.h>

#include "enumerate/sampling.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"
#include "models/examples.hpp"

namespace ccmm {
namespace {

TEST(Isomorphism, RelabeledComputationsAreIsomorphic) {
  // figure2 with nodes renamed: swap the two writes' ids (0 <-> 1).
  const auto p = examples::figure2();
  Dag g(4);
  g.add_edge(1, 2);  // was 0 -> 2
  g.add_edge(2, 3);
  const Computation renamed(
      g, {Op::write(0), Op::write(0), Op::read(0), Op::read(0)});
  EXPECT_TRUE(are_isomorphic(p.c, renamed));
  EXPECT_EQ(canonical_encoding(p.c), canonical_encoding(renamed));
}

TEST(Isomorphism, DifferentOpsAreNot) {
  ComputationBuilder a, b;
  a.write(0);
  a.read(0);
  b.write(0);
  b.write(0);
  EXPECT_FALSE(are_isomorphic(std::move(a).build(), std::move(b).build()));
}

TEST(Isomorphism, DifferentEdgesAreNot) {
  Dag g1(3), g2(3);
  g1.add_edge(0, 1);
  g2.add_edge(0, 1);
  g2.add_edge(1, 2);
  const std::vector<Op> ops(3, Op::nop());
  EXPECT_FALSE(are_isomorphic(Computation(g1, ops), Computation(g2, ops)));
}

TEST(Isomorphism, DifferentLocationsAreNot) {
  ComputationBuilder a, b;
  a.write(0);
  b.write(1);
  EXPECT_FALSE(are_isomorphic(std::move(a).build(), std::move(b).build()));
}

TEST(Isomorphism, ChainVsReversedChainIds) {
  // Ids reversed within a chain: same shape.
  Dag fwd(3), unsorted(3);
  fwd.add_edge(0, 1);
  fwd.add_edge(1, 2);
  unsorted.add_edge(2, 1);
  unsorted.add_edge(1, 0);
  const std::vector<Op> ops(3, Op::read(0));
  EXPECT_TRUE(
      are_isomorphic(Computation(fwd, ops), Computation(unsorted, ops)));
}

TEST(Isomorphism, UnlabeledDagCountsMatchOeisA003087) {
  // 1, 1, 2, 6, 31 unlabeled dags on 0..4 nodes.
  EXPECT_EQ(unlabeled_dag_count(0), 1u);
  EXPECT_EQ(unlabeled_dag_count(1), 1u);
  EXPECT_EQ(unlabeled_dag_count(2), 2u);
  EXPECT_EQ(unlabeled_dag_count(3), 6u);
  EXPECT_EQ(unlabeled_dag_count(4), 31u);
}

TEST(Isomorphism, ComputationClassesSmallerThanRawCounts) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  spec.include_nop = false;
  const std::uint64_t raw = computation_count(spec);
  const std::uint64_t classes = computation_count_up_to_iso(spec);
  EXPECT_LT(classes, raw);
  EXPECT_GT(classes, 0u);
  // Exact value is stable: 1 + 2 + (antichain 3 + chain 4) ... just pin
  // the measured census so regressions surface.
  EXPECT_EQ(raw, 1u + 2u + 2u * 4u + 8u * 8u);
}

TEST(Isomorphism, AllModelsAreIsomorphismInvariant) {
  // The soundness of enumerating only id-topologically-sorted dags rests
  // on every model being invariant under node relabeling. Check all six
  // on random instances with random permutations.
  Rng rng(42);
  for (int round = 0; round < 25; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const ObserverFunction phi = random_observer(c, rng);

    // Random permutation of node ids.
    std::vector<NodeId> perm(c.node_count());
    for (NodeId u = 0; u < c.node_count(); ++u) perm[u] = u;
    for (std::size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1], perm[rng.below(i)]);

    Dag rd(c.node_count());
    for (const auto& e : c.dag().edges())
      rd.add_edge(perm[e.from], perm[e.to]);
    std::vector<Op> rops(c.node_count());
    for (NodeId u = 0; u < c.node_count(); ++u) rops[perm[u]] = c.op(u);
    const Computation rc(rd, rops);
    ObserverFunction rphi(c.node_count());
    for (const Location l : phi.active_locations())
      for (NodeId u = 0; u < c.node_count(); ++u) {
        const NodeId v = phi.get(l, u);
        if (v != kBottom) rphi.set(l, perm[u], perm[v]);
      }

    EXPECT_EQ(sequentially_consistent(c, phi),
              sequentially_consistent(rc, rphi));
    EXPECT_EQ(location_consistent(c, phi), location_consistent(rc, rphi));
    for (const DagPred p :
         {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW})
      EXPECT_EQ(qdag_consistent(c, phi, p), qdag_consistent(rc, rphi, p))
          << dag_pred_name(p);
  }
}

TEST(Isomorphism, SizeLimitEnforced) {
  const Computation big(Dag(10), std::vector<Op>(10, Op::nop()));
  EXPECT_THROW((void)canonical_encoding(big), std::logic_error);
}

}  // namespace
}  // namespace ccmm
