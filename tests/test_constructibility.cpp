// Constructibility (Definition 6, Theorems 10/12/19) and the paper's
// Figure 4: NN, NW and WN are not constructible; WW, LC and SC are.
#include "construct/constructibility.hpp"

#include <gtest/gtest.h>

#include "construct/witness.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

WitnessSearchOptions small_options(std::size_t max_nodes,
                                   bool augment_only = false) {
  WitnessSearchOptions o;
  o.spec.max_nodes = max_nodes;
  o.spec.nlocations = 1;
  o.spec.include_nop = false;
  o.augment_only = augment_only;
  return o;
}

TEST(Constructibility, Figure4WitnessIsGenuine) {
  const NonconstructibilityWitness w = figure4_witness();
  EXPECT_TRUE(validate_witness(*QDagModel::nn(), w));
  // The witness pair is in NN but not in LC (it is the NN \ LC separator).
  EXPECT_TRUE(QDagModel::nn()->contains(w.c, w.phi));
  EXPECT_FALSE(location_consistent(w.c, w.phi));
  // The string rendering mentions the stuck extension's op.
  EXPECT_NE(w.to_string().find("R(0)"), std::string::npos);
}

TEST(Constructibility, Figure4WriteExtensionIsAnswerable) {
  // The paper: "unless F writes to the memory location, there is no way
  // to extend Φ". The write extension must NOT be stuck.
  const NonconstructibilityWitness w = figure4_witness();
  const Computation write_ext = w.c.extend(Op::write(0), {2, 3});
  NonconstructibilityWitness with_write{w.c, w.phi, write_ext};
  EXPECT_FALSE(validate_witness(*QDagModel::nn(), with_write));
}

TEST(Constructibility, NNWitnessFoundBySearch) {
  const auto w =
      find_nonconstructibility_witness(*QDagModel::nn(), small_options(4));
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(validate_witness(*QDagModel::nn(), *w));
  // Minimality: NN answers every extension of every pair with <= 3 nodes.
  const auto small =
      find_nonconstructibility_witness(*QDagModel::nn(), small_options(3));
  EXPECT_FALSE(small.has_value());
}

TEST(Constructibility, MinimalNNWitnessHasFourNodes) {
  const auto w = find_minimal_nonconstructibility_witness(*QDagModel::nn(),
                                                          small_options(4));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->c.node_count(), 4u);
}

TEST(Constructibility, WWHasNoWitnessUpToBound) {
  // WW is constructible (Figure 1); the search must come up empty.
  const auto w =
      find_nonconstructibility_witness(*QDagModel::ww(), small_options(4));
  EXPECT_FALSE(w.has_value()) << w->to_string();
}

TEST(Constructibility, Theorem19_LCConstructibleUpToBound) {
  const auto w = find_nonconstructibility_witness(
      *LocationConsistencyModel::instance(), small_options(4));
  EXPECT_FALSE(w.has_value()) << w->to_string();
}

TEST(Constructibility, Theorem19_SCConstructibleUpToBound) {
  const auto w = find_nonconstructibility_witness(
      *SequentialConsistencyModel::instance(), small_options(3));
  EXPECT_FALSE(w.has_value()) << w->to_string();
}

TEST(Constructibility, AugmentOnlySearchAgreesForMonotonicModels) {
  // Theorem 12: for monotonic models the augmentation test suffices.
  // NN (monotonic) must still be caught.
  const auto w = find_nonconstructibility_witness(
      *QDagModel::nn(), small_options(4, /*augment_only=*/true));
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(validate_witness(*QDagModel::nn(), *w));
  // WW / LC stay clean under the augmentation test too.
  EXPECT_FALSE(find_nonconstructibility_witness(
                   *QDagModel::ww(), small_options(4, true))
                   .has_value());
  EXPECT_FALSE(find_nonconstructibility_witness(
                   *LocationConsistencyModel::instance(),
                   small_options(4, true))
                   .has_value());
}

TEST(Constructibility, NWIsNotConstructible) {
  const auto wnw =
      find_nonconstructibility_witness(*QDagModel::nw(), small_options(4));
  ASSERT_TRUE(wnw.has_value());
  EXPECT_TRUE(validate_witness(*QDagModel::nw(), *wnw));
  // The Figure-4 pair is stuck under NW too (its violating middles are
  // the writes A and B, which NW's predicate accepts).
  const NonconstructibilityWitness fig4 = figure4_witness();
  EXPECT_TRUE(validate_witness(*QDagModel::nw(), fig4));
}

TEST(Constructibility, WNAnswersEveryExtensionWithBottomUpToBound) {
  // Formal consequence of Definition 20 that mechanization surfaces: the
  // WN premise requires u to be a write, and a write always observes
  // itself (2.3), never ⊥ — so valuing the appended node at ⊥ never
  // triggers a new WN triple. Hence the witness search over the exact
  // Def-20 semantics comes up empty (see EXPERIMENTS.md for discussion
  // of the paper's prose, which asserts WN nonconstructible for the
  // strengthened [BFJ+96a] variant).
  const auto w =
      find_nonconstructibility_witness(*QDagModel::wn(), small_options(4));
  EXPECT_FALSE(w.has_value()) << w->to_string();
}

TEST(Constructibility, Lemma7_UnionOfConstructibleModelsIsConstructible) {
  // LC and WW are both constructible; their union must be too.
  const PredicateModel union_model(
      "LC ∪ WW", [](const Computation& c, const ObserverFunction& phi) {
        return location_consistent(c, phi) ||
               qdag_consistent(c, phi, DagPred::kWW);
      });
  const auto w =
      find_nonconstructibility_witness(union_model, small_options(4));
  EXPECT_FALSE(w.has_value()) << w->to_string();
}

TEST(Constructibility, ValidateWitnessRejectsBogusWitnesses) {
  const NonconstructibilityWitness w = figure4_witness();
  // Wrong model: LC does not even contain the pair.
  EXPECT_FALSE(validate_witness(*LocationConsistencyModel::instance(), w));
  // Extension that is not an extension of c.
  NonconstructibilityWitness bogus = w;
  bogus.extension = w.c;
  EXPECT_FALSE(validate_witness(*QDagModel::nn(), bogus));
}

TEST(Constructibility, QuotientSearchAgreesWithLabeledSearch) {
  // The per-class scan must find a witness exactly when the labeled scan
  // does, of the same minimal size, and it must validate.
  WitnessSearchOptions labeled, quotient;
  labeled.spec.nlocations = quotient.spec.nlocations = 1;
  labeled.spec.include_nop = quotient.spec.include_nop = false;
  labeled.spec.max_nodes = quotient.spec.max_nodes = 4;
  labeled.quotient = false;
  quotient.quotient = true;

  struct Row {
    const MemoryModel* model;
    bool expect;
  };
  const auto nn = QDagModel::nn();
  const auto lc = LocationConsistencyModel::instance();
  for (const Row& row : {Row{nn.get(), true}, Row{lc.get(), false}}) {
    const auto a = find_nonconstructibility_witness(*row.model, labeled);
    const auto b = find_nonconstructibility_witness(*row.model, quotient);
    EXPECT_EQ(a.has_value(), row.expect);
    EXPECT_EQ(b.has_value(), row.expect);
    if (a.has_value() && b.has_value()) {
      EXPECT_EQ(a->c.node_count(), b->c.node_count());
      EXPECT_TRUE(validate_witness(*row.model, *b));
    }
  }
}

}  // namespace
}  // namespace ccmm
