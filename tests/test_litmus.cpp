// The classic litmus verdicts, decided computation-centrically: SC
// forbids the relaxed outcomes, coherence (= LC) allows all but CoRR.
#include "proc/litmus.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "models/qdag.hpp"

namespace ccmm::proc {
namespace {

TEST(Litmus, ClassicSuiteMatchesTextbookVerdicts) {
  for (const Litmus& t : classic_suite()) {
    const LitmusVerdict v = run_litmus(t);
    EXPECT_TRUE(v.matches_expectation)
        << t.name << ": SC " << v.sc_allowed << " (want " << t.sc_allowed
        << "), LC " << v.lc_allowed << " (want " << t.lc_allowed << ")";
  }
}

TEST(Litmus, SuiteCoversBothVerdictKinds) {
  std::size_t sc_forbidden = 0, lc_allowed_sc_forbidden = 0,
              both_forbidden = 0, both_allowed = 0;
  for (const Litmus& t : classic_suite()) {
    if (!t.sc_allowed) ++sc_forbidden;
    if (!t.sc_allowed && t.lc_allowed) ++lc_allowed_sc_forbidden;
    if (!t.sc_allowed && !t.lc_allowed) ++both_forbidden;
    if (t.sc_allowed && t.lc_allowed) ++both_allowed;
  }
  EXPECT_GE(sc_forbidden, 5u);
  EXPECT_GE(lc_allowed_sc_forbidden, 4u);  // SB, MP, LB, IRIW, WRC
  EXPECT_GE(both_forbidden, 2u);           // MP+sync, CoRR
  EXPECT_GE(both_allowed, 1u);             // CoRR-ok
}

TEST(Litmus, ObservationObserverPinsOnlyReads) {
  const Litmus sb = classic_suite().front();
  const ProgramComputation pc = unfold(sb.program);
  const ObserverFunction reads = observation_observer(sb, pc);
  // SB's observed reads both returned ⊥: the partial observer is empty,
  // but the *pinning* happens inside the completion search.
  EXPECT_TRUE(reads.active_locations().empty());
}

TEST(Litmus, ObservationValidation) {
  Litmus bad;
  bad.name = "bad";
  const Pos w = bad.program.add(0, Op::write(0));
  const Pos r = bad.program.add(0, Op::read(0));
  (void)r;
  bad.observed = {{w, std::nullopt}};  // attached to a write
  const ProgramComputation pc = unfold(bad.program);
  EXPECT_THROW((void)observation_observer(bad, pc), std::logic_error);
}

TEST(Litmus, SyncEdgeStrengthensMessagePassing) {
  // Directly: MP allowed under LC, MP+sync forbidden under LC.
  const auto suite = classic_suite();
  const auto mp = std::find_if(suite.begin(), suite.end(),
                               [](const Litmus& t) { return t.name == "MP"; });
  const auto mps =
      std::find_if(suite.begin(), suite.end(),
                   [](const Litmus& t) { return t.name == "MP+sync"; });
  ASSERT_NE(mp, suite.end());
  ASSERT_NE(mps, suite.end());
  EXPECT_TRUE(run_litmus(*mp).lc_allowed);
  EXPECT_FALSE(run_litmus(*mps).lc_allowed);
}

TEST(Litmus, WeakDagModelsAllowEvenCoRR) {
  // WW is so weak it admits the out-of-order CoRR outcome.
  const auto suite = classic_suite();
  const auto corr =
      std::find_if(suite.begin(), suite.end(),
                   [](const Litmus& t) { return t.name == "CoRR"; });
  ASSERT_NE(corr, suite.end());
  const ProgramComputation pc = unfold(corr->program);
  const ObserverFunction reads = observation_observer(*corr, pc);
  const auto ww = find_model_completion(pc.c, reads, *QDagModel::ww());
  EXPECT_TRUE(ww.completion.has_value());
}

}  // namespace
}  // namespace ccmm::proc
