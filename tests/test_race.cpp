#include "trace/race.hpp"

#include <gtest/gtest.h>

#include "enumerate/observer_enum.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(RaceDetector, EmptyAndTrivialComputations) {
  EXPECT_TRUE(is_race_free(Computation()));
  ComputationBuilder b;
  b.write(0);
  EXPECT_TRUE(is_race_free(std::move(b).build()));
}

TEST(RaceDetector, OrderedAccessesDoNotRace) {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  const NodeId r = b.read(0, {w});
  b.write(0, {r});
  EXPECT_TRUE(is_race_free(std::move(b).build()));
}

TEST(RaceDetector, ConcurrentReadersDoNotRace) {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  b.read(0, {w});
  EXPECT_TRUE(is_race_free(std::move(b).build()));
}

TEST(RaceDetector, DetectsWriteWriteAndReadWrite) {
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  b.read(0);
  const Computation c = std::move(b).build();
  const auto races = find_races(c);
  ASSERT_EQ(races.size(), 3u);
  EXPECT_EQ(races[0].kind, RaceKind::kWriteWrite);  // (0,1)
  EXPECT_EQ(races[1].kind, RaceKind::kReadWrite);   // (0,2)
  EXPECT_EQ(races[2].kind, RaceKind::kReadWrite);   // (1,2)
  for (const auto& r : races) EXPECT_LT(r.a, r.b);
}

TEST(RaceDetector, DifferentLocationsDoNotRace) {
  ComputationBuilder b;
  b.write(0);
  b.write(1);
  EXPECT_TRUE(is_race_free(std::move(b).build()));
}

TEST(RaceDetector, Figure4CoreHasRaces) {
  // The nonconstructibility witness is racy — as the theory predicts,
  // since race-free computations cannot separate the models.
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  const Computation c = std::move(b).build();
  EXPECT_FALSE(is_race_free(c));
}

// The determinacy property underlying "race-free programs see one
// memory": on a race-free computation, every NN-consistent observer
// function maps each read to the unique last writer that precedes it —
// reads are deterministic under the strongest dag model. (WW famously
// does NOT force this — the anomaly the paper's lineage kept fixing —
// which the second block checks on the 2-leaf reduction.)
TEST(RaceDetector, RaceFreeReadsAreDeterministicUnderNN) {
  // Exhaustive on the 2-leaf reduction (the full observer space of the
  // 4-leaf one is astronomically large; it is covered by sampling below).
  const Computation c = workload::reduction(2);
  ASSERT_TRUE(is_race_free(c));
  std::size_t nn_members = 0;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    if (!qdag_consistent(c, phi, DagPred::kNN)) return true;
    ++nn_members;
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      if (!o.is_read()) continue;
      const auto ws = c.writers(o.loc);
      EXPECT_EQ(ws.size(), 1u);  // reduction: one writer per location
      if (ws.size() == 1) {
        EXPECT_EQ(phi.get(o.loc, u), ws[0]);
      }
    }
    return true;
  });
  EXPECT_GE(nn_members, 1u);
}

TEST(RaceDetector, RaceFreeReadsAreDeterministicUnderNNSampled) {
  // Randomized version on the larger reduction: draw random valid
  // observer functions; whenever one is NN-consistent, its reads must
  // observe their producers.
  const Computation c = workload::reduction(4);
  ASSERT_TRUE(is_race_free(c));
  Rng rng(99);
  std::size_t nn_members = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    ObserverFunction phi(c.node_count());
    for (const Location l : c.written_locations()) {
      const auto ws = c.writers(l);
      for (NodeId u = 0; u < c.node_count(); ++u) {
        if (c.op(u).writes(l)) {
          phi.set(l, u, u);
          continue;
        }
        // Random choice among {⊥} ∪ admissible writers (condition 2.2).
        std::vector<NodeId> choices{kBottom};
        for (const NodeId w : ws)
          if (!c.precedes(u, w)) choices.push_back(w);
        phi.set(l, u, choices[rng.below(choices.size())]);
      }
    }
    if (!qdag_consistent(c, phi, DagPred::kNN)) continue;
    ++nn_members;
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      if (!o.is_read()) continue;
      EXPECT_EQ(phi.get(o.loc, u), c.writers(o.loc)[0]);
    }
  }
  // The all-last-writer observer arises with tiny probability; accept 0
  // members from random draws but also inject the canonical member.
  const ObserverFunction lw =
      last_writer(c, c.dag().topological_order());
  EXPECT_TRUE(qdag_consistent(c, lw, DagPred::kNN));
  (void)nn_members;
}

TEST(RaceDetector, WWDoesNotForceDeterministicReads) {
  const Computation c = workload::reduction(2);
  bool found_stale_read = false;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    if (!qdag_consistent(c, phi, DagPred::kWW)) return true;
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      if (o.is_read() && phi.get(o.loc, u) == kBottom)
        found_stale_read = true;
    }
    return !found_stale_read;
  });
  EXPECT_TRUE(found_stale_read);
}

TEST(RaceDetector, RacesSortedAndComplete) {
  const Computation c = workload::contended_counter(3);
  const auto races = find_races(c);
  for (std::size_t i = 1; i < races.size(); ++i) {
    EXPECT_TRUE(races[i - 1].a < races[i].a ||
                (races[i - 1].a == races[i].a && races[i - 1].b <= races[i].b));
  }
}

}  // namespace
}  // namespace ccmm
