// Lock-augmented computations: mutual exclusion as quantification over
// critical-section serializations (the paper's Section 7 direction).
#include "proc/locks.hpp"

#include <gtest/gtest.h>

#include "models/location_consistency.hpp"
#include "models/sequential_consistency.hpp"
#include "proc/program.hpp"

namespace ccmm::proc {
namespace {

/// Two lock-protected increments of one counter plus a final read.
/// Returns the computation, the two sections, and key node ids.
struct IncrementFixture {
  LockedComputation lc;
  NodeId init, r1, w1, r2, w2, fin;
};

IncrementFixture make_increments() {
  IncrementFixture f;
  ComputationBuilder b;
  f.init = b.write(0);
  f.r1 = b.read(0, {f.init});
  f.w1 = b.write(0, {f.r1});
  f.r2 = b.read(0, {f.init});
  f.w2 = b.write(0, {f.r2});
  f.fin = b.read(0, {f.w1, f.w2});
  f.lc.c = std::move(b).build();
  f.lc.sections = {{0, {f.r1, f.w1}}, {0, {f.r2, f.w2}}};
  return f;
}

ObserverFunction lost_update(const IncrementFixture& f) {
  // Both increments read the initial value — the race the lock forbids.
  ObserverFunction phi(f.lc.c.node_count());
  phi.set(0, f.init, f.init);
  phi.set(0, f.r1, f.init);
  phi.set(0, f.w1, f.w1);
  phi.set(0, f.r2, f.init);
  phi.set(0, f.w2, f.w2);
  phi.set(0, f.fin, f.w2);
  return phi;
}

ObserverFunction serialized_update(const IncrementFixture& f) {
  // Section 1 then section 2: r2 sees w1.
  ObserverFunction phi(f.lc.c.node_count());
  phi.set(0, f.init, f.init);
  phi.set(0, f.r1, f.init);
  phi.set(0, f.w1, f.w1);
  phi.set(0, f.r2, f.w1);
  phi.set(0, f.w2, f.w2);
  phi.set(0, f.fin, f.w2);
  return phi;
}

TEST(Locks, SerializationEnumerationCountsOrders) {
  const IncrementFixture f = make_increments();
  std::size_t n = 0;
  for_each_serialization(f.lc, [&](const Computation& c) {
    EXPECT_TRUE(c.dag().is_acyclic());
    // Mutual exclusion: the two sections are now ordered.
    EXPECT_TRUE(c.precedes(f.w1, f.r2) || c.precedes(f.w2, f.r1));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 2u);  // two orders of the two sections
}

TEST(Locks, LostUpdateForbiddenUnderLockAwareSC) {
  const IncrementFixture f = make_increments();
  const ObserverFunction bad = lost_update(f);
  // Without locks the lost update is perfectly SC...
  EXPECT_TRUE(SequentialConsistencyModel::instance()->contains(f.lc.c, bad));
  // ...but no serialization of the critical sections admits it.
  EXPECT_FALSE(lock_aware_contains(*SequentialConsistencyModel::instance(),
                                   f.lc, bad));
  EXPECT_FALSE(lock_aware_contains(*LocationConsistencyModel::instance(),
                                   f.lc, bad));
}

TEST(Locks, SerializedUpdateAllowed) {
  const IncrementFixture f = make_increments();
  const ObserverFunction good = serialized_update(f);
  EXPECT_TRUE(lock_aware_contains(*SequentialConsistencyModel::instance(),
                                  f.lc, good));
}

TEST(Locks, LockAwareModelObject) {
  const IncrementFixture f = make_increments();
  const LockAwareModel model(SequentialConsistencyModel::instance(),
                             f.lc.sections);
  EXPECT_EQ(model.name(), "SC+locks");
  EXPECT_FALSE(model.contains(f.lc.c, lost_update(f)));
  EXPECT_TRUE(model.contains(f.lc.c, serialized_update(f)));
}

TEST(Locks, IndependentLocksDoNotSerializeEachOther) {
  // Two sections under *different* locks stay concurrent.
  ComputationBuilder b;
  const NodeId a = b.write(0);
  const NodeId c = b.write(1);
  LockedComputation lc{std::move(b).build(), {{0, {a}}, {1, {c}}}};
  std::size_t n = 0;
  for_each_serialization(lc, [&](const Computation& s) {
    EXPECT_FALSE(s.precedes(a, c) || s.precedes(c, a));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);  // singleton groups: exactly one serialization
}

TEST(Locks, InfeasibleOrdersAreSkipped) {
  // Sections already ordered by the dag: only one serialization is
  // acyclic.
  ComputationBuilder b;
  const NodeId a = b.write(0);
  const NodeId c = b.write(0, {a});
  LockedComputation lc{std::move(b).build(), {{0, {a}}, {0, {c}}}};
  std::size_t n = 0;
  for_each_serialization(lc, [&](const Computation&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(Locks, ThreeSectionsSixOrders) {
  ComputationBuilder b;
  const NodeId a = b.write(0);
  const NodeId c = b.write(0);
  const NodeId d = b.write(0);
  LockedComputation lc{std::move(b).build(), {{0, {a}}, {0, {c}}, {0, {d}}}};
  std::size_t n = 0;
  for_each_serialization(lc, [&](const Computation&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 6u);
}

TEST(Locks, ValidationRejectsBadSections) {
  ComputationBuilder b;
  const NodeId a = b.write(0);
  const Computation c = std::move(b).build();
  // Node in two sections of the same lock.
  LockedComputation dup{c, {{0, {a}}, {0, {a}}}};
  EXPECT_THROW(for_each_serialization(
                   dup, [](const Computation&) { return true; }),
               std::logic_error);
  // Empty section.
  LockedComputation empty{c, {{0, {}}}};
  EXPECT_THROW(for_each_serialization(
                   empty, [](const Computation&) { return true; }),
               std::logic_error);
  // Out-of-range node.
  LockedComputation oor{c, {{0, {7}}}};
  EXPECT_THROW(for_each_serialization(
                   oor, [](const Computation&) { return true; }),
               std::logic_error);
}

}  // namespace
}  // namespace ccmm::proc
