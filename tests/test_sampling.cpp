#include "enumerate/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "enumerate/observer_enum.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(Sampling, RandomObserversAreValid) {
  Rng rng(1);
  for (int round = 0; round < 30; ++round) {
    const Dag d = gen::random_dag(8, 0.25, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    for (int i = 0; i < 10; ++i) {
      const ObserverFunction phi = random_observer(c, rng);
      const auto v = validate_observer(c, phi);
      EXPECT_TRUE(v.ok) << v.reason;
    }
  }
}

TEST(Sampling, RandomObserversCoverTheSpace) {
  // On a small computation the sampler must hit every valid observer.
  ComputationBuilder b;
  const NodeId w1 = b.write(0);
  const NodeId w2 = b.write(0);
  b.read(0, {w1, w2});
  const Computation c = std::move(b).build();
  ASSERT_EQ(observer_count(c), 3u);
  Rng rng(2);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(random_observer(c, rng).hash());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Sampling, RandomComputationsRespectTheSpec) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 2;
  spec.include_nop = false;
  spec.max_writes_per_location = 1;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Computation c = random_computation(spec, rng);
    EXPECT_LE(c.node_count(), 4u);
    std::vector<std::size_t> writes(2, 0);
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      EXPECT_FALSE(o.is_nop());
      EXPECT_LT(o.loc, 2u);
      if (o.is_write()) ++writes[o.loc];
    }
    EXPECT_LE(writes[0], 1u);
    EXPECT_LE(writes[1], 1u);
  }
}

TEST(Sampling, RandomComputationsCoverSizes) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  Rng rng(4);
  std::set<std::size_t> sizes;
  for (int i = 0; i < 300; ++i)
    sizes.insert(random_computation(spec, rng).node_count());
  // Size 3 dominates the raw space, but 2 should appear as well.
  EXPECT_TRUE(sizes.count(3));
  EXPECT_TRUE(sizes.count(2));
}

TEST(Sampling, DensityMatchesExhaustiveCount) {
  // On a computation small enough to enumerate, the Monte-Carlo density
  // must converge to the true ratio.
  const auto p = test::figure2_pair();
  const Computation& c = p.c;
  std::size_t members = 0, total = 0;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    ++total;
    members += qdag_consistent(c, phi, DagPred::kWN) ? 1 : 0;
    return true;
  });
  const double truth =
      static_cast<double>(members) / static_cast<double>(total);

  Rng rng(5);
  const auto est =
      estimate_density(*QDagModel::wn(), c, 4000, rng);
  EXPECT_NEAR(est.density, truth, 0.05);
  EXPECT_EQ(est.samples, 4000u);
}

TEST(Sampling, ParallelCountMatchesSerial) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  const auto universe = build_universe(spec);
  const auto lc = LocationConsistencyModel::instance();
  std::size_t serial = 0;
  for (const auto& pr : universe)
    serial += lc->contains(pr.c, pr.phi) ? 1 : 0;
  ThreadPool pool(4);
  EXPECT_EQ(parallel_member_count(*lc, universe, pool), serial);
}

}  // namespace
}  // namespace ccmm
