#include "core/computation.hpp"

#include <gtest/gtest.h>

namespace ccmm {
namespace {

TEST(Op, Predicates) {
  EXPECT_TRUE(Op::read(3).reads(3));
  EXPECT_FALSE(Op::read(3).reads(4));
  EXPECT_TRUE(Op::write(3).writes(3));
  EXPECT_FALSE(Op::write(3).reads(3));
  EXPECT_TRUE(Op::nop().is_nop());
  EXPECT_TRUE(Op::read(2).accesses(2));
  EXPECT_FALSE(Op::nop().accesses(0));
}

TEST(Op, ToString) {
  EXPECT_EQ(Op::nop().to_string(), "N");
  EXPECT_EQ(Op::read(1).to_string(), "R(1)");
  EXPECT_EQ(Op::write(0).to_string(), "W(0)");
}

TEST(Op, Alphabet) {
  const auto a = op_alphabet(2);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0], Op::nop());
  EXPECT_EQ(a[1], Op::read(0));
  EXPECT_EQ(a[2], Op::write(0));
  EXPECT_EQ(a[3], Op::read(1));
  EXPECT_EQ(a[4], Op::write(1));
}

TEST(Computation, EmptyComputation) {
  const Computation c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.node_count(), 0u);
  EXPECT_TRUE(c.written_locations().empty());
}

TEST(Computation, BuilderAndAccessors) {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  const NodeId r = b.read(0, {w});
  const NodeId n = b.nop({r});
  const Computation c = std::move(b).build();
  EXPECT_EQ(c.node_count(), 3u);
  EXPECT_EQ(c.op(w), Op::write(0));
  EXPECT_EQ(c.op(r), Op::read(0));
  EXPECT_EQ(c.op(n), Op::nop());
  EXPECT_TRUE(c.precedes(w, n));
  EXPECT_EQ(c.writers(0), std::vector<NodeId>{w});
  EXPECT_EQ(c.readers(0), std::vector<NodeId>{r});
  EXPECT_EQ(c.written_locations(), std::vector<Location>{0});
}

TEST(Computation, AddNodeRejectsForwardPreds) {
  Computation c;
  c.add_node(Op::nop());
  EXPECT_THROW(c.add_node(Op::nop(), {5}), std::logic_error);
}

TEST(Computation, RejectsCyclicDag) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  EXPECT_THROW(Computation(d, {Op::nop(), Op::nop()}), std::logic_error);
}

TEST(Computation, RejectsSizeMismatch) {
  EXPECT_THROW(Computation(Dag(2), {Op::nop()}), std::logic_error);
}

TEST(Computation, PrefixSemantics) {
  ComputationBuilder b;
  const NodeId x = b.write(0);
  const NodeId y = b.read(0, {x});
  const Computation small = std::move(b).build();

  Computation big = small;
  big.add_node(Op::nop(), {y});
  EXPECT_TRUE(small.is_prefix_of(big));
  EXPECT_TRUE(big.is_prefix_of(big));
  EXPECT_FALSE(big.is_prefix_of(small));

  // Downward closure: an edge from the new node back into the prefix
  // cannot arise with add_node, but a mismatched op or edge set breaks
  // prefix-ness.
  ComputationBuilder b2;
  b2.write(1);  // different op at node 0
  b2.read(0, {0});
  const Computation other = std::move(b2).build();
  EXPECT_FALSE(other.is_prefix_of(big));

  // Missing induced edge: prefix must inherit x -> y.
  Computation no_edge;
  no_edge.add_node(Op::write(0));
  no_edge.add_node(Op::read(0));
  EXPECT_FALSE(no_edge.is_prefix_of(big));
}

TEST(Computation, EmptyIsPrefixOfEverything) {
  const Computation empty;
  Computation c;
  c.add_node(Op::write(0));
  EXPECT_TRUE(empty.is_prefix_of(c));
  EXPECT_TRUE(empty.is_prefix_of(empty));
}

TEST(Computation, RelaxationSemantics) {
  ComputationBuilder b;
  const NodeId x = b.write(0);
  const NodeId y = b.read(0, {x});
  b.nop({y});
  const Computation full = std::move(b).build();

  Dag fewer(3);
  fewer.add_edge(0, 1);
  const Computation relaxed(fewer, full.ops());
  EXPECT_TRUE(relaxed.is_relaxation_of(full));
  EXPECT_FALSE(full.is_relaxation_of(relaxed));

  const Computation different_ops(fewer,
                                  {Op::write(1), Op::read(0), Op::nop()});
  EXPECT_FALSE(different_ops.is_relaxation_of(full));
}

TEST(Computation, ExtendAppendsOneNode) {
  Computation c;
  c.add_node(Op::write(0));
  const Computation ext = c.extend(Op::read(0), {0});
  EXPECT_EQ(ext.node_count(), 2u);
  EXPECT_TRUE(c.is_prefix_of(ext));
  EXPECT_TRUE(ext.precedes(0, 1));
  EXPECT_EQ(c.node_count(), 1u);  // original untouched
}

TEST(Computation, AugmentSucceedsAllNodes) {
  ComputationBuilder b;
  b.write(0);
  b.read(0);
  b.nop();
  const Computation c = std::move(b).build();
  const Computation aug = c.augment(Op::read(0));
  EXPECT_EQ(aug.node_count(), 4u);
  const NodeId f = c.final_node_id();
  EXPECT_EQ(f, 3u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_TRUE(aug.precedes(u, f));
  EXPECT_TRUE(c.is_prefix_of(aug));
  // Any extension by the same op is a relaxation of the augmentation.
  const Computation ext = c.extend(Op::read(0), {1});
  EXPECT_TRUE(ext.is_relaxation_of(aug));
}

TEST(Computation, InducedSubcomputation) {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  const NodeId r = b.read(0, {w});
  b.nop({r});
  const Computation c = std::move(b).build();
  DynBitset keep(3);
  keep.set(w);
  keep.set(r);
  std::vector<NodeId> map;
  const Computation sub = c.induced(keep, &map);
  EXPECT_EQ(sub.node_count(), 2u);
  EXPECT_EQ(sub.op(0), Op::write(0));
  EXPECT_EQ(sub.op(1), Op::read(0));
  EXPECT_TRUE(sub.precedes(0, 1));
  EXPECT_TRUE(sub.is_prefix_of(c));  // downward-closed induced = prefix
}

TEST(Computation, AccessedVsWrittenLocations) {
  ComputationBuilder b;
  b.write(2);
  b.read(5);
  b.nop();
  const Computation c = std::move(b).build();
  EXPECT_EQ(c.written_locations(), std::vector<Location>{2});
  EXPECT_EQ(c.accessed_locations(), (std::vector<Location>{2, 5}));
}

}  // namespace
}  // namespace ccmm
