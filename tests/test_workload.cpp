#include "exec/workload.hpp"

#include <gtest/gtest.h>

#include "trace/race.hpp"

namespace ccmm {
namespace {

TEST(Workload, RandomOpsRespectsFractions) {
  Rng rng(1);
  const Dag d = gen::antichain(1000);
  const Computation c = workload::random_ops(d, 4, 0.5, 0.3, rng);
  std::size_t reads = 0, writes = 0, nops = 0;
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    reads += o.is_read();
    writes += o.is_write();
    nops += o.is_nop();
    if (!o.is_nop()) {
      EXPECT_LT(o.loc, 4u);
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / 1000, 0.5, 0.06);
  EXPECT_NEAR(static_cast<double>(writes) / 1000, 0.3, 0.06);
  EXPECT_NEAR(static_cast<double>(nops) / 1000, 0.2, 0.06);
}

TEST(Workload, RandomOpsValidatesArguments) {
  Rng rng(2);
  const Dag d = gen::antichain(3);
  EXPECT_THROW((void)workload::random_ops(d, 0, 0.5, 0.3, rng),
               std::logic_error);
  EXPECT_THROW((void)workload::random_ops(d, 1, 0.8, 0.4, rng),
               std::logic_error);
}

TEST(Workload, ReductionIsRaceFree) {
  for (const std::size_t leaves : {1u, 2u, 5u, 8u, 16u}) {
    const Computation c = workload::reduction(leaves);
    EXPECT_TRUE(is_race_free(c)) << leaves;
    EXPECT_TRUE(c.dag().is_acyclic());
  }
}

TEST(Workload, ReductionShape) {
  const Computation c = workload::reduction(4);
  // 4 leaves + 3 combines × (2 reads + 1 write) = 13 nodes.
  EXPECT_EQ(c.node_count(), 13u);
  // Every location written exactly once.
  for (const Location l : c.written_locations())
    EXPECT_EQ(c.writers(l).size(), 1u);
  // Every read's location has a writer preceding it.
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (!o.is_read()) continue;
    const auto ws = c.writers(o.loc);
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_TRUE(c.precedes(ws[0], u));
  }
}

TEST(Workload, StencilIsRaceFree) {
  for (const auto& [w, s] :
       std::initializer_list<std::pair<std::size_t, std::size_t>>{
           {1, 2}, {3, 3}, {5, 4}, {8, 2}}) {
    const Computation c = workload::stencil(w, s);
    EXPECT_TRUE(is_race_free(c)) << w << "x" << s;
  }
}

TEST(Workload, StencilUsesDoubleBuffer) {
  const Computation c = workload::stencil(4, 3);
  const auto locs = c.accessed_locations();
  EXPECT_LE(locs.size(), 8u);  // two buffers of four
}

TEST(Workload, ContendedCounterIsMaximallyRacy) {
  const Computation c = workload::contended_counter(4);
  const auto races = find_races(c);
  EXPECT_FALSE(races.empty());
  // All increments race pairwise: 4 writes × (reads + writes of others).
  std::size_t ww = 0;
  for (const auto& r : races)
    if (r.kind == RaceKind::kWriteWrite) ++ww;
  EXPECT_EQ(ww, 6u);  // C(4,2) write/write races
}

TEST(Workload, MatmulIsRaceFreeAndWellShaped) {
  for (const std::size_t n : {1u, 2u, 3u}) {
    const Computation c = workload::matmul(n);
    // 2n^2 input writes + n^2 chains of (1 zero-write + 4n nodes).
    EXPECT_EQ(c.node_count(), 2 * n * n + n * n * (1 + 4 * n)) << n;
    EXPECT_TRUE(is_race_free(c)) << n;
    EXPECT_TRUE(c.dag().is_acyclic());
  }
}

TEST(Workload, MatmulReadsSeeTheirProducers) {
  const Computation c = workload::matmul(2);
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (!o.is_read()) continue;
    // Race-free: exactly one writer of the location precedes each read
    // maximally (the chain guarantees a unique latest one).
    bool has_preceding_writer = false;
    for (const NodeId w : c.writers(o.loc))
      if (c.precedes(w, u)) has_preceding_writer = true;
    EXPECT_TRUE(has_preceding_writer) << u;
  }
}

TEST(Workload, ForkJoinArrayShape) {
  const Computation c = workload::fork_join_array(2, 3, 4);
  EXPECT_TRUE(c.dag().is_acyclic());
  EXPECT_FALSE(c.written_locations().empty());
  // Scaffolding nodes (source fork / final join) are nops.
  EXPECT_TRUE(c.op(c.dag().sources()[0]).is_nop());
  EXPECT_TRUE(c.op(c.dag().sinks()[0]).is_nop());
}

}  // namespace
}  // namespace ccmm
