// The static-analysis subsystem: SP-bags race detection (differential
// against the pairwise engine on randomized series-parallel programs),
// the diagnostics framework, the model-anomaly classifier, and the
// race-engine dispatch in trace/race.hpp.
#include "analyze/passes.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/anomaly.hpp"
#include "analyze/sp_bags.hpp"
#include "helpers.hpp"
#include "proc/cilk.hpp"
#include "proc/random_program.hpp"
#include "trace/race.hpp"

namespace ccmm {
namespace {

using analyze::find_races_sp;
using analyze::has_race_sp;
using proc::CilkProgram;
using proc::RandomCilkOptions;
using proc::random_cilk;

// ---------------------------------------------------------------------
// SP structure plumbing.

TEST(SpStructure, CilkProgramsCarryTheirParse) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto child = main.spawn();
  child.read(0);
  const Computation c = p.finish();
  ASSERT_NE(c.sp_structure(), nullptr);
  EXPECT_EQ(c.sp_structure()->node_count, c.node_count());
  EXPECT_GE(c.sp_structure()->strands.size(), 2u);
}

TEST(SpStructure, MutationDropsTheParse) {
  CilkProgram p;
  p.root().write(0);
  Computation c = p.finish();
  ASSERT_NE(c.sp_structure(), nullptr);
  c.add_node(Op::read(0), {0});
  EXPECT_EQ(c.sp_structure(), nullptr);
}

TEST(SpStructure, DerivedComputationsDropTheParse) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto child = main.spawn();
  child.write(0);
  const Computation c = p.finish();
  EXPECT_EQ(c.extend(Op::read(0), {}).sp_structure(), nullptr);
  EXPECT_EQ(c.augment(Op::nop()).sp_structure(), nullptr);
}

TEST(SpStructure, MismatchedStructureRejected) {
  CilkProgram p;
  p.root().write(0);
  const Computation c = p.finish();
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  Computation other = std::move(b).build();
  EXPECT_THROW(other.set_sp_structure(c.sp_structure()), std::logic_error);
}

TEST(SpStructure, DetectorRequiresStructure) {
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  const Computation c = std::move(b).build();
  EXPECT_THROW((void)find_races_sp(c), std::logic_error);
  EXPECT_THROW((void)has_race_sp(c), std::logic_error);
}

// ---------------------------------------------------------------------
// SP-bags vs pairwise: adversarial edge cases.

TEST(SpBags, EmptyProgram) {
  CilkProgram p;
  const Computation c = p.finish();
  EXPECT_EQ(c.node_count(), 0u);
  ASSERT_NE(c.sp_structure(), nullptr);
  EXPECT_TRUE(find_races_sp(c).empty());
  EXPECT_FALSE(has_race_sp(c));
}

TEST(SpBags, SingleNode) {
  CilkProgram p;
  p.root().write(0);
  const Computation c = p.finish();
  EXPECT_TRUE(find_races_sp(c).empty());
  EXPECT_FALSE(has_race_sp(c));
}

TEST(SpBags, AllReadsNeverRace) {
  CilkProgram p;
  auto main = p.root();
  for (int i = 0; i < 6; ++i) {
    auto child = main.spawn();
    child.read(0).read(1).read(0);
  }
  main.sync();
  const Computation c = p.finish();
  EXPECT_TRUE(find_races_sp(c).empty());
  EXPECT_FALSE(has_race_sp(c));
  EXPECT_TRUE(find_races_pairwise(c).empty());
}

TEST(SpBags, WriteOnlyFanOutRacesCompletely) {
  // k parallel writers to one location: all C(k,2) pairs race.
  constexpr std::size_t k = 7;
  CilkProgram p;
  auto main = p.root();
  for (std::size_t i = 0; i < k; ++i) {
    auto child = main.spawn();
    child.write(0);
  }
  main.sync();
  const Computation c = p.finish();
  const auto sp = find_races_sp(c);
  EXPECT_EQ(sp.size(), k * (k - 1) / 2);
  for (const Race& r : sp) EXPECT_EQ(r.kind, RaceKind::kWriteWrite);
  EXPECT_EQ(sp, find_races_pairwise(c));
  EXPECT_TRUE(has_race_sp(c));
}

TEST(SpBags, SyncSerializesAndAdoptIsSerial) {
  // Increments serialized by sync: race-free.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto a = main.spawn();
  a.read(0).write(0);
  main.sync();
  auto b = main.spawn();
  b.read(0).write(0);
  main.sync();
  const Computation c = p.finish();
  EXPECT_TRUE(find_races_sp(c).empty());
  EXPECT_FALSE(has_race_sp(c));

  // A plain call is serial with the caller on both sides.
  CilkProgram q;
  auto qm = q.root();
  qm.write(0);
  auto callee = qm.spawn();
  callee.read(0).write(0);
  qm.adopt(callee);
  qm.read(0);
  const Computation d = q.finish();
  EXPECT_TRUE(find_races_sp(d).empty());
}

TEST(SpBags, OutstandingSpawnRacesWithAdoptedCall) {
  // A spawned child stays parallel across a later plain call: the
  // callee's accesses race with the child's, but not with the caller's.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto forked = main.spawn();
  forked.write(1);
  auto callee = main.spawn();
  callee.write(1);
  main.adopt(callee);
  main.read(1);  // serial after the callee, parallel with forked
  main.sync();
  const Computation c = p.finish();
  const auto sp = find_races_sp(c);
  EXPECT_EQ(sp, find_races_pairwise(c));
  // forked's W(1) races with the callee's W(1) and with the caller's
  // post-call R(1); the callee/caller pair is serial.
  EXPECT_EQ(sp.size(), 2u);
  EXPECT_TRUE(has_race_sp(c));
}

TEST(SpBags, AdoptAfterCallerMovedRejected) {
  CilkProgram p;
  auto main = p.root();
  auto callee = main.spawn();
  callee.write(0);
  main.write(1);  // the caller may not run while a plain call is out
  EXPECT_THROW(main.adopt(callee), std::logic_error);
}

TEST(SpBags, ClosedStrandsRejectUse) {
  CilkProgram p;
  auto main = p.root();
  auto child = main.spawn();
  child.write(0);
  main.sync();
  EXPECT_THROW(child.write(1), std::logic_error);
  EXPECT_THROW((void)child.spawn(), std::logic_error);
}

TEST(SpBags, DeepSpawnSpineDoesNotOverflow) {
  // 2000-deep spawn chain, each strand writing its own location:
  // race-free; exercises the iterative replay.
  CilkProgram p;
  std::vector<CilkProgram::Strand> chain{p.root()};
  for (Location i = 0; i < 2000; ++i) {
    chain.back().write(i);
    chain.push_back(chain.back().spawn());
  }
  chain.back().write(2000);
  const Computation c = p.finish();
  EXPECT_TRUE(find_races_sp(c).empty());
  EXPECT_FALSE(has_race_sp(c));
}

// ---------------------------------------------------------------------
// Differential property test: the two engines agree exactly.

TEST(SpBagsDifferential, AgreesWithPairwiseOnRandomPrograms) {
  Rng rng(2026);
  std::size_t total_races = 0;
  std::size_t racy = 0;
  for (int trial = 0; trial < 1200; ++trial) {
    RandomCilkOptions options;
    options.target_ops = 1 + rng.below(80);
    options.nlocations = 1 + rng.below(8);
    options.spawn_prob = 0.05 + rng.uniform() * 0.30;
    options.call_prob = rng.uniform() * 0.15;
    options.sync_prob = rng.uniform() * 0.25;
    options.write_prob = 0.2 + rng.uniform() * 0.6;
    const Computation c = random_cilk(options, rng);
    ASSERT_NE(c.sp_structure(), nullptr);
    const auto sp = find_races_sp(c);
    const auto pw = find_races_pairwise(c);
    ASSERT_EQ(sp, pw) << "trial " << trial << "\n" << c.to_string();
    ASSERT_EQ(has_race_sp(c), !pw.empty()) << "trial " << trial;
    total_races += sp.size();
    racy += sp.empty() ? 0 : 1;
  }
  // The family must actually exercise both racy and race-free regimes.
  EXPECT_GT(total_races, 1000u);
  EXPECT_GT(racy, 100u);
  EXPECT_LT(racy, 1200u);
}

TEST(SpBagsDifferential, DispatchUsesSpEngine) {
  Rng rng(7);
  RandomCilkOptions options;
  options.target_ops = 40;
  const Computation c = random_cilk(options, rng);
  // find_races / has_race route through SP-bags when the parse is
  // attached and must agree with the pairwise engine either way.
  EXPECT_EQ(find_races(c), find_races_pairwise(c));
  EXPECT_EQ(has_race(c), !find_races_pairwise(c).empty());
  EXPECT_EQ(is_race_free(c), find_races_pairwise(c).empty());
}

// ---------------------------------------------------------------------
// Witness shrinking.

TEST(Anomaly, WitnessIsDownwardClosedAndKeepsTheRace) {
  Rng rng(11);
  RandomCilkOptions options;
  options.target_ops = 50;
  options.nlocations = 2;
  options.write_prob = 0.7;
  for (int trial = 0; trial < 50; ++trial) {
    const Computation c = random_cilk(options, rng);
    for (const Race& r : find_races_sp(c)) {
      NodeId wa = kBottom;
      NodeId wb = kBottom;
      const Computation w = analyze::race_witness(c, r.a, r.b, &wa, &wb);
      ASSERT_LT(wa, w.node_count());
      ASSERT_LT(wb, w.node_count());
      EXPECT_EQ(w.op(wa), c.op(r.a));
      EXPECT_EQ(w.op(wb), c.op(r.b));
      // Still incomparable: the witness preserves the race.
      EXPECT_FALSE(w.precedes(wa, wb));
      EXPECT_FALSE(w.precedes(wb, wa));
      EXPECT_LE(w.node_count(), c.node_count());
    }
  }
}

// ---------------------------------------------------------------------
// Model-anomaly classification.

TEST(Anomaly, UnobservedWriteWriteRaceLeavesModelsAgreeing) {
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  const Computation c = std::move(b).build();
  const auto races = find_races_pairwise(c);
  ASSERT_EQ(races.size(), 1u);
  const auto split = analyze::classify_race(c, races[0]);
  ASSERT_TRUE(split.has_value());
  EXPECT_TRUE(split->agree());
  EXPECT_FALSE(split->truncated);
}

TEST(Anomaly, Figure2RaceSplitsTheHierarchy) {
  // Figure 2's computation is racy, and its anomalies are exactly what
  // separate the dag models: some race's witness must split them.
  const Computation c = test::figure2_pair().c;
  bool split_found = false;
  for (const Race& r : find_races_pairwise(c)) {
    const auto split = analyze::classify_race(c, r);
    if (split.has_value() && !split->agree()) split_found = true;
  }
  EXPECT_TRUE(split_found);
}

TEST(Anomaly, CapsReturnNullopt) {
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  const Computation c = std::move(b).build();
  const auto races = find_races_pairwise(c);
  ASSERT_FALSE(races.empty());
  analyze::AnomalyOptions tight;
  tight.witness_node_cap = 1;
  EXPECT_FALSE(analyze::classify_race(c, races[0], tight).has_value());
}

// ---------------------------------------------------------------------
// The pass driver and diagnostics.

TEST(AnalyzeDriver, RaceFreeProgramIsClean) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto child = main.spawn();
  child.read(0).write(1);
  main.sync();
  main.read(1);
  const Computation c = p.finish();
  const auto diags = analyze::analyze_computation(c);
  const auto n = analyze::count_severities(diags);
  EXPECT_EQ(n.errors, 0u);
  EXPECT_EQ(n.warnings, 0u);
}

TEST(AnalyzeDriver, ObservableRaceIsErrorUnobservableIsWarning) {
  // Parallel write/write with a subsequent read: observable → error.
  CilkProgram p;
  auto main = p.root();
  auto a = main.spawn();
  a.write(0);
  auto b = main.spawn();
  b.write(0);
  main.sync();
  main.read(0);
  const auto diags = analyze::analyze_computation(p.finish());
  EXPECT_GE(analyze::count_severities(diags).errors, 1u);

  // Parallel write/write nobody reads: every model agrees → warning.
  CilkProgram q;
  auto qm = q.root();
  auto qa = qm.spawn();
  qa.write(0);
  auto qb = qm.spawn();
  qb.write(0);
  qm.sync();
  const auto qdiags = analyze::analyze_computation(q.finish());
  const auto qn = analyze::count_severities(qdiags);
  EXPECT_EQ(qn.errors, 0u);
  EXPECT_EQ(qn.warnings, 1u);
}

TEST(AnalyzeDriver, MemoryLintsFire) {
  ComputationBuilder b;
  const NodeId w = b.write(3);
  b.read(5, {w});
  const auto diags = analyze::analyze_computation(std::move(b).build());
  bool dead_write = false;
  bool uninit_read = false;
  for (const auto& d : diags) {
    if (d.pass == "dead-write") dead_write = true;
    if (d.pass == "uninitialized-read") uninit_read = true;
  }
  EXPECT_TRUE(dead_write);
  EXPECT_TRUE(uninit_read);
}

TEST(AnalyzeDriver, RaceCapSummarizes) {
  CilkProgram p;
  auto main = p.root();
  for (int i = 0; i < 8; ++i) {
    auto child = main.spawn();
    child.write(0);
  }
  main.sync();
  analyze::AnalysisOptions options;
  options.max_race_diagnostics = 3;
  options.classify_anomalies = false;
  const auto diags = analyze::analyze_computation(p.finish(), options);
  std::size_t race_diags = 0;
  bool summary = false;
  for (const auto& d : diags) {
    if (d.pass == "sp-bags-race" && d.severity != analyze::Severity::kInfo)
      ++race_diags;
    if (d.message.find("suppressed") != std::string::npos) summary = true;
  }
  EXPECT_EQ(race_diags, 3u);
  EXPECT_TRUE(summary);
}

TEST(AnalyzeDriver, ReportRendersAllSeverities) {
  CilkProgram p;
  auto main = p.root();
  auto a = main.spawn();
  a.write(0);
  auto b = main.spawn();
  b.write(0);
  main.sync();
  main.read(0);
  main.read(9);
  const auto diags = analyze::analyze_computation(p.finish());
  const std::string report = analyze::render_report(diags);
  EXPECT_NE(report.find("error"), std::string::npos);
  EXPECT_NE(report.find("uninitialized-read"), std::string::npos);
  EXPECT_NE(report.find("behaviour classes"), std::string::npos);
}

TEST(AnalyzeDriver, JsonReportIsWellFormed) {
  CilkProgram p;
  auto main = p.root();
  auto a = main.spawn();
  a.write(0);
  auto b = main.spawn();
  b.write(0);
  main.sync();
  main.read(0);
  const auto diags = analyze::analyze_computation(p.finish());
  ASSERT_FALSE(diags.empty());
  const std::string json = analyze::render_json(diags);
  // Structural smoke: one object per diagnostic, the severity/pass keys
  // present, quotes balanced. (ccmm_lint --json is consumed by CI, so
  // the shape is part of the contract.)
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(json.find("\"severity\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\""), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '{')),
            static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '}')));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(AnalyzeDriver, StatsReportResolvedEngine) {
  // kAuto must never leak into the output stats: the driver records the
  // engine it actually ran.
  CilkProgram p;
  auto main = p.root();
  auto a = main.spawn();
  a.write(0);
  main.write(0);
  main.sync();
  const Computation c = p.finish();
  analyze::AnalyzeStats stats;
  analyze::AnalysisOptions options;
  options.classify_anomalies = false;
  (void)analyze::analyze_computation(c, options, &stats);
  EXPECT_EQ(stats.engine, RaceEngine::kSpBags);  // parse present
  EXPECT_GT(stats.races, 0u);

  options.engine = RaceEngine::kOracle;
  (void)analyze::analyze_computation(c, options, &stats);
  EXPECT_EQ(stats.engine, RaceEngine::kOracle);
  EXPECT_NE(stats.to_string().find("oracle"), std::string::npos);
}

}  // namespace
}  // namespace ccmm
