// The memory subsystems against the model checkers: SC memory generates
// SC executions, the LC oracle generates LC (and frequently non-SC)
// executions, the weak adversary gets caught.
#include <gtest/gtest.h>

#include "exec/lc_memory.hpp"
#include "exec/sc_memory.hpp"
#include "exec/sim_machine.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

Computation racy(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Dag d = gen::random_dag(n, 0.15, rng);
  return workload::random_ops(d, 2, 0.4, 0.4, rng);
}

TEST(ScMemory, SerialExecutionIsSequentiallyConsistent) {
  ScMemory mem;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Computation c = racy(8, seed);
    const ExecutionResult r = run_serial(c, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi));
    EXPECT_TRUE(sequentially_consistent(c, r.phi)) << seed;
  }
}

TEST(ScMemory, ParallelSchedulesStaySC) {
  ScMemory mem;
  Rng rng(3);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Computation c = racy(12, seed);
    const Schedule s = work_stealing_schedule(c, 4, rng);
    const ExecutionResult r = run_execution(c, s, mem);
    EXPECT_TRUE(sequentially_consistent(c, r.phi)) << seed;
  }
}

TEST(ScMemory, PhiIsLastWriterOfTraceOrder) {
  ScMemory mem;
  const Computation c = racy(10, 42);
  const ExecutionResult r = run_serial(c, mem);
  const ObserverFunction w =
      last_writer(c, c.dag().topological_order());
  EXPECT_EQ(r.phi, w);
}

TEST(ScMemory, StatsCountReadsAndWrites) {
  ScMemory mem;
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  b.read(0, {w});
  const Computation c = std::move(b).build();
  const ExecutionResult r = run_serial(c, mem);
  EXPECT_EQ(r.memory_stats.writes, 1u);
  EXPECT_EQ(r.memory_stats.reads, 2u);
}

TEST(LcOracle, AlwaysLocationConsistent) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    LcOracleMemory mem(seed);
    const Computation c = racy(10, seed * 31);
    const ExecutionResult r = run_serial(c, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi)) << seed;
    EXPECT_TRUE(location_consistent(c, r.phi)) << seed;
  }
}

TEST(LcOracle, SeparatesLcFromSc) {
  // Across seeds, some run must be LC but not SC (the oracle's whole
  // point). Use a racy multi-location workload.
  std::size_t non_sc = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    LcOracleMemory mem(seed);
    Rng rng(seed);
    const Dag d = gen::antichain(6);
    const Computation c = workload::random_ops(d, 2, 0.3, 0.7, rng);
    const ExecutionResult r = run_serial(c, mem);
    EXPECT_TRUE(location_consistent(c, r.phi));
    if (!sequentially_consistent(c, r.phi)) ++non_sc;
  }
  EXPECT_GT(non_sc, 0u);
}

TEST(LcOracle, DeterministicPerSeed) {
  const Computation c = racy(10, 5);
  LcOracleMemory m1(9), m2(9);
  const ExecutionResult a = run_serial(c, m1);
  const ExecutionResult b = run_serial(c, m2);
  EXPECT_EQ(a.phi, b.phi);
}

TEST(WeakMemory, ProducesValidObserverFunctions) {
  // Even the adversary cannot fake condition 2.2 — it only serves writes
  // that already executed.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    WeakMemory mem(seed);
    const Computation c = racy(10, seed * 7);
    const ExecutionResult r = run_serial(c, mem);
    const auto v = validate_observer(c, r.phi);
    EXPECT_TRUE(v.ok) << v.reason;
  }
}

TEST(WeakMemory, GetsCaughtByTheCheckers) {
  // Over enough seeds the adversary must violate WW somewhere — and any
  // WW violation is a fortiori an NN/LC/SC violation (Theorem 21 chain).
  std::size_t ww_violations = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    WeakMemory mem(seed);
    Rng rng(seed);
    const Dag d = gen::chain(8);
    const Computation c = workload::random_ops(d, 1, 0.5, 0.5, rng);
    const ExecutionResult r = run_serial(c, mem);
    if (!qdag_consistent(c, r.phi, DagPred::kWW)) {
      ++ww_violations;
      EXPECT_FALSE(qdag_consistent(c, r.phi, DagPred::kNN));
      EXPECT_FALSE(location_consistent(c, r.phi));
    }
  }
  EXPECT_GT(ww_violations, 0u);
}

TEST(Execution, RejectsMismatchedSchedule) {
  ScMemory mem;
  const Computation c = racy(5, 1);
  const Computation other = racy(6, 2);
  const Schedule s = serial_schedule(other);
  EXPECT_THROW((void)run_execution(c, s, mem), std::logic_error);
}

TEST(Execution, TraceRecordsEveryNodeOnce) {
  ScMemory mem;
  const Computation c = racy(9, 3);
  const ExecutionResult r = run_serial(c, mem);
  EXPECT_EQ(r.trace.events.size(), c.node_count());
  std::vector<bool> seen(c.node_count(), false);
  for (const auto& e : r.trace.events) {
    EXPECT_FALSE(seen[e.node]);
    seen[e.node] = true;
    EXPECT_EQ(e.op, c.op(e.node));
  }
}

}  // namespace
}  // namespace ccmm
