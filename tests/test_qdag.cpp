// Definition 20 (Q-dag consistency) and the paper's Figures 2 and 3.
#include "models/qdag.hpp"

#include <gtest/gtest.h>

#include "core/last_writer.hpp"
#include "dag/generators.hpp"
#include "dag/topsort.hpp"
#include "enumerate/observer_enum.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(QDag, EmptyComputationIsInEveryModel) {
  const Computation c;
  const ObserverFunction phi(0);
  for (const DagPred p :
       {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW})
    EXPECT_TRUE(qdag_consistent(c, phi, p));
}

TEST(QDag, RejectsInvalidObserver) {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  const Computation c = std::move(b).build();
  ObserverFunction phi(2);  // write does not observe itself: invalid
  phi.set(0, 1, 0);
  EXPECT_FALSE(qdag_consistent(c, phi, DagPred::kNN));
}

TEST(QDag, Figure2Memberships) { test::expect_memberships(test::figure2_pair()); }

TEST(QDag, Figure3Memberships) { test::expect_memberships(test::figure3_pair()); }

TEST(QDag, Figure2ViolationWitness) {
  const auto p = test::figure2_pair();
  QDagViolation v;
  EXPECT_FALSE(qdag_consistent(p.c, p.phi, DagPred::kWN, &v));
  // The forbidden triple is (A, C, D) = (0, 2, 3).
  EXPECT_EQ(v.loc, 0u);
  EXPECT_EQ(v.u, 0u);
  EXPECT_EQ(v.v, 2u);
  EXPECT_EQ(v.w, 3u);
}

TEST(QDag, BottomEndpointTriple) {
  // If Φ(l, w) = ⊥ then every predecessor of w must also observe ⊥ under
  // NN (take u = ⊥ in condition 20.1).
  ComputationBuilder b;
  const NodeId w0 = b.write(0);
  const NodeId r1 = b.read(0, {w0});
  b.read(0, {r1});  // r2: node 2, observes bottom below
  const Computation c = std::move(b).build();
  ObserverFunction phi(3);
  phi.set(0, w0, w0);
  phi.set(0, r1, w0);
  // r2 observes ⊥ after r1 observed the write: NN-inconsistent.
  QDagViolation v;
  EXPECT_FALSE(qdag_consistent(c, phi, DagPred::kNN, &v));
  EXPECT_EQ(v.u, kBottom);
  // But WN tolerates it (⊥ is not a write, and u = w0 has Φ = w0 ≠ ⊥)...
  EXPECT_TRUE(qdag_consistent(c, phi, DagPred::kWN));
  EXPECT_TRUE(qdag_consistent(c, phi, DagPred::kWW));
}

TEST(QDag, LastWriterIsAlwaysQDagConsistent) {
  // W_T ∈ SC ⊆ every dag-consistent model (Theorems 21/22 chain).
  Rng rng(4);
  for (int round = 0; round < 25; ++round) {
    const Dag d = gen::random_dag(8, 0.25, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const ObserverFunction w =
        last_writer(c, greedy_random_topological_sort(c.dag(), rng));
    for (const DagPred p :
         {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW})
      EXPECT_TRUE(qdag_consistent(c, w, p)) << dag_pred_name(p);
  }
}

TEST(QDag, CustomPredicateAgreesWithNamedOnes) {
  // The named fast paths must agree with the generic cubic checker.
  const auto as_custom = [](DagPred p) {
    return [p](const Computation& c, Location l, NodeId u, NodeId v,
               NodeId w) {
      (void)w;
      const bool uw = u != kBottom && c.op(u).writes(l);
      const bool vw = c.op(v).writes(l);
      switch (p) {
        case DagPred::kNN:
          return true;
        case DagPred::kNW:
          return vw;
        case DagPred::kWN:
          return uw;
        case DagPred::kWW:
          return uw && vw;
      }
      return false;
    };
  };
  Rng rng(5);
  for (int round = 0; round < 40; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 1, 0.4, 0.4, rng);
    // Random valid observer: enumerate a few.
    int budget = 10;
    for_each_observer(c, [&](const ObserverFunction& phi) {
      for (const DagPred p :
           {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW}) {
        EXPECT_EQ(qdag_consistent(c, phi, p),
                  qdag_consistent_custom(c, phi, as_custom(p)))
            << dag_pred_name(p);
      }
      return --budget > 0;
    });
  }
}

TEST(QDag, FalsePredicateAcceptsEverythingValid) {
  // Q ≡ false imposes no constraint: every valid observer is a member.
  const QPredicate never = [](const Computation&, Location, NodeId, NodeId,
                              NodeId) { return false; };
  const auto p = test::figure2_pair();
  EXPECT_TRUE(qdag_consistent_custom(p.c, p.phi, never));
}

TEST(QDag, ModelObjectsReportNames) {
  EXPECT_EQ(QDagModel::nn()->name(), "NN");
  EXPECT_EQ(QDagModel::nw()->name(), "NW");
  EXPECT_EQ(QDagModel::wn()->name(), "WN");
  EXPECT_EQ(QDagModel::ww()->name(), "WW");
  EXPECT_EQ(QDagModel::nn()->pred(), DagPred::kNN);
}

TEST(QDag, AnyObserverWitnessesCompleteness) {
  // Every dag-consistent model is complete: any_observer must succeed.
  Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const auto phi = QDagModel::nn()->any_observer(c);
    ASSERT_TRUE(phi.has_value());
    EXPECT_TRUE(QDagModel::nn()->contains(c, *phi));
  }
}

}  // namespace
}  // namespace ccmm
