// The declarative spec layer (models/spec.hpp), pinned four ways:
//  * the surface syntax round-trips: to_string() of every bundled spec
//    parses back to the identical value;
//  * normalize() canonicalizes (scope sorting/deduping, singleton-scope
//    dropping, axiom domination) and digest() fingerprints the result
//    name-independently;
//  * spec_implies recovers the paper's Theorem 21 lattice on the eight
//    built-ins — the same gates ModelSuite hardcodes — plus the scoped
//    containment rule on partition specs;
//  * malformed packs are rejected with the exact 1-based line number.
#include "models/spec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ccmm {
namespace {

TEST(SpecParse, RoundTripsEveryBundledSpec) {
  std::vector<ModelSpec> all = builtin_model_specs();
  for (ModelSpec& s : bundled_spec_pack()) all.push_back(std::move(s));
  for (const ModelSpec& s : all) {
    const std::vector<ModelSpec> back = read_model_specs(s.to_string());
    ASSERT_EQ(back.size(), 1u) << s.name;
    EXPECT_EQ(back[0], s) << s.name << "\n" << s.to_string();
  }
}

TEST(SpecParse, CommentsBlanksAndPackShape) {
  const std::string text =
      "# a pack with noise\n"
      "\n"
      "model PC2   # partition consistency\n"
      "scope 0 1\n"
      "scope 2 3\n"
      "end\n"
      "\n"
      "model COH\n"
      "order location\n"
      "end\n"
      "model TSO\n"
      "axiom WNN\n"
      "axiom NWN\n"
      "fresh\n"
      "end\n";
  const std::vector<ModelSpec> specs = read_model_specs(text);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], partition_spec("PC2", {{{0, 1}}, {{2, 3}}}));
  EXPECT_EQ(specs[1], coherence_spec());
  EXPECT_EQ(specs[2], tso_like_spec());
}

TEST(SpecParse, MalformedInputsCarryExactLineNumbers) {
  struct Case {
    const char* text;
    std::size_t line;
    const char* needle;
  };
  const Case cases[] = {
      {"order location\n", 1, "outside a model block"},
      {"model\n", 1, "usage: model NAME"},
      {"model A\nmodel B\nend\n", 2, "'model' before 'end'"},
      {"model A\norder weird\nend\n", 2, "usage: order"},
      {"model A\norder location\norder global\nend\n", 3,
       "more than one order directive"},
      {"model A\naxiom WXN\nend\n", 2, "three letters"},
      {"model A\naxiom\nend\n", 2, "usage: axiom"},
      {"model A\nscope\nend\n", 2, "usage: scope"},
      {"model A\nscope 0 x\nend\n", 2, "'x' is not a location"},
      {"model A\norder global\nscope 0 1\nend\n", 3,
       "conflict with the order directive"},
      {"model A\nscope 0 1\nscope 1 2\nend\n", 4, "appears in two scopes"},
      {"model A\nend\nmodel A\nend\n", 4, "duplicate model name 'A'"},
      {"model A\nfresh\n", 2, "missing its 'end'"},
  };
  for (const Case& k : cases) {
    try {
      (void)read_model_specs(std::string(k.text));
      FAIL() << "accepted malformed pack:\n" << k.text;
    } catch (const SpecParseError& e) {
      EXPECT_EQ(e.line(), k.line) << e.what();
      EXPECT_NE(std::string(e.what()).find(k.needle), std::string::npos)
          << e.what();
      // The rendered message leads with the line number.
      EXPECT_EQ(std::string(e.what()).rfind("spec line ", 0), 0u) << e.what();
    }
  }
}

TEST(SpecNormalize, CanonicalizesScopesAxiomsAndFreshness) {
  // Scope members sort; a singleton scope is dropped (it is exactly
  // the implicit per-location treatment). A member repeated inside one
  // scope is already an overlap for validate(), so it never reaches
  // normalize().
  ModelSpec s;
  s.name = "P";
  s.order = OrderAxiom::kScoped;
  s.scopes = {{{3, 1}}, {{2}}};
  s.normalize();
  ASSERT_EQ(s.scopes.size(), 1u);
  EXPECT_EQ(s.scopes[0].locations, (std::vector<Location>{1, 3}));
  EXPECT_EQ(s.order, OrderAxiom::kScoped);

  // All scopes singleton -> the order axiom demotes to per-location.
  ModelSpec t;
  t.name = "Q";
  t.order = OrderAxiom::kScoped;
  t.scopes = {{{0}}, {{5}}};
  t.normalize();
  EXPECT_TRUE(t.scopes.empty());
  EXPECT_EQ(t.order, OrderAxiom::kPerLocation);

  // Duplicate axioms dedupe; an axiom dominated by a stronger sibling
  // (fewer write constraints = more quantified triples) is dropped.
  ModelSpec u;
  u.name = "R";
  u.axioms = {CubeSpec{true, false, false}, CubeSpec{false, false, false},
              CubeSpec{true, false, false}};
  u.normalize();
  ASSERT_EQ(u.axioms.size(), 1u);
  EXPECT_EQ(u.axioms[0], (CubeSpec{false, false, false}));

  // A per-location-or-stronger order axiom absorbs every cube axiom and
  // the freshness axiom.
  ModelSpec v;
  v.name = "S";
  v.order = OrderAxiom::kPerLocation;
  v.axioms = {CubeSpec{true, true, false}};
  v.freshness = true;
  v.normalize();
  EXPECT_TRUE(v.axioms.empty());
  EXPECT_FALSE(v.freshness);
}

TEST(SpecNormalize, ValidateRejectsStructuralIllFormedness) {
  ModelSpec anon;
  EXPECT_NE(anon.validate(), "");

  ModelSpec overlap;
  overlap.name = "O";
  overlap.order = OrderAxiom::kScoped;
  overlap.scopes = {{{0, 1}}, {{1, 2}}};
  EXPECT_NE(overlap.validate(), "");

  ModelSpec stray;
  stray.name = "S";
  stray.order = OrderAxiom::kGlobal;
  stray.scopes = {{{0, 1}}};
  EXPECT_NE(stray.validate(), "");
}

TEST(SpecDigest, FingerprintsStructureNotName) {
  // COH is definitionally LC: same normalized structure, same digest,
  // despite the different names.
  EXPECT_EQ(coherence_spec().digest(), builtin_model_specs()[1].digest());

  // The eight built-ins are pairwise structurally distinct.
  const std::vector<ModelSpec>& b = builtin_model_specs();
  for (std::size_t i = 0; i < b.size(); ++i)
    for (std::size_t j = i + 1; j < b.size(); ++j)
      EXPECT_NE(b[i].digest(), b[j].digest()) << b[i].name << " vs "
                                              << b[j].name;

  // normalize() is idempotent, so the digest is stable under repeats.
  ModelSpec p = partition_spec("P", {{{2, 0}}, {{5, 3}}});
  const std::string d = p.digest();
  p.normalize();
  EXPECT_EQ(p.digest(), d);
}

/// Position of each built-in in builtin_model_specs(): suite-bit order.
enum : std::size_t { kSC, kLC, kNN, kNW, kWN, kWW, kWNp, kNNp };

TEST(SpecImplies, RecoversTheorem21LatticeOnBuiltins) {
  const std::vector<ModelSpec>& b = builtin_model_specs();
  ASSERT_EQ(b.size(), 8u);
  // expected[i] = bitmask of j with spec_implies(b[i], b[j]). This is
  // exactly the paper's containment diagram (Theorem 21) plus the
  // freshness-strengthened corners.
  const auto bit = [](std::size_t j) { return std::uint32_t{1} << j; };
  std::uint32_t expected[8] = {};
  expected[kSC] = 0xFF;  // SC is the bottom: inside everything
  expected[kLC] = 0xFF & ~bit(kSC);
  expected[kNN] = bit(kNN) | bit(kNW) | bit(kWN) | bit(kWW);
  expected[kNW] = bit(kNW) | bit(kWW);
  expected[kWN] = bit(kWN) | bit(kWW);
  expected[kWW] = bit(kWW);
  expected[kWNp] = bit(kWNp) | bit(kWN) | bit(kWW);
  expected[kNNp] = bit(kNNp) | bit(kWNp) | expected[kNN];
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_EQ(spec_implies(b[i], b[j]), (expected[i] >> j) & 1u)
          << b[i].name << " => " << b[j].name;
}

TEST(SpecImplies, ScopedContainmentRule) {
  const ModelSpec pc2 = partition_spec("PC2", {{{0, 1}}, {{2, 3}}});
  const ModelSpec narrow = partition_spec("N", {{{0, 1}}});
  const ModelSpec wide = partition_spec("W", {{{0, 1, 2, 3}}});
  const ModelSpec skew = partition_spec("S", {{{0, 1, 2}}});
  const std::vector<ModelSpec>& b = builtin_model_specs();

  // Every scope of the consequent must sit inside one of the
  // antecedent's scopes.
  EXPECT_TRUE(spec_implies(pc2, narrow));
  EXPECT_FALSE(spec_implies(narrow, pc2));
  EXPECT_TRUE(spec_implies(wide, pc2));
  EXPECT_FALSE(spec_implies(pc2, wide));
  EXPECT_FALSE(spec_implies(skew, pc2));  // {2,3} not inside {0,1,2}

  // Against the built-ins: SC implies any partition, any partition
  // implies LC (uncovered locations are singleton scopes) and thus all
  // cube axioms and freshness; per-location alone implies no partition.
  EXPECT_TRUE(spec_implies(b[kSC], pc2));
  EXPECT_TRUE(spec_implies(pc2, b[kLC]));
  EXPECT_TRUE(spec_implies(pc2, b[kNNp]));
  EXPECT_FALSE(spec_implies(b[kLC], pc2));

  // The TSO-like client: {WNN, NWN} + fresh sits above NN+ and below
  // the WN/NW corners and WN+, incomparable with NN.
  const ModelSpec tso = tso_like_spec();
  EXPECT_TRUE(spec_implies(tso, b[kWN]));
  EXPECT_TRUE(spec_implies(tso, b[kNW]));
  EXPECT_TRUE(spec_implies(tso, b[kWW]));
  EXPECT_TRUE(spec_implies(tso, b[kWNp]));
  EXPECT_FALSE(spec_implies(tso, b[kNN]));
  EXPECT_FALSE(spec_implies(tso, b[kLC]));
  EXPECT_TRUE(spec_implies(b[kNNp], tso));
  EXPECT_FALSE(spec_implies(b[kNN], tso));  // no freshness
}

}  // namespace
}  // namespace ccmm
