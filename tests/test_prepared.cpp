// The shared-preparation refactor, pinned three ways:
//  * contains_prepared answers exactly like the legacy contains() for
//    every model (six core checkers, WN+/NN+, predicate and
//    intersection wrappers) over exhaustive small universes;
//  * ModelSuite::classify equals eight independent membership calls,
//    with lattice short-circuiting ON and OFF (the ablation);
//  * the PreparedPair block partition indexes Φ⁻¹ correctly, and
//    cached_classification memoizes the suite bitmask per orbit.
#include "core/prepared.hpp"

#include <gtest/gtest.h>

#include "enumerate/cached_model.hpp"
#include "enumerate/universe.hpp"
#include "models/wn_plus.hpp"
#include "helpers.hpp"
#include "util/memo_cache.hpp"

namespace ccmm {
namespace {

struct Row {
  const char* label;
  std::shared_ptr<const MemoryModel> model;
};

std::vector<Row> all_models() {
  const auto nw = QDagModel::nw();
  const auto wn = QDagModel::wn();
  std::vector<Row> rows = {
      {"SC", SequentialConsistencyModel::instance()},
      {"LC", LocationConsistencyModel::instance()},
      {"NN", QDagModel::nn()},
      {"NW", nw},
      {"WN", wn},
      {"WW", QDagModel::ww()},
      {"WN+", WnPlusModel::instance()},
      {"NN+", NnPlusModel::instance()},
      // Third-party idioms over the two-level API: a legacy predicate
      // (exercises the prepared->legacy bridge), a prepared predicate
      // (exercises the legacy->prepared bridge), and an intersection
      // (one preparation must serve both operands).
      {"pred-legacy",
       std::make_shared<PredicateModel>(
           "LC-as-pred", PredicateModel::Pred(
                             [](const Computation& c,
                                const ObserverFunction& phi) {
                               return location_consistent(c, phi);
                             }))},
      {"pred-prepared",
       std::make_shared<PredicateModel>(
           "WN-as-pred", PredicateModel::PreparedPred(
                             [](const PreparedPair& p) {
                               return qdag_consistent_prepared(p,
                                                               DagPred::kWN);
                             }))},
      {"NW∩WN", std::make_shared<IntersectionModel>(nw, wn)},
  };
  return rows;
}

void sweep_universe(const UniverseSpec& spec) {
  const std::vector<Row> rows = all_models();
  CheckContext ctx;
  std::size_t pairs = 0;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    const PreparedPair p = ctx.prepare(c, phi);
    EXPECT_TRUE(p.valid());
    for (const Row& row : rows) {
      const bool legacy = row.model->contains(c, phi);
      const bool prepared = row.model->contains_prepared(p);
      EXPECT_EQ(legacy, prepared)
          << row.label << " diverges on:\n"
          << c.to_string() << phi.to_string();
      if (legacy != prepared) return false;  // first divergence is enough
    }
    ++pairs;
    return true;
  });
  EXPECT_EQ(pairs, pair_count(spec));
  EXPECT_EQ(ctx.stats().prepared, pairs);
}

TEST(PreparedDifferential, FourNodesOneLocation) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  sweep_universe(spec);
}

TEST(PreparedDifferential, ThreeNodesTwoLocations) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  sweep_universe(spec);
}

TEST(PreparedDifferential, InvalidObserversRejectedEverywhere) {
  // A read observing a write it precedes (violates Condition 2.2).
  Dag g1(2);
  g1.add_edge(0, 1);
  const Computation c1(g1, {Op::read(0), Op::write(0)});
  ObserverFunction phi1(2);
  phi1.set(0, 1, 1);
  phi1.set(0, 0, 1);

  // A writer observing another writer (violates Condition 2.3).
  const Computation c2(Dag(2), {Op::write(0), Op::write(0)});
  ObserverFunction phi2(2);
  phi2.set(0, 0, 1);
  phi2.set(0, 1, 1);

  CheckContext ctx;
  const std::pair<const Computation*, const ObserverFunction*> cases[] = {
      {&c1, &phi1}, {&c2, &phi2}};
  for (const auto& [c, phi] : cases) {
    const PreparedPair p = ctx.prepare(*c, *phi);
    EXPECT_FALSE(p.valid());
    EXPECT_FALSE(p.validity().reason.empty());
    EXPECT_EQ(p.validity().reason, validate_observer(*c, *phi).reason);
    EXPECT_TRUE(p.locations().empty());
    for (const Row& row : all_models()) {
      EXPECT_FALSE(row.model->contains_prepared(p)) << row.label;
      EXPECT_FALSE(row.model->contains(*c, *phi)) << row.label;
    }
    EXPECT_EQ(ModelSuite::classify(p), 0u);
  }
}

TEST(PreparedPairStructure, BlockPartitionIndexesObserverInverse) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  CheckContext ctx;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    const PreparedPair p = ctx.prepare(c, phi);
    for (const auto& lp : p.locations()) {
      EXPECT_EQ(lp.writers, c.writers(lp.loc));
      EXPECT_EQ(lp.block_count(), lp.writers.size() + 1);
      // Every node sits in exactly the block of its observed value.
      for (NodeId u = 0; u < c.node_count(); ++u) {
        const NodeId x = phi.get(lp.loc, u);
        EXPECT_TRUE(lp.block_sets[lp.block_of[u]].test(u));
        if (x == kBottom) {
          EXPECT_EQ(lp.block_of[u], 0u);
        } else {
          EXPECT_EQ(lp.block_writer(lp.block_of[u]), x);
          EXPECT_TRUE(lp.observers_of(x).test(u));
        }
      }
    }
    return true;
  });
}

std::uint32_t classify_by_calls(const Computation& c,
                                const ObserverFunction& phi) {
  std::uint32_t mask = 0;
  if (SequentialConsistencyModel::instance()->contains(c, phi))
    mask |= kSuiteSC;
  if (location_consistent(c, phi)) mask |= kSuiteLC;
  if (qdag_consistent(c, phi, DagPred::kNN)) mask |= kSuiteNN;
  if (qdag_consistent(c, phi, DagPred::kNW)) mask |= kSuiteNW;
  if (qdag_consistent(c, phi, DagPred::kWN)) mask |= kSuiteWN;
  if (qdag_consistent(c, phi, DagPred::kWW)) mask |= kSuiteWW;
  if (wn_plus_consistent(c, phi)) mask |= kSuiteWNPlus;
  if (observer_is_fresh(c, phi) && qdag_consistent(c, phi, DagPred::kNN))
    mask |= kSuiteNNPlus;
  return mask;
}

TEST(ModelSuiteClassify, EqualsIndependentCallsAndAblation) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  CheckContext ctx;
  SuiteOptions pruned;  // defaults: short_circuit on
  SuiteOptions ablated;
  ablated.short_circuit = false;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    const std::uint32_t expect = classify_by_calls(c, phi);
    const PreparedPair p = ctx.prepare(c, phi);
    EXPECT_EQ(ModelSuite::classify(p, pruned), expect)
        << c.to_string() << phi.to_string();
    EXPECT_EQ(ModelSuite::classify(p, ablated), expect)
        << "ablation diverges on:\n"
        << c.to_string() << phi.to_string();
    EXPECT_EQ(ModelSuite::classify(c, phi), expect);  // convenience overload
    return true;
  });
}

TEST(ModelSuiteClassify, RespectsIncludeFlags) {
  const auto ex = test::lc_not_sc_pair();
  CheckContext ctx;
  const PreparedPair p = ctx.prepare(ex.c, ex.phi);
  SuiteOptions no_sc;
  no_sc.include_sc = false;
  EXPECT_EQ(ModelSuite::classify(p, no_sc) & kSuiteSC, 0u);
  SuiteOptions no_plus;
  no_plus.include_plus = false;
  EXPECT_EQ(ModelSuite::classify(p, no_plus) & (kSuiteWNPlus | kSuiteNNPlus),
            0u);
}

TEST(CachedClassification, AgreesAndHits) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  spec.include_nop = false;
  const auto before = classification_cache().stats();
  std::size_t pairs = 0;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_EQ(cached_classification(c, phi), ModelSuite::classify(c, phi));
    ++pairs;
    return true;
  });
  // Second pass answers entirely from the cache.
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_EQ(cached_classification(c, phi), ModelSuite::classify(c, phi));
    return true;
  });
  const auto after = classification_cache().stats();
  EXPECT_GE(after.hits - before.hits, pairs);  // the repeat pass at least
  EXPECT_GT(after.insertions, before.insertions);
}

TEST(CheckContextScratch, ArenasAreReusedAndCleared) {
  CheckContext ctx;
  DynBitset& a = ctx.scratch_bits(64);
  a.set(3);
  DynBitset& b = ctx.scratch_bits(64);
  EXPECT_FALSE(b.test(3));  // re-request clears
  EXPECT_EQ(&a, &b);        // ... and reuses the same arena
  auto& nodes = ctx.scratch_nodes();
  nodes.push_back(7);
  EXPECT_TRUE(ctx.scratch_nodes().empty());
}

}  // namespace
}  // namespace ccmm
