// The binary trace format (trace/trace_binary.hpp) pinned against the
// text format and the in-memory Trace: byte-exact round-trips on the
// exhaustive small universe and on random / Cilk / layered executions,
// precise rejection offsets for every malformed-image class, format
// auto-detection, and the scalar-vs-SIMD differential suites the
// dispatch policy (util/simd.hpp) promises are bit-identical.
#include "trace/trace_binary.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "analyze/race_oracle.hpp"
#include "dag/generators.hpp"
#include "enumerate/universe.hpp"
#include "exec/sc_memory.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "proc/random_program.hpp"
#include "trace/large_check.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

/// Serialize through the streamed binary writer into one image string.
std::string image_of(const Trace& trace) {
  std::ostringstream out(std::ios::binary);
  write_trace_binary(trace, out);
  return out.str();
}

/// Full-field equality: the binary format preserves everything,
/// including the event time the text format drops.
void expect_events_equal(const Trace& got, const Trace& want,
                         bool with_time = true) {
  ASSERT_EQ(got.events.size(), want.events.size());
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    const TraceEvent& a = got.events[i];
    const TraceEvent& b = want.events[i];
    EXPECT_EQ(a.seq, b.seq) << "event " << i;
    if (with_time) {
      EXPECT_EQ(a.time, b.time) << "event " << i;
    }
    EXPECT_EQ(a.proc, b.proc) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.observed, b.observed) << "event " << i;
    EXPECT_TRUE(a.op == b.op) << "event " << i;
  }
}

void expect_round_trips(const Trace& trace, const Computation& c) {
  const std::string image = image_of(trace);
  ASSERT_EQ(image.size(), kTraceBinaryHeaderBytes +
                              trace.events.size() * kTraceBinaryEventBytes);
  const Trace back = read_trace_binary(image.data(), image.size(), c);
  expect_events_equal(back, trace);

  // The text twin must decode to the same trace (minus the event time,
  // which only the binary format records).
  std::ostringstream text;
  write_trace(trace, text);
  std::istringstream in(text.str());
  expect_events_equal(read_trace(in, c), trace, /*with_time=*/false);
}

TEST(TraceBinary, RoundTripsExhaustiveSmallUniverse) {
  // Every computation of the bounded universe, each executed serially:
  // the round-trip must be exact on all of them.
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 2;
  std::size_t visited = 0;
  for_each_computation(spec, [&](const Computation& c) {
    ScMemory mem;
    const Trace trace = run_serial(c, mem).trace;
    expect_round_trips(trace, c);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, computation_count(spec));
}

TEST(TraceBinary, RoundTripsScrambledObservations) {
  // The format does not require trace-consistent observations — any
  // in-range node id or ⊥ must survive. Scramble and round-trip.
  Rng rng(2026);
  const Computation c = workload::contended_counter(12);
  ScMemory mem;
  Trace trace = run_serial(c, mem).trace;
  for (TraceEvent& e : trace.events) {
    if (rng.chance(0.3))
      e.observed = kBottom;
    else if (rng.chance(0.5))
      e.observed = static_cast<NodeId>(rng.below(c.node_count()));
    e.time = rng.below(1u << 30);
    e.proc = static_cast<ProcId>(rng.below(64));
  }
  const std::string image = image_of(trace);
  expect_events_equal(read_trace_binary(image.data(), image.size(), c), trace);
}

TEST(TraceBinary, RoundTripsLargerExecutionFamilies) {
  Rng rng(401);
  std::vector<Computation> cs;
  // random general dag / random Cilk (series-parallel) / wide layered.
  cs.push_back(workload::random_ops(gen::random_dag(600, 0.02, rng), 6, 0.4,
                                    0.4, rng));
  {
    proc::RandomCilkOptions opt;
    opt.target_ops = 20000;
    opt.nlocations = 8;
    cs.push_back(proc::random_cilk(opt, rng));
  }
  cs.push_back(workload::random_ops(
      gen::layered({300, 400, 400, 300}, 0.02, rng), 10, 0.45, 0.45, rng));
  for (const Computation& c : cs) {
    WeakMemory mem(7);
    const Schedule s = greedy_schedule(c, 4);
    expect_round_trips(run_execution(c, s, mem).trace, c);
  }
}

TEST(TraceBinary, ZeroCopyViewMatchesPortableReader) {
  const Computation c = workload::stencil(6, 5);
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;
  const std::string image = image_of(trace);
  const BinaryTraceView view =
      validate_trace_binary(image.data(), image.size(), c);
  ASSERT_EQ(view.count, trace.events.size());
  for (std::size_t i = 0; i < view.count; ++i) {
    EXPECT_EQ(view.events[i].seq, trace.events[i].seq);
    EXPECT_EQ(view.events[i].node, trace.events[i].node);
    EXPECT_EQ(view.events[i].reserved, 0u);
  }
  expect_events_equal(trace_from_view(view, c), trace);
}

TEST(TraceBinary, EmptyTraceRoundTrips) {
  const Trace empty;
  const std::string image = image_of(empty);
  EXPECT_EQ(image.size(), kTraceBinaryHeaderBytes);
  const Trace back = read_trace_binary(image.data(), image.size(), Computation());
  EXPECT_TRUE(back.events.empty());
}

/// Expect read_trace_binary to throw with exactly this byte offset.
void expect_rejects_at(const std::string& image, const Computation& c,
                       std::size_t offset) {
  try {
    (void)read_trace_binary(image.data(), image.size(), c);
    FAIL() << "image accepted; expected rejection at offset " << offset;
  } catch (const TraceReadError& e) {
    EXPECT_EQ(e.offset(), offset) << e.what();
  }
}

TEST(TraceBinary, RejectsMalformedHeaders) {
  const Computation c = workload::reduction(3);
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;
  const std::string good = image_of(trace);

  // Truncated header: the offset is the point the file ended.
  expect_rejects_at(std::string(), c, 0);
  expect_rejects_at(good.substr(0, 10), c, 10);
  expect_rejects_at(good.substr(0, 31), c, 31);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_rejects_at(bad_magic, c, 0);

  std::string bad_version = good;
  bad_version[8] = 9;  // version 9 > kTraceBinaryVersion
  expect_rejects_at(bad_version, c, 8);

  std::string bad_flags = good;
  bad_flags[12] = 1;
  expect_rejects_at(bad_flags, c, 12);

  // event_count disagreeing with the file size, in both directions.
  std::string bad_count = good;
  bad_count[16] = static_cast<char>(bad_count[16] + 1);
  expect_rejects_at(bad_count, c, 16);
  expect_rejects_at(good.substr(0, good.size() - 5), c, 16);  // torn record
  expect_rejects_at(good + std::string(8, '\0'), c, 16);      // trailing junk

  std::string bad_reserved = good;
  bad_reserved[24] = 1;
  expect_rejects_at(bad_reserved, c, 24);
}

TEST(TraceBinary, RejectsMalformedRecordsWithExactOffsets) {
  const Computation c = workload::reduction(3);  // well under 2^32 nodes
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;
  ASSERT_GE(trace.events.size(), 2u);
  const std::string good = image_of(trace);

  const auto record = [](std::size_t i) {
    return kTraceBinaryHeaderBytes + i * kTraceBinaryEventBytes;
  };
  const auto poke32 = [](std::string image, std::size_t at,
                         std::uint32_t v) {
    std::memcpy(image.data() + at, &v, sizeof v);
    return image;
  };

  // Out-of-range node id, in the first and in a later record.
  expect_rejects_at(poke32(good, record(0) + 20, 0xDEAD), c, record(0) + 20);
  expect_rejects_at(poke32(good, record(1) + 20, 0xDEAD), c, record(1) + 20);
  // Out-of-range observation — but 0xFFFFFFFF (⊥) stays legal.
  expect_rejects_at(poke32(good, record(0) + 24, 0xBEEF), c, record(0) + 24);
  const std::string bot = poke32(good, record(0) + 24, 0xFFFFFFFFu);
  EXPECT_EQ(read_trace_binary(bot.data(), bot.size(), c).events[0].observed,
            kBottom);
  // Nonzero per-record reserved field.
  expect_rejects_at(poke32(good, record(1) + 28, 1), c, record(1) + 28);
}

TEST(TraceBinary, DetectsFormatFromMagic) {
  const std::string binary = image_of(Trace());
  EXPECT_EQ(detect_trace_format(binary.data(), binary.size()),
            TraceFormat::kBinary);
  const std::string text = "0 0 0 _\n";
  EXPECT_EQ(detect_trace_format(text.data(), text.size()), TraceFormat::kText);
  // Too short to hold the magic — even a magic prefix — reads as text.
  EXPECT_EQ(detect_trace_format("CCMMTRC", 7), TraceFormat::kText);
  EXPECT_EQ(detect_trace_format(nullptr, 0), TraceFormat::kText);
}

TEST(TraceBinary, LoadTraceAutoDetectsFilesAndMapsThem) {
  const Computation c = workload::contended_counter(5);
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;

  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "ccmm_trace_binary_test.tbin";
  const std::string txt_path = dir + "ccmm_trace_binary_test.trace";
  {
    std::ofstream out(bin_path, std::ios::binary);
    write_trace_binary(trace, out);
  }
  {
    std::ofstream out(txt_path);
    write_trace(trace, out);
  }
  EXPECT_EQ(detect_trace_format_file(bin_path), TraceFormat::kBinary);
  EXPECT_EQ(detect_trace_format_file(txt_path), TraceFormat::kText);

  expect_events_equal(load_trace(bin_path, c), trace);
  expect_events_equal(load_trace(txt_path, c), trace, /*with_time=*/false);

  // The mmap image is byte-for-byte the writer's output.
  const MappedTraceFile file(bin_path);
  const std::string image = image_of(trace);
  ASSERT_EQ(file.size(), image.size());
  EXPECT_EQ(std::memcmp(file.data(), image.data(), image.size()), 0);
  expect_events_equal(read_trace_binary(file.data(), file.size(), c), trace);

  EXPECT_THROW((void)load_trace(dir + "ccmm_no_such_trace.tbin", c),
               std::runtime_error);
}

#if defined(__unix__) || defined(__APPLE__)

/// Write `image` into a pipe (the whole blob fits the kernel buffer
/// for these sizes, so no writer thread is needed) and hand back the
/// read end.
int pipe_with(const std::string& image) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  std::size_t at = 0;
  while (at < image.size()) {
    const ssize_t k =
        ::write(fds[1], image.data() + at, image.size() - at);
    if (k <= 0) {
      ADD_FAILURE() << "pipe write failed";
      break;
    }
    at += static_cast<std::size_t>(k);
  }
  ::close(fds[1]);
  return fds[0];
}

TEST(TraceBinary, NonSeekableInputsStreamWithoutTempFiles) {
  // Pipes cannot seek or mmap: the read-to-EOF fallback must hand the
  // checker the identical image, for both formats and through both the
  // descriptor constructor and load_trace("-")-style consumers.
  const Computation c = workload::contended_counter(5);
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;
  const std::string image = image_of(trace);

  {
    const int rd = pipe_with(image);
    const MappedTraceFile f(rd, "<pipe>");
    ::close(rd);
    EXPECT_FALSE(f.mapped());
    ASSERT_EQ(f.size(), image.size());
    EXPECT_EQ(std::memcmp(f.data(), image.data(), image.size()), 0);
    expect_events_equal(read_trace_binary(f.data(), f.size(), c), trace);
  }
  {
    // Text down a pipe: the single-open load path parses straight from
    // the drained buffer.
    std::ostringstream txt;
    write_trace(trace, txt);
    const int rd = pipe_with(txt.str());
    const MappedTraceFile f(rd, "<pipe>");
    ::close(rd);
    EXPECT_EQ(detect_trace_format(f.data(), f.size()), TraceFormat::kText);
  }
  {
    // A FIFO by path: load_trace must open it exactly once (the sniff
    // used to cost the first 8 bytes).
    const std::string fifo = ::testing::TempDir() + "ccmm_trace_fifo";
    ::unlink(fifo.c_str());
    ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
    std::thread writer([&] {
      std::ofstream out(fifo, std::ios::binary);
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
    });
    expect_events_equal(load_trace(fifo, c), trace);
    writer.join();
    ::unlink(fifo.c_str());
  }
}

TEST(TraceBinary, TruncatedPipeImagesReportExactOffsets) {
  const Computation c = workload::contended_counter(4);
  ScMemory mem;
  const Trace trace = run_serial(c, mem).trace;
  const std::string image = image_of(trace);

  // Cut inside the header: the 32-byte header check fires at the
  // truncated size.
  for (const std::size_t cut : {std::size_t{7}, std::size_t{31}}) {
    const int rd = pipe_with(image.substr(0, cut));
    const MappedTraceFile f(rd, "<pipe>");
    ::close(rd);
    try {
      (void)read_trace_binary(f.data(), f.size(), c);
      FAIL() << "truncated header must throw";
    } catch (const TraceReadError& e) {
      EXPECT_EQ(e.offset(), cut);
    }
  }
  // Cut inside a record: event_count disagrees with the drained size;
  // the offset pins the count field at byte 16.
  for (const std::size_t drop : {std::size_t{1}, std::size_t{17}}) {
    const int rd = pipe_with(image.substr(0, image.size() - drop));
    const MappedTraceFile f(rd, "<pipe>");
    ::close(rd);
    try {
      (void)read_trace_binary(f.data(), f.size(), c);
      FAIL() << "truncated record must throw";
    } catch (const TraceReadError& e) {
      EXPECT_EQ(e.offset(), 16u);
    }
  }
}

#endif  // POSIX

// ---------------------------------------------------------------------
// Scalar-vs-SIMD differential suites. The kernels (dag/sweep.hpp) are
// required to be bit-identical across dispatch levels; these tests pin
// the whole observable surface — verdicts, witnesses, race lists — with
// the level forced per call. The *Parallel* names put them in the TSan
// job's filter, where the sharded pipelines run threaded.
// ---------------------------------------------------------------------

std::vector<std::pair<Computation, ObserverFunction>> differential_inputs() {
  std::vector<std::pair<Computation, ObserverFunction>> out;
  Rng rng(733);
  std::vector<Computation> cs;
  // > 256 writers on a hot location: exercises multi-chunk mask sweeps
  // (two 256-anchor batches) in both engines.
  cs.push_back(workload::random_ops(gen::layered({200, 250, 200}, 0.02, rng),
                                    1, 0.55, 0.4, rng));
  // Many locations, moderate writers: exercises sharding + direct path.
  cs.push_back(workload::random_ops(gen::layered({60, 80, 80, 60}, 0.05, rng),
                                    16, 0.45, 0.45, rng));
  cs.push_back(workload::random_ops(gen::random_dag(220, 0.04, rng), 5, 0.4,
                                    0.4, rng));
  {
    proc::RandomCilkOptions opt;
    opt.target_ops = 800;
    opt.nlocations = 6;
    cs.push_back(proc::random_cilk(opt, rng));
  }
  for (Computation& c : cs) {
    WeakMemory mem(11);
    const Schedule s = greedy_schedule(c, 4);
    ObserverFunction phi = run_execution(c, s, mem).phi;
    out.emplace_back(std::move(c), std::move(phi));
  }
  return out;
}

TEST(DataPlaneParallel, LargeCheckScalarMatchesDispatched) {
  for (const auto& [c, phi] : differential_inputs()) {
    for (const bool parallel : {false, true}) {
      LargeCheckOptions scalar;
      scalar.models = kLargeCheckAll;
      scalar.parallel = parallel;
      scalar.simd = SimdLevel::kScalar;
      LargeCheckOptions dispatched = scalar;
      dispatched.simd.reset();  // whatever the CPU offers

      const LargeCheckReport a = large_check(c, phi, scalar);
      const LargeCheckReport b = large_check(c, phi, dispatched);
      EXPECT_EQ(a.simd, "scalar");
      ASSERT_EQ(a.valid_observer, b.valid_observer) << b.simd;
      EXPECT_EQ(a.checked, b.checked);
      EXPECT_EQ(a.satisfied, b.satisfied) << b.simd;
      EXPECT_EQ(a.detail, b.detail) << b.simd;
      ASSERT_EQ(a.locations.size(), b.locations.size());
      for (std::size_t i = 0; i < a.locations.size(); ++i) {
        EXPECT_EQ(a.locations[i].loc, b.locations[i].loc);
        EXPECT_EQ(a.locations[i].valid, b.locations[i].valid);
        EXPECT_EQ(a.locations[i].violated, b.locations[i].violated);
        EXPECT_EQ(a.locations[i].writers, b.locations[i].writers);
        EXPECT_EQ(a.locations[i].detail, b.locations[i].detail) << b.simd;
      }
    }
  }
}

TEST(DataPlaneParallel, RaceScanScalarMatchesDispatched) {
  using analyze::RaceScanOptions;
  for (const auto& [c, phi] : differential_inputs()) {
    (void)phi;  // race scans look only at the computation
    for (const bool parallel : {false, true}) {
      RaceScanOptions scalar;
      scalar.direct_pair_threshold = 0;  // force the mask-sweep path
      scalar.parallel = parallel;
      scalar.simd = SimdLevel::kScalar;
      RaceScanOptions dispatched = scalar;
      dispatched.simd.reset();

      analyze::RaceScanStats sa, sb;
      const std::vector<Race> a = analyze::find_races_oracle(c, scalar, &sa);
      const std::vector<Race> b =
          analyze::find_races_oracle(c, dispatched, &sb);
      EXPECT_EQ(sa.simd, "scalar");
      ASSERT_EQ(a.size(), b.size()) << sb.simd;
      for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << sb.simd << " race " << i;
    }
  }
}

}  // namespace
}  // namespace ccmm
