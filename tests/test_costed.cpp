// The memory-cost-aware simulator: faults stretch the schedule, LC is
// preserved, and zero-cost runs agree with the unit-time model.
#include "exec/costed.hpp"

#include <gtest/gtest.h>

#include "exec/backer.hpp"
#include "exec/msi.hpp"
#include "exec/sc_memory.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(Costed, ExecutesEveryNodeAndStaysLC) {
  Rng rng(1);
  for (const Computation& c :
       {workload::reduction(16), workload::matmul(3),
        workload::contended_counter(8)}) {
    BackerMemory mem;
    Rng srng(7);
    const CostedResult r = run_costed_execution(c, 4, srng, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi));
    EXPECT_TRUE(location_consistent(c, r.phi));
    EXPECT_GE(r.makespan, work_span(c).span);
  }
  (void)rng;
}

TEST(Costed, ZeroCostMatchesUnitTimeMakespanBounds) {
  const Computation c = workload::reduction(32);
  const WorkSpan ws = work_span(c);
  BackerMemory mem;
  Rng rng(3);
  CostModel free_memory{0, 0};
  const CostedResult r = run_costed_execution(c, 4, rng, mem, free_memory);
  // With zero memory cost every node takes unit time: greedy-ish bound.
  EXPECT_LE(r.makespan, 4 * (ws.work / 4 + ws.span) + 8);
  EXPECT_GE(r.makespan, ws.work / 4);
}

TEST(Costed, FaultsStretchTheMakespan) {
  const Computation c = workload::matmul(4);
  Rng r1(5), r2(5);
  BackerMemory m1, m2;
  const CostedResult cheap =
      run_costed_execution(c, 4, r1, m1, CostModel{0, 0});
  const CostedResult expensive =
      run_costed_execution(c, 4, r2, m2, CostModel{50, 50});
  EXPECT_GT(expensive.makespan, cheap.makespan);
}

TEST(Costed, FaultCountsMatchMemoryStats) {
  const Computation c = workload::stencil(8, 4);
  BackerMemory mem;
  Rng rng(9);
  const CostedResult r = run_costed_execution(c, 4, rng, mem);
  EXPECT_EQ(r.faults, r.memory_stats.fetches);
  EXPECT_EQ(r.writebacks, r.memory_stats.reconciles);
}

TEST(Costed, SingleProcessorSerialises) {
  const Computation c = workload::contended_counter(4);
  ScMemory mem;
  Rng rng(11);
  const CostedResult r = run_costed_execution(c, 1, rng, mem);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

TEST(Costed, MsiUnderCostStaysSC) {
  const Computation c = workload::reduction(8);
  MsiMemory mem;
  Rng rng(13);
  const CostedResult r = run_costed_execution(c, 4, rng, mem);
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

}  // namespace
}  // namespace ccmm
