// The Cilk front end: spawn/continuation/sync dag semantics, and the
// Nondeterminator question (is this Cilk program deterministic?) asked
// through the race detector.
#include "proc/cilk.hpp"

#include <gtest/gtest.h>

#include "exec/backer.hpp"
#include "exec/sim_machine.hpp"
#include "helpers.hpp"
#include "trace/race.hpp"

namespace ccmm::proc {
namespace {

TEST(Cilk, SerialChainWithoutSpawns) {
  CilkProgram p;
  auto main = p.root();
  main.write(0).read(0).write(1);
  const Computation c = p.finish();
  EXPECT_EQ(c.node_count(), 3u);
  EXPECT_TRUE(c.precedes(0, 2));
  EXPECT_EQ(c.dag().edge_count(), 2u);
}

TEST(Cilk, ContinuationRunsConcurrentlyWithChild) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);                       // node 0
  auto child = main.spawn();
  child.read(0);                       // node 1, pred = node 0 (spawn edge)
  main.read(0);                        // node 2 — the continuation
  main.sync();                         // node 3 joins child and continuation
  const Computation c = p.finish();
  ASSERT_EQ(c.node_count(), 4u);
  // Spawn edge and continuation both hang off the write.
  EXPECT_TRUE(c.precedes(0, 1));
  EXPECT_TRUE(c.precedes(0, 2));
  // Continuation and child are concurrent.
  EXPECT_FALSE(c.precedes(1, 2));
  EXPECT_FALSE(c.precedes(2, 1));
  // The sync node joins both.
  EXPECT_TRUE(c.precedes(1, 3));
  EXPECT_TRUE(c.precedes(2, 3));
  EXPECT_TRUE(c.op(3).is_nop());
}

TEST(Cilk, FinishImpliesSync) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto child = main.spawn();
  child.write(1);
  main.read(0);
  // No explicit sync: finish() joins the spawn tree.
  const Computation c = p.finish();
  const auto sinks = c.dag().sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_TRUE(c.op(sinks[0]).is_nop());
}

TEST(Cilk, SyncWithNoChildrenIsNoOp) {
  CilkProgram p;
  auto main = p.root();
  main.write(0).sync();  // nothing outstanding
  const Computation c = p.finish();
  EXPECT_EQ(c.node_count(), 1u);
}

TEST(Cilk, ChildThatNeverRanIsSkippedAtSync) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  (void)main.spawn();  // spawned, never used
  main.read(0);
  main.sync();
  const Computation c = p.finish();
  // No join node needed: only the serial chain exists.
  EXPECT_EQ(c.node_count(), 2u);
}

TEST(Cilk, NestedSpawnsJoinBottomUp) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto child = main.spawn();
  child.read(0);
  auto grandchild = child.spawn();
  grandchild.read(0);
  main.read(0);
  const Computation c = p.finish();
  // Everything reaches the final sink.
  const auto sinks = c.dag().sinks();
  ASSERT_EQ(sinks.size(), 1u);
  for (NodeId u = 0; u < c.node_count(); ++u) {
    if (u != sinks[0]) {
      EXPECT_TRUE(c.precedes(u, sinks[0])) << u;
    }
  }
  // Grandchild and main's continuation are concurrent.
  EXPECT_FALSE(c.precedes(3, 4) || c.precedes(4, 3));
}

TEST(Cilk, RacyProgramDetectedByNondeterminatorQuestion) {
  // Two spawned children increment the same location: a determinacy race.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto a = main.spawn();
  a.read(0).write(0);
  auto bb = main.spawn();
  bb.read(0).write(0);
  main.sync();
  main.read(0);
  const Computation c = p.finish();
  EXPECT_FALSE(is_race_free(c));
  const auto races = find_races(c);
  EXPECT_GE(races.size(), 3u);  // rw, wr, ww between the two children
}

TEST(Cilk, SyncedProgramIsRaceFree) {
  // The same increments serialized by sync between them: race-free.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto a = main.spawn();
  a.read(0).write(0);
  main.sync();
  auto bb = main.spawn();
  bb.read(0).write(0);
  main.sync();
  main.read(0);
  const Computation c = p.finish();
  EXPECT_TRUE(is_race_free(c));
}

TEST(Cilk, RunsOnBackerAndStaysLC) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  for (int i = 0; i < 4; ++i) {
    auto child = main.spawn();
    child.read(0).write(static_cast<Location>(i + 1));
  }
  main.sync();
  for (Location l = 1; l <= 4; ++l) main.read(l);
  const Computation c = p.finish();

  Rng rng(3);
  BackerMemory mem;
  const ExecutionResult r =
      run_execution(c, work_stealing_schedule(c, 4, rng), mem);
  EXPECT_TRUE(location_consistent(c, r.phi));
  // Race-free program: the post-sync reads see the children's writes.
  EXPECT_TRUE(is_race_free(c));
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (o.is_read() && o.loc >= 1) {
      EXPECT_NE(r.phi.get(o.loc, u), kBottom);
    }
  }
}

TEST(Cilk, AdoptModelsPlainCalls) {
  // caller: W0; callee (plain call): W1 W2; caller continues: R2.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto callee = main.spawn();
  callee.write(1).write(2);
  main.adopt(callee);
  main.read(2);
  const Computation c = p.finish();
  EXPECT_EQ(c.node_count(), 4u);
  // Fully serial: W0 ≺ W1 ≺ W2 ≺ R2, no join node.
  EXPECT_TRUE(c.precedes(0, 1));
  EXPECT_TRUE(c.precedes(2, 3));
  EXPECT_TRUE(is_race_free(c));
  EXPECT_EQ(c.dag().sinks().size(), 1u);
}

TEST(Cilk, AdoptScopesCalleeSyncs) {
  // The callee spawns and syncs internally; the caller's own spawned
  // child stays outstanding across the adopt and joins at the caller's
  // sync — the procedure-frame scoping real Cilk gives sync.
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  auto forked = main.spawn();
  forked.write(1);
  auto callee = main.spawn();
  auto inner = callee.spawn();
  inner.write(2);
  callee.write(3);
  callee.sync();  // joins only `inner`
  main.adopt(callee);
  main.sync();  // joins only `forked`
  const Computation c = p.finish();
  // forked's write (node 1) must be joined by the FINAL sync, i.e. it
  // has a successor; inner's write joined by the callee's sync.
  const NodeId forked_write = 1;
  EXPECT_FALSE(c.dag().succ(forked_write).empty());
  // Exactly two sync nop nodes exist.
  std::size_t nops = 0;
  for (NodeId u = 0; u < c.node_count(); ++u)
    nops += c.op(u).is_nop() ? 1 : 0;
  EXPECT_EQ(nops, 2u);
}

TEST(Cilk, AdoptValidation) {
  CilkProgram p;
  auto main = p.root();
  auto child = main.spawn();
  child.write(0);
  auto grandchild = child.spawn();
  grandchild.write(1);
  // Adopting a non-child is rejected.
  EXPECT_THROW(main.adopt(grandchild), std::logic_error);
  main.adopt(child);
  // Double adopt is rejected.
  EXPECT_THROW(main.adopt(child), std::logic_error);
}

TEST(Cilk, MutationAfterFinishRejected) {
  CilkProgram p;
  auto main = p.root();
  main.write(0);
  (void)p.finish();
  EXPECT_THROW(main.read(0), std::logic_error);
  EXPECT_THROW((void)p.finish(), std::logic_error);
}

}  // namespace
}  // namespace ccmm::proc
