// Post-mortem analysis: verifying executions after the fact, including
// from reads-only information (all a real machine reveals).
#include "trace/postmortem.hpp"

#include <gtest/gtest.h>

#include "exec/lc_memory.hpp"
#include "exec/sc_memory.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(Postmortem, VerifyExecutionReportsMembership) {
  ScMemory mem;
  const Computation c = workload::contended_counter(4);
  const ExecutionResult r = run_serial(c, mem);
  const auto report =
      verify_execution(c, r.phi, *SequentialConsistencyModel::instance());
  EXPECT_TRUE(report.valid_observer);
  EXPECT_TRUE(report.in_model);
  EXPECT_NE(report.detail.find("SC"), std::string::npos);
}

TEST(Postmortem, VerifyExecutionFlagsInvalidObserver) {
  const Computation c = workload::contended_counter(2);
  ObserverFunction bogus(c.node_count());  // writes don't observe selves
  const auto report =
      verify_execution(c, bogus, *LocationConsistencyModel::instance());
  EXPECT_FALSE(report.valid_observer);
  EXPECT_FALSE(report.in_model);
  EXPECT_NE(report.detail.find("invalid"), std::string::npos);
}

TEST(Postmortem, ReadsProjectionKeepsOnlyReadRows) {
  ScMemory mem;
  const Computation c = workload::reduction(4);
  const ExecutionResult r = run_serial(c, mem);
  const ObserverFunction reads = reads_only_projection(c, r.phi);
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    for (const Location l : c.written_locations()) {
      if (o.reads(l))
        EXPECT_EQ(reads.get(l, u), r.phi.get(l, u));
      else
        EXPECT_EQ(reads.get(l, u), kBottom);
    }
  }
}

TEST(Postmortem, ReadsFromTraceMatchesProjection) {
  ScMemory mem;
  const Computation c = workload::reduction(4);
  const ExecutionResult r = run_serial(c, mem);
  EXPECT_EQ(reads_from_trace(c, r.trace), reads_only_projection(c, r.phi));
}

TEST(Postmortem, CompletionFoundForScExecutions) {
  ScMemory mem;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Computation c =
        workload::random_ops(gen::random_dag(7, 0.25, rng), 2, 0.5, 0.4, rng);
    const ExecutionResult r = run_serial(c, mem);
    const ObserverFunction reads = reads_only_projection(c, r.phi);
    const auto result = find_model_completion(
        c, reads, *SequentialConsistencyModel::instance());
    ASSERT_TRUE(result.completion.has_value()) << seed;
    EXPECT_TRUE(SequentialConsistencyModel::instance()->contains(
        c, *result.completion));
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      if (o.is_read()) {
        EXPECT_EQ(result.completion->get(o.loc, u), reads.get(o.loc, u));
      }
    }
  }
}

TEST(Postmortem, NoCompletionForImpossibleReads) {
  // Two ordered reads that saw different writes in an impossible order:
  // r1 saw w2, then r2 (after r1) saw w1, with w1 ≺ w2. No LC completion.
  ComputationBuilder b;
  const NodeId w1 = b.write(0);
  const NodeId w2 = b.write(0, {w1});
  const NodeId r1 = b.read(0, {w2});
  b.read(0, {r1});
  const Computation c = std::move(b).build();
  ObserverFunction reads(c.node_count());
  reads.set(0, r1, w2);
  reads.set(0, 3, w1);  // r2 steps back to the overwritten write
  const auto result = find_model_completion(
      c, reads, *LocationConsistencyModel::instance());
  EXPECT_FALSE(result.completion.has_value());
  EXPECT_FALSE(result.exhausted);  // the space was fully searched
}

TEST(Postmortem, BudgetExhaustionReported) {
  Rng rng(9);
  const Computation c =
      workload::random_ops(gen::antichain(8), 1, 0.2, 0.8, rng);
  const ObserverFunction reads(c.node_count());
  const auto result = find_model_completion(
      c, reads, *SequentialConsistencyModel::instance(), /*budget=*/1);
  // With one completion tried, either it hit immediately or it reports
  // exhaustion; both are legal, but `tried` must respect the budget.
  EXPECT_LE(result.tried, 1u);
}

TEST(Postmortem, WeakExecutionsOftenHaveNoScCompletion) {
  std::size_t refuted = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    WeakMemory mem(seed);
    Rng rng(seed);
    const Computation c =
        workload::random_ops(gen::chain(7), 1, 0.5, 0.5, rng);
    const ExecutionResult r = run_serial(c, mem);
    const ObserverFunction reads = reads_only_projection(c, r.phi);
    const auto result = find_model_completion(
        c, reads, *SequentialConsistencyModel::instance());
    if (!result.completion.has_value() && !result.exhausted) ++refuted;
  }
  EXPECT_GT(refuted, 0u);
}

}  // namespace
}  // namespace ccmm
