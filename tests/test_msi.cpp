// The MSI directory protocol: invalidation-based coherence keeps one
// globally latest value per location, so executions are sequentially
// consistent — the strong baseline BACKER trades away.
#include "exec/msi.hpp"

#include <gtest/gtest.h>

#include "exec/backer.hpp"
#include "exec/sim_machine.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(Msi, SerialExecutionIsSC) {
  MsiMemory mem;
  Rng rng(1);
  const Computation c =
      workload::random_ops(gen::random_dag(12, 0.2, rng), 3, 0.4, 0.4, rng);
  const ExecutionResult r = run_serial(c, mem);
  EXPECT_TRUE(is_valid_observer(c, r.phi));
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

TEST(Msi, ParallelExecutionsStaySC) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Computation c =
        workload::random_ops(gen::random_dag(14, 0.15, rng), 3, 0.4, 0.4,
                             rng);
    for (const std::size_t procs : {2u, 4u, 8u}) {
      MsiMemory mem;
      const Schedule s = work_stealing_schedule(c, procs, rng);
      const ExecutionResult r = run_execution(c, s, mem);
      EXPECT_TRUE(sequentially_consistent(c, r.phi))
          << "seed " << seed << " procs " << procs;
    }
  }
}

TEST(Msi, InvalidationTrafficOnConflicts) {
  MsiMemory mem;
  Rng rng(5);
  const Computation c = workload::contended_counter(8);
  const Schedule s = work_stealing_schedule(c, 4, rng);
  const ExecutionResult r = run_execution(c, s, mem);
  if (s.steals > 0) {
    EXPECT_GT(mem.msi_stats().invalidations +
                  mem.msi_stats().ownership_transfers,
              0u);
  }
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

TEST(Msi, ReadsSeeTheLatestWriteGlobally) {
  // Directly: after any write, every processor's peek agrees.
  MsiMemory mem;
  Computation dummy;
  dummy.add_node(Op::nop());
  mem.bind(dummy, 4);
  mem.write(0, /*u=*/0, /*l=*/7);
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(mem.peek(p, 0, 7), 0u);
  mem.write(2, /*u=*/0, /*l=*/7);  // ownership moves to proc 2
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(mem.peek(p, 0, 7), 0u);
  EXPECT_GE(mem.msi_stats().ownership_transfers, 2u);
}

TEST(Msi, SharedReadersAreNotInvalidatedByReads) {
  MsiMemory mem;
  Computation dummy;
  dummy.add_node(Op::nop());
  mem.bind(dummy, 4);
  mem.write(0, 0, 1);
  (void)mem.read(1, 0, 1);
  (void)mem.read(2, 0, 1);
  const auto invals_before = mem.msi_stats().invalidations;
  (void)mem.read(3, 0, 1);
  EXPECT_EQ(mem.msi_stats().invalidations, invals_before);
}

TEST(Msi, UnwrittenLocationReadsBottom) {
  MsiMemory mem;
  Computation dummy;
  dummy.add_node(Op::nop());
  mem.bind(dummy, 2);
  EXPECT_EQ(mem.read(0, 0, 99), kBottom);
  EXPECT_EQ(mem.peek(1, 0, 99), kBottom);
}

TEST(Msi, StrongerThanBackerOnTheSameRun) {
  // Same computation + schedule: MSI yields SC; BACKER may not (it only
  // promises LC). Both must be LC.
  Rng rng(11);
  const Dag d = gen::antichain(10);
  Rng orng(11);
  const Computation c = workload::random_ops(d, 2, 0.3, 0.7, orng);
  const Schedule s = greedy_schedule(c, 4);
  MsiMemory msi;
  BackerMemory backer;
  const ExecutionResult a = run_execution(c, s, msi);
  const ExecutionResult b = run_execution(c, s, backer);
  EXPECT_TRUE(sequentially_consistent(c, a.phi));
  EXPECT_TRUE(location_consistent(c, b.phi));
}

}  // namespace
}  // namespace ccmm
