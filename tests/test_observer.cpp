#include "core/observer.hpp"

#include <gtest/gtest.h>

namespace ccmm {
namespace {

Computation write_read_chain() {
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  return std::move(b).build();
}

TEST(ObserverFunction, DefaultsToBottom) {
  ObserverFunction phi(3);
  EXPECT_EQ(phi.get(0, 0), kBottom);
  EXPECT_EQ(phi.get(7, 2), kBottom);
  EXPECT_EQ(phi.get(0, kBottom), kBottom);  // Φ(l, ⊥) = ⊥
  EXPECT_TRUE(phi.active_locations().empty());
}

TEST(ObserverFunction, SetAndGet) {
  ObserverFunction phi(3);
  phi.set(1, 2, 0);
  EXPECT_EQ(phi.get(1, 2), 0u);
  EXPECT_EQ(phi.get(1, 0), kBottom);
  EXPECT_EQ(phi.active_locations(), std::vector<Location>{1});
  phi.set(1, 2, kBottom);
  EXPECT_TRUE(phi.active_locations().empty());
}

TEST(ObserverFunction, EqualityIgnoresAllBottomColumns) {
  ObserverFunction a(2), b(2);
  a.set(5, 0, kBottom);  // creates an all-⊥ column
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  a.set(5, 0, 1);
  EXPECT_FALSE(a == b);
}

TEST(ObserverFunction, EqualityDifferentSizes) {
  EXPECT_FALSE(ObserverFunction(2) == ObserverFunction(3));
}

TEST(ObserverFunction, RestrictionAndExtends) {
  ObserverFunction big(3);
  big.set(0, 0, 0);
  big.set(0, 1, 0);
  big.set(0, 2, 2);
  const ObserverFunction small = big.restricted(2);
  EXPECT_EQ(small.node_count(), 2u);
  EXPECT_EQ(small.get(0, 0), 0u);
  EXPECT_EQ(small.get(0, 1), 0u);
  EXPECT_TRUE(big.extends(small));

  ObserverFunction other(2);
  other.set(0, 1, 1);
  EXPECT_FALSE(big.extends(other));
}

TEST(ObserverFunction, OutOfRangeThrows) {
  ObserverFunction phi(2);
  EXPECT_THROW(phi.set(0, 5, 0), std::logic_error);
  EXPECT_THROW(phi.set(0, 0, 9), std::logic_error);
  EXPECT_THROW((void)phi.get(0, 5), std::logic_error);
}

// Definition 2 validation.

TEST(ValidateObserver, AcceptsLastWriterStyleAssignment) {
  const Computation c = write_read_chain();
  ObserverFunction phi(2);
  phi.set(0, 0, 0);
  phi.set(0, 1, 0);
  EXPECT_TRUE(is_valid_observer(c, phi));
}

TEST(ValidateObserver, Condition21_ObservedMustWriteThatLocation) {
  const Computation c = write_read_chain();
  ObserverFunction phi(2);
  phi.set(0, 0, 0);
  phi.set(0, 1, 1);  // node 1 is a read, not a write
  const auto r = validate_observer(c, phi);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("2.1"), std::string::npos);
}

TEST(ValidateObserver, Condition21_WrongLocation) {
  ComputationBuilder b;
  b.write(0);
  b.nop();
  const Computation c = std::move(b).build();
  ObserverFunction phi(2);
  phi.set(0, 0, 0);
  phi.set(1, 1, 0);  // node 0 writes location 0, not 1
  EXPECT_FALSE(is_valid_observer(c, phi));
}

TEST(ValidateObserver, Condition22_NoObservingTheFuture) {
  ComputationBuilder b;
  const NodeId r = b.read(0);
  b.write(0, {r});  // read precedes the write
  const Computation c = std::move(b).build();
  ObserverFunction phi(2);
  phi.set(0, 1, 1);
  phi.set(0, 0, 1);  // the read observes its own successor
  const auto res = validate_observer(c, phi);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("2.2"), std::string::npos);
}

TEST(ValidateObserver, ConcurrentWriteMayBeObserved) {
  // Observing a dag-unrelated ("future-in-time but concurrent") write is
  // legal: condition 2.2 only forbids observing a *successor*.
  ComputationBuilder b;
  b.read(0);
  b.write(0);
  const Computation c = std::move(b).build();
  ObserverFunction phi(2);
  phi.set(0, 1, 1);
  phi.set(0, 0, 1);
  EXPECT_TRUE(is_valid_observer(c, phi));
}

TEST(ValidateObserver, Condition23_WriteObservesItself) {
  const Computation c = write_read_chain();
  ObserverFunction phi(2);
  // Write node 0 left at ⊥.
  phi.set(0, 1, 0);
  const auto r = validate_observer(c, phi);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("2.3"), std::string::npos);
}

TEST(ValidateObserver, SizeMismatchRejected) {
  const Computation c = write_read_chain();
  EXPECT_FALSE(is_valid_observer(c, ObserverFunction(3)));
}

TEST(ValidateObserver, AllBottomIsValidWhenNothingWritten) {
  ComputationBuilder b;
  b.read(0);
  b.nop();
  const Computation c = std::move(b).build();
  EXPECT_TRUE(is_valid_observer(c, ObserverFunction(2)));
}

TEST(ValidateObserver, EmptyComputation) {
  EXPECT_TRUE(is_valid_observer(Computation(), ObserverFunction(0)));
}

}  // namespace
}  // namespace ccmm
