// Differential tests for the incremental per-location kernel
// (trace/loc_incremental.hpp): after consuming any prefix of the event
// stream, finalize_into must produce verdicts byte-identical — valid,
// violated mask, AND detail string — to a fresh state that consumed
// the same prefix in one batch advance. The engine-level chunk fuzz
// then pins that large_check's verdicts are independent of the chunk
// size the stream was cut into, and the *Parallel* test runs the
// pipelined ring under TSan.
#include "trace/loc_incremental.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dag/generators.hpp"
#include "dag/sweep.hpp"
#include "enumerate/sampling.hpp"
#include "enumerate/universe.hpp"
#include "exec/sc_memory.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "proc/random_program.hpp"
#include "trace/large_check.hpp"
#include "trace/loc_kernel.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

/// The shared-context setup large_check performs, reproduced for
/// driving LocStates directly: topological order, both CSRs, the
/// location grouping, the writer→block/location maps and a lazy
/// oracle. Holds one task per location the engine would check (plus
/// all-⊥ stored columns, which both sides of the differential treat
/// identically).
struct KernelHarness {
  struct Task {
    Location loc = 0;
    const std::vector<NodeId>* col = nullptr;
    std::span<const NodeId> writers;
  };

  const Computation* c;
  std::vector<NodeId> topo;
  std::vector<std::uint32_t> posv;
  Csr pred;
  Csr succ;
  LocationGroups groups;
  std::vector<std::uint32_t> wblock;
  std::vector<std::uint32_t> wloc;
  LazyOracle oracle;
  LocKernelCtx ctx;
  std::vector<Task> tasks;

  KernelHarness(const Computation& comp, const ObserverFunction& phi,
                std::uint32_t models, std::uint32_t checked, bool fresh)
      : c(&comp), oracle([&comp] {
          return make_oracle(comp.dag(), comp.sp_structure().get(), {});
        }) {
    const std::size_t n = comp.node_count();
    if (comp.dag().ids_topological()) {
      topo.resize(n);
      std::iota(topo.begin(), topo.end(), NodeId{0});
    } else {
      topo = comp.dag().topological_order();
      posv.resize(n);
      for (std::uint32_t p = 0; p < n; ++p) posv[topo[p]] = p;
    }
    pred = make_pred_csr(comp.dag());
    succ = make_succ_csr(comp.dag());
    groups = group_location_accesses(comp);
    wblock.assign(n, 0);
    wloc.assign(n, 0);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const std::span<const NodeId> wr = groups.writers(gi);
      for (std::size_t i = 0; i < wr.size(); ++i) {
        wblock[wr[i]] = static_cast<std::uint32_t>(i) + 1;
        wloc[wr[i]] = groups.locs[gi];
      }
    }
    ctx = LocKernelCtx{&comp,
                       &oracle,
                       &topo,
                       posv.empty() ? nullptr : posv.data(),
                       &pred,
                       &succ,
                       wblock.data(),
                       wloc.data(),
                       models,
                       checked,
                       fresh,
                       SimdLevel::kScalar};

    const std::vector<Location>& stored = phi.stored_locations();
    std::vector<Location> all;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      if (!groups.writers(gi).empty()) all.push_back(groups.locs[gi]);
    all.insert(all.end(), stored.begin(), stored.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    for (const Location l : all) {
      const auto si = std::lower_bound(stored.begin(), stored.end(), l);
      const std::vector<NodeId>* col =
          si != stored.end() && *si == l
              ? &phi.stored_column(
                    static_cast<std::size_t>(si - stored.begin()))
              : nullptr;
      std::span<const NodeId> writers;
      const auto gi = std::lower_bound(groups.locs.begin(),
                                       groups.locs.end(), l);
      if (gi != groups.locs.end() && *gi == l)
        writers = groups.writers(
            static_cast<std::size_t>(gi - groups.locs.begin()));
      tasks.push_back(Task{l, col, writers});
    }
  }
};

/// Consume the stream in `chunk`-sized advances, and after EVERY chunk
/// compare the incremental verdict against a fresh state that consumed
/// the same prefix in one batch call.
void expect_prefix_equivalence(const Computation& c,
                               const ObserverFunction& phi,
                               std::uint32_t chunk) {
  const KernelHarness h(c, phi, kLargeCheckAll, kLargeCheckExt, true);
  const auto n = static_cast<std::uint32_t>(c.node_count());
  for (const KernelHarness::Task& t : h.tasks) {
    LocArena inc_arena;
    LocState inc;
    inc.init(h.ctx, t.loc, t.col, t.writers);
    for (std::uint32_t p0 = 0; p0 < n; p0 += chunk) {
      const std::uint32_t p1 = std::min(n, p0 + chunk);
      inc.advance(p0, p1, inc_arena);

      LocArena batch_arena;
      LocState batch;
      batch.init(h.ctx, t.loc, t.col, t.writers);
      batch.advance(0, p1, batch_arena);

      LocationCheck a;
      LocationCheck b;
      inc.finalize_into(a, inc_arena);
      batch.finalize_into(b, batch_arena);
      ASSERT_EQ(a.valid, b.valid)
          << "loc " << t.loc << " prefix " << p1 << ": " << a.detail
          << " vs " << b.detail;
      EXPECT_EQ(a.violated, b.violated)
          << "loc " << t.loc << " prefix " << p1;
      EXPECT_EQ(a.detail, b.detail) << "loc " << t.loc << " prefix " << p1;
      EXPECT_EQ(a.writers, b.writers);
    }
  }
}

/// Corrupt a few observer entries: arbitrary targets (⊥, random nodes,
/// unwritten locations) drive the 2.1/2.2/2.3 failure paths and the
/// model-violating quotients.
ObserverFunction corrupt(const Computation& c, ObserverFunction phi,
                         Rng& rng) {
  const std::size_t n = c.node_count();
  if (n == 0) return phi;
  const std::vector<Location> locs = c.written_locations();
  for (int k = 0; k < 2; ++k) {
    const Location l = locs.empty() || rng.chance(0.2)
                           ? Location{7}
                           : locs[rng.below(locs.size())];
    const auto u = static_cast<NodeId>(rng.below(n));
    const NodeId v =
        rng.chance(0.3) ? kBottom : static_cast<NodeId>(rng.below(n));
    phi.set(l, u, v);
  }
  return phi;
}

TEST(LocIncremental, PrefixMatchesBatchOnExhaustiveUniverses) {
  // Every (computation, valid observer) pair of the small universes the
  // repo's other differentials sweep, at chunk sizes that put the
  // boundaries everywhere.
  UniverseSpec one;
  one.max_nodes = 4;
  one.nlocations = 1;
  UniverseSpec two;
  two.max_nodes = 3;
  two.nlocations = 2;
  for (const UniverseSpec& spec : {one, two}) {
    for_each_pair(spec,
                  [&](const Computation& c, const ObserverFunction& phi) {
                    for (const std::uint32_t chunk : {1u, 2u, 3u})
                      expect_prefix_equivalence(c, phi, chunk);
                    return true;
                  });
  }
}

TEST(LocIncremental, PrefixMatchesBatchOnExhaustiveSixNodeComputations) {
  // Exhaustive computations up to 6 nodes (nop-free, ≤2 writers per
  // location keeps the sweep in seconds); observers are sampled —
  // alternating valid and corrupted — since the full pair universe at
  // this size is astronomically large.
  UniverseSpec spec;
  spec.max_nodes = 6;
  spec.nlocations = 1;
  spec.include_nop = false;
  spec.max_writes_per_location = 2;
  Rng rng(2026);
  std::size_t i = 0;
  for_each_computation(spec, [&](const Computation& c) {
    ObserverFunction phi = random_observer(c, rng);
    if (++i % 2 == 0) {
      expect_prefix_equivalence(c, phi, 2);
    } else {
      expect_prefix_equivalence(c, corrupt(c, std::move(phi), rng), 3);
    }
    return true;
  });
}

TEST(LocIncremental, PrefixMatchesBatchOnGeneratedPrograms) {
  Rng rng(97);
  std::vector<std::pair<Computation, ObserverFunction>> instances;
  {
    const Computation c = workload::random_ops(gen::random_dag(60, 0.1, rng),
                                               5, 0.45, 0.45, rng);
    WeakMemory mem(3);
    const Schedule s = greedy_schedule(c, 3);
    auto phi = run_execution(c, s, mem).phi;
    instances.emplace_back(c, phi);
    instances.emplace_back(c, corrupt(c, std::move(phi), rng));
  }
  {
    proc::RandomCilkOptions opt;
    opt.target_ops = 80;
    opt.nlocations = 4;
    const Computation c = proc::random_cilk(opt, rng);
    WeakMemory mem(7);
    const Schedule s = greedy_schedule(c, 2);
    instances.emplace_back(c, run_execution(c, s, mem).phi);
  }
  {
    const Computation c = workload::random_ops(
        gen::layered({5, 7, 7, 5}, 0.3, rng), 6, 0.4, 0.4, rng);
    ScMemory mem;
    auto phi = run_serial(c, mem).phi;
    instances.emplace_back(c, corrupt(c, std::move(phi), rng));
  }
  for (const auto& [c, phi] : instances)
    for (const std::uint32_t chunk : {1u, 7u, 64u})
      expect_prefix_equivalence(c, phi, chunk);
}

TEST(LocIncremental, EngineChunkFuzzMatchesDefault) {
  // The public engine must produce identical reports however the
  // stream is cut: options.chunk_nodes fuzzes the pipeline's chunking
  // across the sizes the incremental kernel's batching cares about.
  Rng rng(113);
  std::vector<std::pair<Computation, ObserverFunction>> instances;
  {
    proc::RandomCilkOptions opt;
    opt.target_ops = 3000;
    opt.nlocations = 8;
    const Computation c = proc::random_cilk(opt, rng);
    ScMemory mem;
    auto phi = run_serial(c, mem).phi;
    instances.emplace_back(c, phi);
    instances.emplace_back(c, corrupt(c, std::move(phi), rng));
  }
  {
    const Computation c = workload::random_ops(
        gen::random_dag(500, 0.02, rng), 10, 0.4, 0.4, rng);
    WeakMemory mem(5);
    const Schedule s = greedy_schedule(c, 4);
    instances.emplace_back(c, run_execution(c, s, mem).phi);
  }
  for (const auto& [c, phi] : instances) {
    LargeCheckOptions base;
    base.models = kLargeCheckExt;
    base.parallel = false;
    const LargeCheckReport want = large_check(c, phi, base);
    for (const std::uint32_t chunk : {1u, 7u, 64u, 4096u}) {
      LargeCheckOptions opt = base;
      opt.chunk_nodes = chunk;
      const LargeCheckReport got = large_check(c, phi, opt);
      ASSERT_EQ(got.valid_observer, want.valid_observer) << chunk;
      EXPECT_EQ(got.satisfied, want.satisfied) << chunk;
      EXPECT_EQ(got.detail, want.detail) << chunk;
      ASSERT_EQ(got.locations.size(), want.locations.size());
      for (std::size_t i = 0; i < got.locations.size(); ++i) {
        EXPECT_EQ(got.locations[i].valid, want.locations[i].valid);
        EXPECT_EQ(got.locations[i].violated, want.locations[i].violated);
        EXPECT_EQ(got.locations[i].detail, want.locations[i].detail);
      }
    }
  }
}

TEST(LocIncrementalParallel, PipelinedRingMatchesSerial) {
  // Big enough to clear the pipeline threshold, with a pool of its own
  // so the test exercises the ring even on single-core CI; runs under
  // TSan in the sanitizer job. The corrupted variant sends failure
  // records (not just blocks) across the ring.
  Rng rng(131);
  proc::RandomCilkOptions opt;
  opt.target_ops = 40'000;
  opt.nlocations = 8;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  const ObserverFunction clean = run_serial(c, mem).phi;
  const ObserverFunction bad = corrupt(c, ObserverFunction(clean), rng);

  ThreadPool pool(4);
  for (const ObserverFunction* phi : {&clean, &bad}) {
    LargeCheckOptions par;
    par.models = kLargeCheckExt;
    par.parallel = true;
    par.pool = &pool;
    par.chunk_nodes = 1 << 12;  // many chunks through the ring
    LargeCheckOptions seq = par;
    seq.parallel = false;
    const LargeCheckReport a = large_check(c, *phi, par);
    const LargeCheckReport b = large_check(c, *phi, seq);
    EXPECT_TRUE(a.pipelined);
    ASSERT_EQ(a.valid_observer, b.valid_observer) << a.detail;
    EXPECT_EQ(a.satisfied, b.satisfied);
    ASSERT_EQ(a.locations.size(), b.locations.size());
    for (std::size_t i = 0; i < a.locations.size(); ++i) {
      EXPECT_EQ(a.locations[i].loc, b.locations[i].loc);
      EXPECT_EQ(a.locations[i].valid, b.locations[i].valid);
      EXPECT_EQ(a.locations[i].violated, b.locations[i].violated);
      EXPECT_EQ(a.locations[i].detail, b.locations[i].detail);
    }
  }
}

TEST(LocIncremental, LazyOracleBuildsOnlyWhenQueried) {
  // A serial trace observer points every observation backwards, so the
  // position filter discharges all 2.2 checks and the oracle is never
  // built; a forward-pointing corruption forces the build.
  Rng rng(151);
  proc::RandomCilkOptions opt;
  opt.target_ops = 3000;
  opt.nlocations = 4;
  const Computation c = proc::random_cilk(opt, rng);
  ScMemory mem;
  const ObserverFunction phi = run_serial(c, mem).phi;
  LargeCheckOptions lopt;
  lopt.models = kSuiteLC;
  const LargeCheckReport clean = large_check(c, phi, lopt);
  EXPECT_EQ(clean.oracle_kind, "sp-order");
  EXPECT_EQ(clean.oracle_memory_bytes, 0u);
  EXPECT_EQ(clean.oracle_build_millis, 0.0);

  // Point an early read at the LAST writer of its location: the pair
  // survives the position filter and must consult the oracle.
  ObserverFunction fwd = phi;
  const std::vector<Location> locs = c.written_locations();
  ASSERT_FALSE(locs.empty());
  bool planted = false;
  for (const Location l : locs) {
    const std::vector<NodeId> ws = c.writers(l);
    if (ws.size() < 2) continue;
    for (NodeId u = 0; u < c.node_count() && !planted; ++u) {
      const Op o = c.op(u);
      if (o.is_read() && o.loc == l && u < ws.back()) {
        fwd.set(l, u, ws.back());
        planted = true;
      }
    }
    if (planted) break;
  }
  ASSERT_TRUE(planted);
  const LargeCheckReport forced = large_check(c, fwd, lopt);
  EXPECT_EQ(forced.oracle_kind, "sp-order");
  EXPECT_GT(forced.oracle_memory_bytes, 0u);
}

}  // namespace
}  // namespace ccmm
