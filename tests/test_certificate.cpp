// DRF ⇒ agreement certificates (analyze/certificate.hpp): construction
// on race-free computations, refusal on racy ones, tamper detection,
// JSON round-trips, and the streaming lint pipeline integration
// (trace/lint_pipeline.hpp).
#include <gtest/gtest.h>

#include <string>

#include "analyze/certificate.hpp"
#include "exec/sc_memory.hpp"
#include "exec/sim_machine.hpp"
#include "exec/workload.hpp"
#include "proc/cilk.hpp"
#include "trace/lint_pipeline.hpp"
#include "trace/race.hpp"

namespace ccmm {
namespace {

using analyze::CertifyOptions;
using analyze::DrfCertificate;

/// Fork/join program where every strand owns its locations: parallel
/// but race-free, so the paper's agreement theorem applies.
Computation disjoint_strands(std::size_t strands, std::size_t ops) {
  proc::CilkProgram p;
  auto main = p.root();
  std::vector<proc::CilkProgram::Strand> children;
  for (std::size_t s = 0; s < strands; ++s) {
    auto child = main.spawn();
    for (std::size_t k = 0; k < ops; ++k) {
      const Location l = static_cast<Location>(s);
      child.write(l);
      child.read(l);
    }
    children.push_back(child);
  }
  main.sync();
  for (std::size_t s = 0; s < strands; ++s)
    main.read(static_cast<Location>(s));
  return p.finish();
}

TEST(Certificate, RaceFreeComputationCertifies) {
  const Computation c = workload::reduction(8);
  ASSERT_TRUE(find_races(c).empty());
  std::string why;
  const auto cert = analyze::make_drf_certificate(c, {}, &why);
  ASSERT_TRUE(cert.has_value()) << why;
  EXPECT_EQ(cert->nodes, c.node_count());
  EXPECT_EQ(cert->models, analyze::kDrfModelMask);
  EXPECT_EQ(cert->fingerprint, analyze::computation_fingerprint(c));
  EXPECT_GT(cert->sampled_prefixes, 0u);
  EXPECT_GT(cert->checked_observers, 0u);

  const analyze::CertificateCheck check =
      analyze::verify_drf_certificate(c, *cert);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(Certificate, ParallelDisjointStrandsCertify) {
  const Computation c = disjoint_strands(4, 3);
  std::string why;
  const auto cert = analyze::make_drf_certificate(c, {}, &why);
  ASSERT_TRUE(cert.has_value()) << why;
  EXPECT_TRUE(analyze::verify_drf_certificate(c, *cert).ok);
}

TEST(Certificate, RacyComputationRefused) {
  const Computation c = workload::contended_counter(3);
  ASSERT_FALSE(find_races(c).empty());
  std::string why;
  const auto cert = analyze::make_drf_certificate(c, {}, &why);
  EXPECT_FALSE(cert.has_value());
  EXPECT_NE(why.find("race"), std::string::npos) << why;
}

TEST(Certificate, FingerprintTamperDetected) {
  const Computation c = workload::reduction(4);
  auto cert = analyze::make_drf_certificate(c);
  ASSERT_TRUE(cert.has_value());
  DrfCertificate bad = *cert;
  bad.fingerprint ^= 1;
  const analyze::CertificateCheck check =
      analyze::verify_drf_certificate(c, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.reason.empty());
}

TEST(Certificate, WrongComputationRejected) {
  const Computation a = workload::reduction(4);
  const Computation b = workload::reduction(8);
  const auto cert = analyze::make_drf_certificate(a);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(analyze::verify_drf_certificate(b, *cert).ok);
}

TEST(Certificate, RacyComputationFailsForeignCertificate) {
  // A certificate minted for a race-free computation must not validate
  // a racy computation even if structure counts happen to be close.
  const Computation free_c = workload::reduction(4);
  const auto cert = analyze::make_drf_certificate(free_c);
  ASSERT_TRUE(cert.has_value());
  const Computation racy = workload::contended_counter(2);
  EXPECT_FALSE(analyze::verify_drf_certificate(racy, *cert).ok);
}

TEST(Certificate, JsonRoundTrip) {
  const Computation c = disjoint_strands(3, 2);
  const auto cert = analyze::make_drf_certificate(c);
  ASSERT_TRUE(cert.has_value());
  const std::string json = cert->to_json();
  std::string why;
  const auto parsed = analyze::parse_drf_certificate(json, &why);
  ASSERT_TRUE(parsed.has_value()) << why;
  EXPECT_EQ(parsed->version, cert->version);
  EXPECT_EQ(parsed->fingerprint, cert->fingerprint);
  EXPECT_EQ(parsed->nodes, cert->nodes);
  EXPECT_EQ(parsed->edges, cert->edges);
  EXPECT_EQ(parsed->locations, cert->locations);
  EXPECT_EQ(parsed->writes, cert->writes);
  EXPECT_EQ(parsed->reads, cert->reads);
  EXPECT_EQ(parsed->oracle_kind, cert->oracle_kind);
  EXPECT_EQ(parsed->models, cert->models);
  EXPECT_EQ(parsed->seed, cert->seed);
  EXPECT_EQ(parsed->sampled_prefixes, cert->sampled_prefixes);
  EXPECT_EQ(parsed->checked_observers, cert->checked_observers);
  // And the parsed copy still verifies.
  EXPECT_TRUE(analyze::verify_drf_certificate(c, *parsed).ok);
}

TEST(Certificate, MalformedJsonRejected) {
  std::string why;
  EXPECT_FALSE(analyze::parse_drf_certificate("", &why).has_value());
  EXPECT_FALSE(analyze::parse_drf_certificate("{}", &why).has_value());
  EXPECT_FALSE(
      analyze::parse_drf_certificate("not json at all", &why).has_value());
}

TEST(Certificate, SeedReplayIsDeterministic) {
  const Computation c = disjoint_strands(4, 2);
  CertifyOptions opt;
  opt.seed = 1234;
  const auto a = analyze::make_drf_certificate(c, opt);
  const auto b = analyze::make_drf_certificate(c, opt);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->sampled_prefixes, b->sampled_prefixes);
  EXPECT_EQ(a->checked_observers, b->checked_observers);
  EXPECT_EQ(a->to_json(), b->to_json());
}

// ---------------------------------------------------------------------
// Streaming pipeline integration.

TEST(LintPipeline, RaceFreeTraceGetsCertificate) {
  const Computation c = disjoint_strands(3, 2);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  const analyze::TraceLintResult r = analyze::analyze_trace(c, run.trace);
  EXPECT_TRUE(r.trace_ok);
  ASSERT_TRUE(r.report.has_value());
  EXPECT_TRUE(r.report->valid_observer);
  EXPECT_EQ(r.stats.races, 0u);
  ASSERT_TRUE(r.certificate.has_value());
  EXPECT_TRUE(analyze::verify_drf_certificate(c, *r.certificate).ok);
  EXPECT_EQ(analyze::count_severities(r.diagnostics).errors, 0u);
  EXPECT_NE(r.to_string().find("race-free"), std::string::npos);
}

TEST(LintPipeline, RacyTraceGetsDiagnosticsNoCertificate) {
  const Computation c = workload::contended_counter(3);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  const analyze::TraceLintResult r = analyze::analyze_trace(c, run.trace);
  EXPECT_TRUE(r.trace_ok);
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_GT(r.stats.races, 0u);
  EXPECT_EQ(r.stats.engine, RaceEngine::kOracle);
  EXPECT_GT(analyze::count_severities(r.diagnostics).errors, 0u);
}

TEST(LintPipeline, CertifyCanBeDisabled) {
  const Computation c = workload::reduction(4);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  analyze::TraceLintOptions opt;
  opt.certify = false;
  const analyze::TraceLintResult r = analyze::analyze_trace(c, run.trace, opt);
  EXPECT_TRUE(r.trace_ok);
  EXPECT_FALSE(r.certificate.has_value());
}

TEST(LintPipeline, InconsistentTraceReported) {
  const Computation c = workload::reduction(4);
  ScMemory mem;
  ExecutionResult run = run_serial(c, mem);
  ASSERT_FALSE(run.trace.events.empty());
  run.trace.events.pop_back();  // now one event short
  const analyze::TraceLintResult r = analyze::analyze_trace(c, run.trace);
  EXPECT_FALSE(r.trace_ok);
  EXPECT_FALSE(r.report.has_value());
  EXPECT_EQ(analyze::count_severities(r.diagnostics).errors, 1u);
  EXPECT_EQ(r.diagnostics[0].pass, "trace");
}

TEST(LintPipeline, TraceSharpenedLintsFire) {
  // x is written only on one branch; the other branch's read observes ⊥
  // in the serial execution even though the location has a writer. The
  // unread write to y is dead in the trace.
  proc::CilkProgram p;
  auto main = p.root();
  auto a = main.spawn();
  a.read(0);   // runs before main's write in the serial order
  main.write(0);
  main.sync();
  main.write(1);  // nobody reads location 1
  const Computation c = p.finish();
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  const analyze::TraceLintResult r = analyze::analyze_trace(c, run.trace);
  EXPECT_TRUE(r.trace_ok);
  bool saw_uninit = false;
  bool saw_dead = false;
  for (const analyze::Diagnostic& d : r.diagnostics) {
    if (d.pass == "trace-uninit-read") saw_uninit = true;
    if (d.pass == "trace-dead-write") saw_dead = true;
  }
  EXPECT_TRUE(saw_dead);
  // The serial elision runs the spawned child before the continuation,
  // so the child's read really observes ⊥ in this trace.
  EXPECT_TRUE(saw_uninit);
}

}  // namespace
}  // namespace ccmm
