// Online maintainers: constructible models have online algorithms
// (SerialMaintainer stays in SC forever); nonconstructible models defeat
// every maintainer on the witness reveal sequence.
#include "construct/online.hpp"

#include <gtest/gtest.h>

#include "construct/witness.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(Online, SerialMaintainerStaysInScForever) {
  SerialMaintainer m;
  Rng rng(1);
  for (int round = 0; round < 15; ++round) {
    const Dag d = gen::random_dag(9, 0.25, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const OnlineRun run =
        run_online(m, c, SequentialConsistencyModel::instance().get());
    EXPECT_TRUE(run.valid);
    EXPECT_EQ(run.first_violation_step, SIZE_MAX);
    EXPECT_TRUE(sequentially_consistent(c, run.phi));
    // ... and hence in every weaker model.
    EXPECT_TRUE(location_consistent(c, run.phi));
    EXPECT_TRUE(qdag_consistent(c, run.phi, DagPred::kNN));
  }
}

TEST(Online, SerialMaintainerOnWorkloads) {
  SerialMaintainer m;
  for (const Computation& c :
       {workload::reduction(8), workload::contended_counter(5),
        workload::stencil(3, 3)}) {
    const OnlineRun run =
        run_online(m, c, LocationConsistencyModel::instance().get());
    EXPECT_TRUE(run.valid);
    EXPECT_EQ(run.first_violation_step, SIZE_MAX);
  }
}

TEST(Online, GreedyStaleMaintainerStaysInWwForever) {
  // WW is constructible: the greedy maintainer targeting WW never gets
  // stuck, and it is lazier than serial (it leaves reads at ⊥ whenever
  // WW lets it — which is always, for fresh locations).
  GreedyStaleMaintainer m(QDagModel::ww());
  Rng rng(2);
  for (int round = 0; round < 10; ++round) {
    const Dag d = gen::random_dag(7, 0.3, rng);
    const Computation c = workload::random_ops(d, 1, 0.5, 0.5, rng);
    const OnlineRun run = run_online(m, c, QDagModel::ww().get());
    EXPECT_TRUE(run.valid);
    EXPECT_EQ(run.first_violation_step, SIZE_MAX) << c.to_string();
  }
}

TEST(Online, GreedyStaleMaintainerGetsStuckOnNn) {
  // NN is NOT constructible: drive the greedy NN maintainer through the
  // Figure-4 reveal sequence. It answers the prefix greedily; whatever
  // it committed, the audit shows either an earlier deviation from the
  // witness Φ (a different but still legal position) or a violation at
  // the final step. To pin the outcome, use the maintainer-independent
  // game instead:
  const NonconstructibilityWitness w = figure4_witness();
  EXPECT_TRUE(play_nonconstructibility_game(*QDagModel::nn(), w));
}

TEST(Online, GameRejectsNonWitnesses) {
  const NonconstructibilityWitness w = figure4_witness();
  // LC never contained the pair: not a defeat of LC.
  EXPECT_FALSE(
      play_nonconstructibility_game(*LocationConsistencyModel::instance(), w));
  // The write extension is answerable: not a defeat either.
  NonconstructibilityWitness with_write = w;
  with_write.extension = w.c.extend(Op::write(0), {2, 3});
  EXPECT_FALSE(play_nonconstructibility_game(*QDagModel::nn(), with_write));
}

TEST(Online, RunRejectsUnsortedIds) {
  Dag d(2);
  d.add_edge(1, 0);
  const Computation c(d, {Op::nop(), Op::nop()});
  SerialMaintainer m;
  EXPECT_THROW((void)run_online(m, c), std::logic_error);
}

TEST(Online, MaintainedPhiMatchesSerialMemory) {
  // The serial maintainer is the online face of the SC memory: on the
  // same arrival order they produce the same observer function for
  // accessed locations.
  SerialMaintainer m;
  const Computation c = workload::contended_counter(4);
  const OnlineRun run = run_online(m, c);
  const ObserverFunction w = last_writer(c, c.dag().topological_order());
  for (const Location l : c.written_locations())
    for (NodeId u = 0; u < c.node_count(); ++u)
      EXPECT_EQ(run.phi.get(l, u), w.get(l, u));
}

}  // namespace
}  // namespace ccmm
