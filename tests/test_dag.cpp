#include "dag/dag.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

Dag diamond4() {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(Dag, EmptyGraph) {
  Dag d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.node_count(), 0u);
  EXPECT_EQ(d.edge_count(), 0u);
  EXPECT_TRUE(d.is_acyclic());
  EXPECT_TRUE(d.topological_order().empty());
}

TEST(Dag, AddEdgeIsIdempotent) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  EXPECT_EQ(d.edge_count(), 1u);
}

TEST(Dag, RejectsSelfLoopAndOutOfRange) {
  Dag d(2);
  EXPECT_THROW(d.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(d.add_edge(0, 5), std::logic_error);
}

TEST(Dag, PrecedesIsTransitiveClosure) {
  const Dag d = diamond4();
  EXPECT_TRUE(d.precedes(0, 3));
  EXPECT_TRUE(d.precedes(0, 1));
  EXPECT_FALSE(d.precedes(1, 2));
  EXPECT_FALSE(d.precedes(3, 0));
  EXPECT_FALSE(d.precedes(1, 1));  // strict
  EXPECT_TRUE(d.preceq(1, 1));
}

TEST(Dag, BottomPrecedesEverything) {
  const Dag d = diamond4();
  EXPECT_TRUE(d.precedes(kBottom, 0));
  EXPECT_TRUE(d.precedes(kBottom, 3));
  EXPECT_FALSE(d.precedes(0, kBottom));
  EXPECT_FALSE(d.precedes(kBottom, kBottom));
}

TEST(Dag, DescendantsAndAncestors) {
  const Dag d = diamond4();
  EXPECT_EQ(d.descendants(0).count(), 3u);
  EXPECT_EQ(d.ancestors(3).count(), 3u);
  EXPECT_EQ(d.descendants(3).count(), 0u);
  EXPECT_EQ(d.ancestors(0).count(), 0u);
  EXPECT_TRUE(d.descendants(1).test(3));
}

TEST(Dag, BetweenIsOpenInterval) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  const DynBitset mid = d.between(0, 3);
  EXPECT_EQ(mid.count(), 2u);
  EXPECT_TRUE(mid.test(1));
  EXPECT_TRUE(mid.test(2));
  // ⊥ as the lower end: every strict ancestor of the upper end.
  EXPECT_EQ(d.between(kBottom, 3).count(), 3u);
}

TEST(Dag, CycleDetection) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_TRUE(d.is_acyclic());
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_THROW(d.topological_order(), std::logic_error);
}

TEST(Dag, SourcesAndSinks) {
  const Dag d = diamond4();
  EXPECT_EQ(d.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(d.sinks(), std::vector<NodeId>{3});
}

TEST(Dag, TopologicalOrderIsCanonicalAndValid) {
  const Dag d = diamond4();
  const auto order = d.topological_order();
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Dag, DownwardClosedSets) {
  const Dag d = diamond4();
  DynBitset keep(4);
  keep.set(0);
  keep.set(1);
  EXPECT_TRUE(d.is_downward_closed(keep));
  DynBitset bad(4);
  bad.set(3);
  EXPECT_FALSE(d.is_downward_closed(bad));
  DynBitset empty(4);
  EXPECT_TRUE(d.is_downward_closed(empty));
}

TEST(Dag, InducedSubgraphRemapsIds) {
  const Dag d = diamond4();
  DynBitset keep(4);
  keep.set(0);
  keep.set(2);
  keep.set(3);
  std::vector<NodeId> map;
  const Dag sub = d.induced(keep, &map);
  EXPECT_EQ(sub.node_count(), 3u);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], kBottom);
  EXPECT_EQ(map[2], 1u);
  EXPECT_EQ(map[3], 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));  // 0 -> 2
  EXPECT_TRUE(sub.has_edge(1, 2));  // 2 -> 3
  EXPECT_EQ(sub.edge_count(), 2u);  // the 1 -> 3 edge is dropped with 1
}

TEST(Dag, RelaxationChecks) {
  const Dag full = diamond4();
  Dag fewer(4);
  fewer.add_edge(0, 1);
  EXPECT_TRUE(fewer.is_relaxation_of(full));
  EXPECT_FALSE(full.is_relaxation_of(fewer));
  EXPECT_TRUE(full.is_relaxation_of(full));
  Dag other(3);
  EXPECT_FALSE(other.is_relaxation_of(full));
}

TEST(Dag, TransitiveReductionRemovesImpliedEdges) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(0, 2);  // implied
  const Dag r = d.transitive_reduction();
  EXPECT_EQ(r.edge_count(), 2u);
  EXPECT_FALSE(r.has_edge(0, 2));
  // Reduction preserves reachability.
  EXPECT_TRUE(r.precedes(0, 2));
}

TEST(Dag, TransitiveClosureAddsAllReachableEdges) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  const Dag cl = d.transitive_closure();
  EXPECT_EQ(cl.edge_count(), 6u);
  EXPECT_TRUE(cl.has_edge(0, 3));
}

TEST(Dag, ClosureSurvivesMutation) {
  Dag d(3);
  d.add_edge(0, 1);
  EXPECT_TRUE(d.precedes(0, 1));
  EXPECT_FALSE(d.precedes(0, 2));
  d.add_edge(1, 2);  // invalidates the cache
  EXPECT_TRUE(d.precedes(0, 2));
}

TEST(Dag, RandomizedClosureAgainstDfs) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    const Dag d = gen::random_dag(30, 0.1, rng);
    // Reference reachability by DFS.
    for (NodeId s = 0; s < 30; s += 7) {
      std::vector<bool> seen(30, false);
      std::vector<NodeId> stack = {s};
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const NodeId v : d.succ(u))
          if (!seen[v]) {
            seen[v] = true;
            stack.push_back(v);
          }
      }
      for (NodeId t = 0; t < 30; ++t)
        EXPECT_EQ(d.precedes(s, t), seen[t]) << s << " -> " << t;
    }
  }
}

}  // namespace
}  // namespace ccmm
