// Definition 17: sequential consistency, cross-checked against the
// brute-force definition (one topological sort explains every location).
#include "models/sequential_consistency.hpp"

#include <gtest/gtest.h>

#include "core/last_writer.hpp"
#include "dag/generators.hpp"
#include "dag/topsort.hpp"
#include "enumerate/observer_enum.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

bool sc_by_definition(const Computation& c, const ObserverFunction& phi) {
  if (!is_valid_observer(c, phi)) return false;
  bool found = false;
  for_each_topological_sort(c.dag(), [&](const std::vector<NodeId>& t) {
    if (last_writer(c, t) == phi) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

TEST(SequentialConsistency, EmptyComputation) {
  EXPECT_TRUE(sequentially_consistent(Computation(), ObserverFunction(0)));
}

TEST(SequentialConsistency, LastWriterIsSC) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const Dag d = gen::random_dag(7, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const auto t = greedy_random_topological_sort(c.dag(), rng);
    const ObserverFunction w = last_writer(c, t);
    const auto r = sc_check(c, w);
    EXPECT_EQ(r.status, SearchStatus::kYes);
    ASSERT_TRUE(r.witness.has_value());
    EXPECT_TRUE(is_topological_sort(c.dag(), *r.witness));
    EXPECT_EQ(last_writer(c, *r.witness), w);
  }
}

TEST(SequentialConsistency, LcNotScPairRejected) {
  const auto p = test::lc_not_sc_pair();
  EXPECT_FALSE(sequentially_consistent(p.c, p.phi));
}

TEST(SequentialConsistency, FiguresRejected) {
  EXPECT_FALSE(sequentially_consistent(test::figure2_pair().c,
                                       test::figure2_pair().phi));
  EXPECT_FALSE(sequentially_consistent(test::figure3_pair().c,
                                       test::figure3_pair().phi));
}

TEST(SequentialConsistency, AgreesWithBruteForceDefinition) {
  Rng rng(2);
  std::size_t checked = 0, members = 0, nonmembers = 0;
  for (int round = 0; round < 60; ++round) {
    const Dag d = gen::random_dag(5, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.35, 0.45, rng);
    for_each_observer(c, [&](const ObserverFunction& phi) {
      const bool fast = sequentially_consistent(c, phi);
      EXPECT_EQ(fast, sc_by_definition(c, phi));
      ++checked;
      (fast ? members : nonmembers) += 1;
      return checked % 499 != 0;
    });
  }
  EXPECT_GT(members, 0u);
  EXPECT_GT(nonmembers, 0u);
}

TEST(SequentialConsistency, WitnessIsAlwaysAnExplainingSort) {
  Rng rng(3);
  for (int round = 0; round < 40; ++round) {
    const Dag d = gen::random_dag(6, 0.25, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    int budget = 10;
    for_each_observer(c, [&](const ObserverFunction& phi) {
      const auto r = sc_check(c, phi);
      if (r.status == SearchStatus::kYes) {
        EXPECT_TRUE(r.witness.has_value());
        if (r.witness.has_value()) {
          EXPECT_EQ(last_writer(c, *r.witness), phi);
        }
      }
      return --budget > 0;
    });
  }
}

TEST(SequentialConsistency, BudgetExhaustionIsReported) {
  // A member instance forces the search to actually place nodes, so a
  // budget of 1 exhausts before the witness leaf. (Non-members can now
  // die at the root without spending budget: the block-drain pruning may
  // leave no placeable candidate at all.)
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  const Computation c = std::move(b).build();
  ObserverFunction phi(c.node_count());
  phi.set(0, 0, w);
  phi.set(0, 1, w);
  const auto r = sc_check(c, phi, 1);
  EXPECT_EQ(r.status, SearchStatus::kExhausted);

  // The same non-member instance that used to pin this test is now
  // decided within the smallest budget — pruning reports a definitive
  // answer, never a bogus one.
  const auto p = test::lc_not_sc_pair();
  EXPECT_EQ(sc_check(p.c, p.phi, 1).status, SearchStatus::kNo);
}

TEST(SequentialConsistency, ScIsStrongerThanLC) {
  // Every SC pair is LC (Section 4 of the paper).
  Rng rng(5);
  std::size_t sc_members = 0;
  for (int round = 0; round < 40; ++round) {
    const Dag d = gen::random_dag(5, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    int budget = 15;
    for_each_observer(c, [&](const ObserverFunction& phi) {
      if (sequentially_consistent(c, phi)) {
        ++sc_members;
        EXPECT_TRUE(location_consistent(c, phi));
      }
      return --budget > 0;
    });
  }
  EXPECT_GT(sc_members, 50u);
}

TEST(SequentialConsistency, AblationKnobsPreserveAnswers) {
  // Memoization and the LC prefilter are pure accelerations: all four
  // configurations must agree on every decided instance.
  Rng rng(8);
  for (int round = 0; round < 25; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    int budget = 8;
    for_each_observer(c, [&](const ObserverFunction& phi) {
      const bool base = sequentially_consistent(c, phi);
      for (const bool memo : {false, true}) {
        for (const bool filter : {false, true}) {
          ScOptions options;
          options.memoize_dead_states = memo;
          options.lc_prefilter = filter;
          EXPECT_EQ(sc_check_with(c, phi, options).status == SearchStatus::kYes,
                    base)
              << memo << filter;
        }
      }
      return --budget > 0;
    });
  }
}

TEST(SequentialConsistency, ModelObject) {
  const auto m = SequentialConsistencyModel::instance();
  EXPECT_EQ(m->name(), "SC");
  const auto any = m->any_observer(test::lc_not_sc_pair().c);
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(m->contains(test::lc_not_sc_pair().c, *any));
}

}  // namespace
}  // namespace ccmm
