// The values layer: the paper's data abstraction made concrete —
// distinct observer functions can produce identical executions, and
// post-mortem analysis without unique write tags must reason about all
// explanations.
#include "values/values.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace ccmm {
namespace {

/// Two concurrent writes, one read after both.
struct TwoWritesFixture {
  Computation c;
  NodeId w1, w2, r;
};

TwoWritesFixture two_writes() {
  TwoWritesFixture f;
  ComputationBuilder b;
  f.w1 = b.write(0);
  f.w2 = b.write(0);
  f.r = b.read(0, {f.w1, f.w2});
  f.c = std::move(b).build();
  return f;
}

TEST(Values, DefaultsAreUniqueTags) {
  ValueAssignment values;
  EXPECT_EQ(values.of(kBottom), kInitialValue);
  EXPECT_EQ(values.of(0), 1);
  EXPECT_EQ(values.of(7), 8);
  values.set(7, 42);
  EXPECT_EQ(values.of(7), 42);
}

TEST(Values, ExecutionReturnsObservedWritesValues) {
  const TwoWritesFixture f = two_writes();
  ObserverFunction phi(f.c.node_count());
  phi.set(0, f.w1, f.w1);
  phi.set(0, f.w2, f.w2);
  phi.set(0, f.r, f.w2);
  ValueAssignment values;
  values.set(f.w1, 10);
  values.set(f.w2, 20);
  const Execution e = execute_values(f.c, phi, values);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.at(f.r), 20);
}

TEST(Values, DistinctPhisCanBeObservationallyEquivalent) {
  // The paper's Section-2 remark: when both writes store the same value,
  // the read cannot tell which one it observed.
  const TwoWritesFixture f = two_writes();
  ObserverFunction a(f.c.node_count()), b(f.c.node_count());
  a.set(0, f.w1, f.w1);
  a.set(0, f.w2, f.w2);
  a.set(0, f.r, f.w1);
  b = a;
  b.set(0, f.r, f.w2);
  EXPECT_FALSE(a == b);

  ValueAssignment same;
  same.set(f.w1, 5);
  same.set(f.w2, 5);
  EXPECT_TRUE(observationally_equivalent(f.c, a, b, same));

  ValueAssignment distinct;  // unique default tags
  EXPECT_FALSE(observationally_equivalent(f.c, a, b, distinct));
}

TEST(Values, NonReadDifferencesAreInvisible) {
  // Observer functions differing only on a nop node execute identically.
  ComputationBuilder builder;
  const NodeId w = builder.write(0);
  const NodeId n = builder.nop({w});
  const Computation c = std::move(builder).build();
  ObserverFunction a(c.node_count()), b(c.node_count());
  a.set(0, w, w);
  b.set(0, w, w);
  b.set(0, n, w);  // the nop "sees" the write; a leaves it at ⊥
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(observationally_equivalent(c, a, b, ValueAssignment{}));
}

TEST(Values, ExplanationsWithUniqueTagsAreUnique) {
  // Unique write values pin the read's observation; LC then admits a few
  // completions differing only on non-read nodes.
  const TwoWritesFixture f = two_writes();
  ObserverFunction truth(f.c.node_count());
  truth.set(0, f.w1, f.w1);
  truth.set(0, f.w2, f.w2);
  truth.set(0, f.r, f.w1);
  const ValueAssignment tags;  // unique defaults
  const Execution observed = execute_values(f.c, truth, tags);
  const auto found = explanations(f.c, observed,
                                  tags, *LocationConsistencyModel::instance());
  ASSERT_FALSE(found.empty());
  for (const ObserverFunction& phi : found)
    EXPECT_EQ(phi.get(0, f.r), f.w1);  // every explanation agrees on reads
}

TEST(Values, CollidingValuesAdmitMoreExplanations) {
  const TwoWritesFixture f = two_writes();
  ObserverFunction truth(f.c.node_count());
  truth.set(0, f.w1, f.w1);
  truth.set(0, f.w2, f.w2);
  truth.set(0, f.r, f.w1);

  ValueAssignment colliding;
  colliding.set(f.w1, 9);
  colliding.set(f.w2, 9);
  const ValueAssignment unique;

  const auto lc = LocationConsistencyModel::instance();
  const auto with_unique =
      explanations(f.c, execute_values(f.c, truth, unique), unique, *lc);
  const auto with_collision = explanations(
      f.c, execute_values(f.c, truth, colliding), colliding, *lc);
  EXPECT_GT(with_collision.size(), with_unique.size());
}

TEST(Values, ModelMembershipCanDifferAcrossEquivalentPhis) {
  // The formal reason the paper keeps Φ rather than executions: of two
  // observationally equivalent functions, one can be in a model and the
  // other not. Figure 2's pair is not LC; rerouting its reads to the
  // *other* write gives an LC member; with colliding values the two are
  // indistinguishable.
  const auto p = test::figure2_pair();
  ObserverFunction fixed(p.c.node_count());
  fixed.set(0, 0, 0);
  fixed.set(0, 1, 1);
  fixed.set(0, 2, 0);  // C now observes A (was B)
  fixed.set(0, 3, 1);  // D now observes B (was A)
  ASSERT_TRUE(location_consistent(p.c, fixed));
  ASSERT_FALSE(location_consistent(p.c, p.phi));

  ValueAssignment colliding;
  colliding.set(0, 3);
  colliding.set(1, 3);
  EXPECT_TRUE(observationally_equivalent(p.c, p.phi, fixed, colliding));
}

TEST(Values, ExplanationsRespectTheLimit) {
  const TwoWritesFixture f = two_writes();
  ValueAssignment colliding;
  colliding.set(f.w1, 1);
  colliding.set(f.w2, 1);
  Execution observed{{f.r, 1}};
  const auto found =
      explanations(f.c, observed, colliding, *QDagModel::ww(), 1);
  EXPECT_EQ(found.size(), 1u);
}

}  // namespace
}  // namespace ccmm
