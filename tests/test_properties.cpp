// Parameterized property sweeps: the paper's structural facts checked
// across a grid of workload families, sizes and seeds.
#include <gtest/gtest.h>

#include "construct/extension.hpp"
#include "enumerate/observer_enum.hpp"
#include "exec/backer.hpp"
#include "exec/sim_machine.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

struct SweepParam {
  const char* family;
  std::size_t size;
  std::uint64_t seed;
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << p.family << "/" << p.size << "/seed" << p.seed;
}

Computation make(const SweepParam& p) {
  Rng rng(p.seed);
  const std::string f = p.family;
  if (f == "random")
    return workload::random_ops(gen::random_dag(p.size, 0.25, rng), 2, 0.4,
                                0.4, rng);
  if (f == "chain")
    return workload::random_ops(gen::chain(p.size), 1, 0.5, 0.5, rng);
  if (f == "antichain")
    return workload::random_ops(gen::antichain(p.size), 1, 0.4, 0.6, rng);
  if (f == "series-parallel")
    return workload::random_ops(gen::series_parallel(p.size, rng), 2, 0.4,
                                0.4, rng);
  ADD_FAILURE() << "unknown family";
  return Computation();
}

class ModelHierarchySweep : public ::testing::TestWithParam<SweepParam> {};

// Theorems 21/22 as inclusion chains on sampled observers:
// SC ⊆ LC ⊆ NN ⊆ NW, WN ⊆ WW.
TEST_P(ModelHierarchySweep, InclusionChainHolds) {
  const Computation c = make(GetParam());
  std::size_t budget = 60;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    const bool in_nn = qdag_consistent(c, phi, DagPred::kNN);
    const bool in_nw = qdag_consistent(c, phi, DagPred::kNW);
    const bool in_wn = qdag_consistent(c, phi, DagPred::kWN);
    const bool in_ww = qdag_consistent(c, phi, DagPred::kWW);
    const bool in_lc = location_consistent(c, phi);
    if (in_lc) {
      EXPECT_TRUE(in_nn);
    }
    if (in_nn) {
      EXPECT_TRUE(in_nw);
      EXPECT_TRUE(in_wn);
    }
    if (in_nw) {
      EXPECT_TRUE(in_ww);
    }
    if (in_wn) {
      EXPECT_TRUE(in_ww);
    }
    return --budget > 0;
  });
}

// Last-writer functions of sampled sorts are in SC, hence everywhere.
TEST_P(ModelHierarchySweep, LastWriterInEveryModel) {
  const Computation c = make(GetParam());
  Rng rng(GetParam().seed ^ 0xabcdef);
  for (int i = 0; i < 3; ++i) {
    const auto t = greedy_random_topological_sort(c.dag(), rng);
    const ObserverFunction w = last_writer(c, t);
    EXPECT_TRUE(sequentially_consistent(c, w));
    EXPECT_TRUE(location_consistent(c, w));
    EXPECT_TRUE(qdag_consistent(c, w, DagPred::kNN));
  }
}

// Monotonicity (Definition 5) under random single-edge deletion.
TEST_P(ModelHierarchySweep, MonotoneUnderEdgeDeletion) {
  const Computation c = make(GetParam());
  if (c.dag().edge_count() == 0) return;
  Rng rng(GetParam().seed ^ 0x1234);
  const auto edges = c.dag().edges();
  const Edge victim = edges[rng.below(edges.size())];
  Dag relaxed(c.node_count());
  for (const auto& e : edges)
    if (!(e == victim)) relaxed.add_edge(e.from, e.to);
  const Computation cr(relaxed, c.ops());

  std::size_t budget = 25;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    for (const DagPred p :
         {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW}) {
      if (qdag_consistent(c, phi, p)) {
        EXPECT_TRUE(qdag_consistent(cr, phi, p)) << dag_pred_name(p);
      }
    }
    if (location_consistent(c, phi)) {
      EXPECT_TRUE(location_consistent(cr, phi));
    }
    return --budget > 0;
  });
}

// Constructibility of LC, observed operationally: any LC pair survives
// any one-node extension (Theorem 19 / Definition 6).
TEST_P(ModelHierarchySweep, LcPairsAnswerRandomExtensions) {
  const Computation c = make(GetParam());
  if (c.node_count() > 8) return;  // extension spaces grow as 2^n
  const auto lc = LocationConsistencyModel::instance();
  const auto phi = lc->any_observer(c);
  ASSERT_TRUE(phi.has_value());
  for_each_one_node_extension(
      c, op_alphabet(2), /*dedupe=*/true, [&](const Computation& ext) {
        bool answered = false;
        for_each_extension_observer(ext, *phi,
                                    [&](const ObserverFunction& phi2) {
                                      if (lc->contains(ext, phi2)) {
                                        answered = true;
                                        return false;
                                      }
                                      return true;
                                    });
        EXPECT_TRUE(answered);
        return true;
      });
}

// BACKER stays LC on every family (the [Luc97] theorem, swept).
TEST_P(ModelHierarchySweep, BackerMaintainsLC) {
  const Computation c = make(GetParam());
  Rng rng(GetParam().seed ^ 0x77);
  BackerMemory mem;
  const Schedule s = work_stealing_schedule(c, 4, rng);
  const ExecutionResult r = run_execution(c, s, mem);
  EXPECT_TRUE(location_consistent(c, r.phi));
}

INSTANTIATE_TEST_SUITE_P(
    Families, ModelHierarchySweep,
    ::testing::Values(
        SweepParam{"random", 5, 1}, SweepParam{"random", 5, 2},
        SweepParam{"random", 6, 3}, SweepParam{"random", 6, 4},
        SweepParam{"random", 7, 5}, SweepParam{"random", 8, 6},
        SweepParam{"chain", 5, 7}, SweepParam{"chain", 7, 8},
        SweepParam{"antichain", 4, 9}, SweepParam{"antichain", 5, 10},
        SweepParam{"series-parallel", 6, 11},
        SweepParam{"series-parallel", 8, 12}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      std::string name = param_info.param.family;
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_" + std::to_string(param_info.param.size) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace ccmm
