// Differential fuzzing: the optimized checkers against their brute-force
// definitions on randomly sampled instances beyond exhaustive reach.
#include <gtest/gtest.h>

#include "core/last_writer.hpp"
#include "dag/topsort.hpp"
#include "enumerate/sampling.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

/// Brute-force Definition 18 (per-location topological-sort search).
bool lc_by_definition(const Computation& c, const ObserverFunction& phi) {
  if (!is_valid_observer(c, phi)) return false;
  for (const Location l : phi.active_locations()) {
    bool found = false;
    for_each_topological_sort(c.dag(), [&](const std::vector<NodeId>& t) {
      const ObserverFunction w = last_writer(c, t);
      for (NodeId u = 0; u < c.node_count(); ++u)
        if (w.get(l, u) != phi.get(l, u)) return true;
      found = true;
      return false;
    });
    if (!found) return false;
  }
  return true;
}

/// Brute-force Definition 17 (global topological-sort search).
bool sc_by_definition(const Computation& c, const ObserverFunction& phi) {
  if (!is_valid_observer(c, phi)) return false;
  bool found = false;
  for_each_topological_sort(c.dag(), [&](const std::vector<NodeId>& t) {
    if (last_writer(c, t) == phi) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

/// Literal Condition 20.1 for the named predicates (quadruple loop).
bool qdag_by_definition(const Computation& c, const ObserverFunction& phi,
                        DagPred pred) {
  if (!is_valid_observer(c, phi)) return false;
  const std::size_t n = c.node_count();
  const auto q = [&](Location l, NodeId u, NodeId v) {
    const bool uw = u != kBottom && c.op(u).writes(l);
    const bool vw = c.op(v).writes(l);
    switch (pred) {
      case DagPred::kNN:
        return true;
      case DagPred::kNW:
        return vw;
      case DagPred::kWN:
        return uw;
      case DagPred::kWW:
        return uw && vw;
    }
    return false;
  };
  for (const Location l : phi.active_locations()) {
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId w = 0; w < n; ++w) {
        if (!c.precedes(v, w)) continue;
        // u over V ∪ {⊥}.
        for (NodeId u = 0; u <= n; ++u) {
          const NodeId uu = (u == n) ? kBottom : u;
          if (uu != kBottom && !c.precedes(uu, v)) continue;
          if (!q(l, uu, v)) continue;
          if (phi.get(l, uu) == phi.get(l, w) &&
              phi.get(l, v) != phi.get(l, uu))
            return false;
        }
      }
    }
  }
  return true;
}

TEST(Differential, QDagCheckersAgreeWithLiteralDefinition) {
  Rng rng(1);
  std::size_t members = 0, nonmembers = 0;
  for (int round = 0; round < 80; ++round) {
    const Dag d = gen::random_dag(7, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    for (int s = 0; s < 10; ++s) {
      const ObserverFunction phi = random_observer(c, rng);
      for (const DagPred p :
           {DagPred::kNN, DagPred::kNW, DagPred::kWN, DagPred::kWW}) {
        const bool fast = qdag_consistent(c, phi, p);
        ASSERT_EQ(fast, qdag_by_definition(c, phi, p))
            << dag_pred_name(p) << "\n"
            << c.to_string() << phi.to_string();
        (fast ? members : nonmembers) += 1;
      }
    }
  }
  EXPECT_GT(members, 100u);
  EXPECT_GT(nonmembers, 100u);
}

TEST(Differential, LcAgreesWithDefinitionOnSampledInstances) {
  Rng rng(2);
  std::size_t members = 0;
  for (int round = 0; round < 120; ++round) {
    const Dag d = gen::random_dag(6, 0.35, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    for (int s = 0; s < 6; ++s) {
      const ObserverFunction phi = random_observer(c, rng);
      const bool fast = location_consistent(c, phi);
      ASSERT_EQ(fast, lc_by_definition(c, phi))
          << c.to_string() << phi.to_string();
      members += fast ? 1 : 0;
    }
  }
  EXPECT_GT(members, 10u);
}

TEST(Differential, ScAgreesWithDefinitionOnSampledInstances) {
  Rng rng(3);
  std::size_t members = 0;
  for (int round = 0; round < 100; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    for (int s = 0; s < 4; ++s) {
      const ObserverFunction phi = random_observer(c, rng);
      const bool fast = sequentially_consistent(c, phi);
      ASSERT_EQ(fast, sc_by_definition(c, phi))
          << c.to_string() << phi.to_string();
      members += fast ? 1 : 0;
    }
  }
  EXPECT_GT(members, 5u);
}

TEST(Differential, LcWitnessIsSelfCertifying) {
  // Whenever the fast LC checker says yes, the witness sort it can
  // produce must reproduce the column exactly — at sizes the brute force
  // could not enumerate.
  Rng rng(4);
  std::size_t verified = 0;
  for (int round = 0; round < 40; ++round) {
    const Dag d = gen::random_dag(24, 0.12, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const ObserverFunction phi =
        last_writer(c, greedy_random_topological_sort(c.dag(), rng));
    ASSERT_TRUE(location_consistent(c, phi));
    for (const Location l : c.written_locations()) {
      const auto t = lc_witness(c, phi, l);
      ASSERT_TRUE(t.has_value());
      ASSERT_TRUE(is_topological_sort(c.dag(), *t));
      const ObserverFunction w = last_writer(c, *t);
      for (NodeId u = 0; u < c.node_count(); ++u)
        ASSERT_EQ(w.get(l, u), phi.get(l, u));
      ++verified;
    }
  }
  EXPECT_GT(verified, 40u);
}

}  // namespace
}  // namespace ccmm
