#include "exec/schedule.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dag/generators.hpp"
#include "exec/workload.hpp"

namespace ccmm {
namespace {

Computation sample(std::size_t n, Rng& rng) {
  const Dag d = gen::random_dag(n, 0.2, rng);
  return workload::random_ops(d, 2, 0.4, 0.4, rng);
}

TEST(Schedule, SerialScheduleIsValidAndSequential) {
  Rng rng(1);
  const Computation c = sample(12, rng);
  const Schedule s = serial_schedule(c);
  EXPECT_TRUE(s.valid_for(c));
  EXPECT_EQ(s.nprocs, 1u);
  EXPECT_EQ(s.makespan, 12u);
  for (std::size_t i = 1; i < s.entries.size(); ++i)
    EXPECT_EQ(s.entries[i].start, s.entries[i - 1].finish);
}

TEST(Schedule, GreedyScheduleValidAcrossProcCounts) {
  Rng rng(2);
  const Computation c = sample(30, rng);
  for (const std::size_t p : {1u, 2u, 4u, 8u}) {
    const Schedule s = greedy_schedule(c, p);
    EXPECT_TRUE(s.valid_for(c)) << p;
    EXPECT_LE(s.makespan, 30u);
  }
}

TEST(Schedule, GreedyRespectsBrentBound) {
  // Greedy scheduling: T_P <= T_1/P + T_inf.
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    const Computation c = sample(40, rng);
    const WorkSpan ws = work_span(c);
    for (const std::size_t p : {2u, 4u}) {
      const Schedule s = greedy_schedule(c, p);
      EXPECT_LE(s.makespan, ws.work / p + ws.span)
          << "round " << round << " P=" << p;
      EXPECT_GE(s.makespan, ws.span);           // span law
      EXPECT_GE(s.makespan, ws.work / p);        // work law (unit times)
    }
  }
}

TEST(Schedule, GreedyWithDurations) {
  Rng rng(4);
  const Computation c = sample(20, rng);
  std::vector<std::uint64_t> dur(20);
  for (auto& d : dur) d = 1 + rng.below(9);
  const Schedule s = greedy_schedule(c, 3, dur);
  EXPECT_TRUE(s.valid_for(c));
  const WorkSpan ws = work_span(c, dur);
  EXPECT_GE(s.makespan, ws.span);
}

TEST(Schedule, WorkStealingValidAndDeterministicPerSeed) {
  Rng rng(5);
  const Computation c = sample(50, rng);
  Rng s1(77), s2(77), s3(78);
  const Schedule a = work_stealing_schedule(c, 4, s1);
  const Schedule b = work_stealing_schedule(c, 4, s2);
  EXPECT_TRUE(a.valid_for(c));
  EXPECT_EQ(a.proc_of, b.proc_of);  // same seed, same schedule
  EXPECT_EQ(a.makespan, b.makespan);
  const Schedule d = work_stealing_schedule(c, 4, s3);
  EXPECT_TRUE(d.valid_for(c));
}

TEST(Schedule, WorkStealingActuallySteals) {
  // A wide fork/join on several processors must migrate work.
  Rng rng(6);
  const Dag d = gen::fork_join(4, 3);
  const Computation c(d, std::vector<Op>(d.node_count(), Op::nop()));
  const Schedule s = work_stealing_schedule(c, 4, rng);
  EXPECT_TRUE(s.valid_for(c));
  EXPECT_GT(s.steals, 0u);
  std::set<ProcId> used(s.proc_of.begin(), s.proc_of.end());
  EXPECT_GT(used.size(), 1u);
}

TEST(Schedule, SingleProcessorWorkStealingMatchesSerialWork) {
  Rng rng(7);
  const Computation c = sample(15, rng);
  const Schedule s = work_stealing_schedule(c, 1, rng);
  EXPECT_TRUE(s.valid_for(c));
  EXPECT_EQ(s.steals, 0u);
  EXPECT_EQ(s.makespan, 15u);
}

TEST(Schedule, WorkSpanOfKnownShapes) {
  // Chain: work = span = n.
  const Computation chain(gen::chain(6), std::vector<Op>(6, Op::nop()));
  EXPECT_EQ(work_span(chain).work, 6u);
  EXPECT_EQ(work_span(chain).span, 6u);
  // Diamond(4): work 6, span 3.
  const Computation dia(gen::diamond(4), std::vector<Op>(6, Op::nop()));
  EXPECT_EQ(work_span(dia).work, 6u);
  EXPECT_EQ(work_span(dia).span, 3u);
}

TEST(Schedule, ValidityCatchesViolations) {
  Rng rng(8);
  const Computation c = sample(6, rng);
  Schedule s = serial_schedule(c);
  Schedule broken = s;
  broken.entries[0].node = broken.entries[1].node;  // duplicate node
  EXPECT_FALSE(broken.valid_for(c));
  Schedule overlap = s;
  if (overlap.entries.size() >= 2) {
    overlap.entries[1].start = overlap.entries[0].start;  // same proc overlap
    EXPECT_FALSE(overlap.valid_for(c));
  }
}

}  // namespace
}  // namespace ccmm
