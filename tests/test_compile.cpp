// The model compiler (models/compile.hpp), differentially pinned:
//  * every compiled built-in answers byte-identically to its hand-fused
//    original — contains_prepared AND the pruned member-observer
//    enumeration — over exhaustive small universes;
//  * ModelRegistry::classify over the bundled registry equals the
//    per-model membership sweep, with the derived-lattice
//    short-circuiting ON and OFF (the ablation), and its low eight bits
//    equal ModelSuite::classify (the hardcoded Theorem 21 gates are a
//    special case of the derived ones);
//  * spec-pack clients: COH is extensionally LC (and shares its cache
//    tag), PC2 sits strictly between SC and LC on the paper's examples;
//  * budget exhaustion surfaces in check_prepared / classify instead of
//    mislabeling the pair.
#include "models/compile.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "construct/fixpoint.hpp"
#include "construct/witness.hpp"
#include "core/prepared.hpp"
#include "enumerate/universe.hpp"
#include "exec/sc_memory.hpp"
#include "exec/sim_machine.hpp"
#include "exec/workload.hpp"
#include "models/wn_plus.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

struct FusedRow {
  const char* label;
  std::shared_ptr<const MemoryModel> fused;
};

/// The eight hand-fused originals, in builtin_model_specs() order.
std::vector<FusedRow> fused_builtins() {
  return {
      {"SC", SequentialConsistencyModel::instance()},
      {"LC", LocationConsistencyModel::instance()},
      {"NN", QDagModel::nn()},
      {"NW", QDagModel::nw()},
      {"WN", QDagModel::wn()},
      {"WW", QDagModel::ww()},
      {"WN+", WnPlusModel::instance()},
      {"NN+", NnPlusModel::instance()},
  };
}

void sweep_builtins(const UniverseSpec& uspec) {
  const std::vector<FusedRow> fused = fused_builtins();
  std::vector<std::shared_ptr<const CompiledModel>> compiled;
  for (const ModelSpec& s : builtin_model_specs())
    compiled.push_back(compile_model(s));
  ASSERT_EQ(compiled.size(), fused.size());

  CheckContext ctx;
  for_each_pair(uspec, [&](const Computation& c, const ObserverFunction& phi) {
    const PreparedPair p = ctx.prepare(c, phi);
    for (std::size_t i = 0; i < fused.size(); ++i) {
      const bool want = fused[i].fused->contains_prepared(p);
      EXPECT_EQ(compiled[i]->contains_prepared(p), want) << fused[i].label;
      const CompiledVerdict v = compiled[i]->check_prepared(p);
      EXPECT_EQ(v.member, want) << fused[i].label;
      EXPECT_FALSE(v.exhausted) << fused[i].label;
    }
    return true;
  });
}

TEST(Compile, BuiltinsMatchHandFusedOneLocation) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  sweep_builtins(spec);
}

TEST(Compile, BuiltinsMatchHandFusedTwoLocations) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  sweep_builtins(spec);
}

TEST(Compile, MemberObserverEnumerationMatchesHandFused) {
  // The pruned enumeration (named-corner driver filtered by the plan)
  // must visit exactly the hand-fused member set — compare as sets of
  // canonical encodings.
  const std::vector<FusedRow> fused = fused_builtins();
  std::vector<std::shared_ptr<const CompiledModel>> compiled;
  for (const ModelSpec& s : builtin_model_specs())
    compiled.push_back(compile_model(s));

  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  for_each_computation(spec, [&](const Computation& c) {
    for (std::size_t i = 0; i < fused.size(); ++i) {
      std::set<std::string> want;
      fused[i].fused->for_each_member_observer(
          c, [&](const ObserverFunction& phi) {
            want.insert(encode_observer(phi));
            return true;
          });
      std::set<std::string> got;
      compiled[i]->for_each_member_observer(
          c, [&](const ObserverFunction& phi) {
            EXPECT_TRUE(got.insert(encode_observer(phi)).second)
                << fused[i].label << ": duplicate member visited";
            return true;
          });
      EXPECT_EQ(got, want) << fused[i].label;
    }
    return true;
  });
}

void sweep_registry(const UniverseSpec& uspec) {
  const ModelRegistry& reg = ModelRegistry::bundled();
  ASSERT_EQ(reg.entries().size(), 11u);  // 8 built-ins + PC2, COH, TSO

  RegistryOptions pruned;
  RegistryOptions unpruned;
  unpruned.short_circuit = false;

  CheckContext ctx;
  for_each_pair(uspec, [&](const Computation& c, const ObserverFunction& phi) {
    const PreparedPair p = ctx.prepare(c, phi);
    const std::uint64_t fast = reg.classify(p, pruned);
    const std::uint64_t slow = reg.classify(p, unpruned);
    EXPECT_EQ(fast, slow);  // the derived lattice is answer-preserving
    // ... and the unpruned sweep is just the per-model membership.
    for (std::size_t i = 0; i < reg.entries().size(); ++i) {
      EXPECT_EQ((slow >> i) & 1u,
                std::uint64_t{reg.entries()[i].model->contains_prepared(p)})
          << reg.entries()[i].spec.name;
    }
    // The low eight bits are ModelSuite's classification.
    const std::uint32_t suite = ModelSuite::classify(p);
    EXPECT_EQ(static_cast<std::uint32_t>(fast & 0xFF), suite & 0xFF);
    return true;
  });
}

TEST(Compile, RegistryClassifyMatchesSuiteOneLocation) {
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  sweep_registry(spec);
}

TEST(Compile, RegistryClassifyMatchesSuiteTwoLocations) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 2;
  sweep_registry(spec);
}

TEST(Compile, PackClientsOnPaperExamples) {
  // PC2's scopes cover locations the figure examples may not use;
  // uncovered locations degrade to per-location order, so on the
  // paper's pairs PC2 behaves between SC and LC.
  const auto pc2 = compile_model(partition_spec("PC2", {{{0, 1}}, {{2, 3}}}));
  const auto coh = compile_model(coherence_spec());
  const auto tso = compile_model(tso_like_spec());
  CheckContext ctx;
  for (const test::ExamplePair& ex :
       {test::figure2_pair(), test::figure3_pair(), test::lc_not_sc_pair()}) {
    const PreparedPair p = ctx.prepare(ex.c, ex.phi);
    // COH is definitionally LC.
    EXPECT_EQ(coh->contains_prepared(p), ex.in_lc) << ex.name;
    // Membership in a spec model is sandwiched by the derived lattice.
    if (ex.in_sc) EXPECT_TRUE(pc2->contains_prepared(p)) << ex.name;
    if (!ex.in_lc) EXPECT_FALSE(pc2->contains_prepared(p)) << ex.name;
    if (ex.in_sc) EXPECT_TRUE(tso->contains_prepared(p)) << ex.name;
    if (!ex.in_wn || !ex.in_nw) EXPECT_FALSE(tso->contains_prepared(p))
        << ex.name;
  }
}

TEST(Compile, CacheTagTracksStructureNotName) {
  const auto lc = compile_model(builtin_model_specs()[1]);
  const auto coh = compile_model(coherence_spec());
  const auto pc2 = compile_model(partition_spec("PC2", {{{0, 1}}, {{2, 3}}}));
  const auto pc2b = compile_model(partition_spec("other", {{{1, 0}}, {{3, 2}}}));
  // Same normalized structure -> shared cache entries, names aside.
  EXPECT_EQ(lc->cache_tag(), coh->cache_tag());
  EXPECT_EQ(pc2->cache_tag(), pc2b->cache_tag());
  // Different structure -> distinct tags.
  EXPECT_NE(lc->cache_tag(), pc2->cache_tag());
  EXPECT_NE(compile_model(tso_like_spec())->cache_tag(), pc2->cache_tag());
  // And the tag never collides with a non-spec model's name-based tag.
  EXPECT_NE(lc->cache_tag(), LocationConsistencyModel::instance()->cache_tag());
}

TEST(Compile, BudgetExhaustionIsReportedNotGuessed) {
  // A serial execution of a 14-node workload is in SC, but a 1-state
  // search budget cannot prove it: check_prepared must say "exhausted",
  // never "non-member".
  Rng rng(7);
  const Computation c =
      workload::random_ops(gen::random_dag(14, 0.25, rng), 2, 0.5, 0.4, rng);
  ScMemory mem;
  const ObserverFunction phi = run_serial(c, mem).phi;
  CheckContext ctx;
  const PreparedPair p = ctx.prepare(c, phi);

  CompileOptions tight;
  tight.sc_budget = 1;
  const auto sc = compile_model(builtin_model_specs()[0], tight);
  const CompiledVerdict v = sc->check_prepared(p);
  EXPECT_FALSE(v.member);
  EXPECT_TRUE(v.exhausted);

  // With the default budget the same pair is decided a member.
  const auto sc_full = compile_model(builtin_model_specs()[0]);
  const CompiledVerdict ok = sc_full->check_prepared(p);
  EXPECT_TRUE(ok.member);
  EXPECT_FALSE(ok.exhausted);

  // The registry surfaces the exhaustion flag the same way (classify
  // re-budgets from RegistryOptions, so the knob travels there).
  ModelRegistry reg;
  reg.add(builtin_model_specs()[0]);
  RegistryOptions ropt;
  ropt.sc_budget = 1;
  bool exhausted = false;
  const std::uint64_t bits = reg.classify(p, ropt, &exhausted);
  EXPECT_EQ(bits, 0u);
  EXPECT_TRUE(exhausted);
  bool ok_exhausted = false;
  EXPECT_EQ(reg.classify(p, {}, &ok_exhausted), 1u);
  EXPECT_FALSE(ok_exhausted);
}

TEST(Compile, FixpointCensusAndWitnessMatchHandFused) {
  // The constructibility stack consumes compiled models through the
  // same MemoryModel seam: restrictions, the Δ* fixpoint census, and
  // the Figure-4 nonconstructibility witness must not notice whether
  // NN is hand-fused or compiled from its spec.
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  const auto compiled = compile_model(builtin_model_specs()[2]);  // NN
  const auto fused = QDagModel::nn();

  const BoundedModelSet ra = BoundedModelSet::restrict_model(*compiled, spec);
  const BoundedModelSet rb = BoundedModelSet::restrict_model(*fused, spec);
  for (std::size_t n = 0; n <= spec.max_nodes; ++n)
    EXPECT_EQ(ra.live_count_at_size(n), rb.live_count_at_size(n)) << n;

  const BoundedModelSet fa = constructible_version(*compiled, spec);
  const BoundedModelSet fb = constructible_version(*fused, spec);
  EXPECT_EQ(fa.live_count(), fb.live_count());
  for (std::size_t n = 0; n <= spec.max_nodes; ++n)
    EXPECT_EQ(fa.live_count_at_size(n), fb.live_count_at_size(n)) << n;

  EXPECT_TRUE(validate_witness(*compiled, figure4_witness()));
}

TEST(Compile, RegistryAddReplacesByNameAndRederives) {
  ModelRegistry reg;
  const std::size_t i = reg.add(coherence_spec());
  reg.add(partition_spec("PC2", {{{0, 1}}, {{2, 3}}}));
  // Replace COH (per-location) with a global-order spec of the same
  // name: the PC2 row must now imply it no longer hold... the other
  // direction appears instead.
  ModelSpec strong = coherence_spec();
  strong.order = OrderAxiom::kGlobal;
  const std::size_t j = reg.add(strong);
  EXPECT_EQ(i, j);  // replaced in place
  ASSERT_EQ(reg.entries().size(), 2u);
  EXPECT_TRUE((reg.implies_mask(i) >> 1) & 1u);   // global => PC2
  EXPECT_FALSE((reg.implies_mask(1) >> i) & 1u);  // PC2 =/=> global
  EXPECT_NE(reg.find("COH"), nullptr);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

}  // namespace
}  // namespace ccmm
