#include "dag/topsort.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dag/generators.hpp"

namespace ccmm {
namespace {

TEST(Topsort, ValidityChecker) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_TRUE(is_topological_sort(d, {0, 1, 2}));
  EXPECT_FALSE(is_topological_sort(d, {1, 0, 2}));
  EXPECT_FALSE(is_topological_sort(d, {0, 1}));       // wrong length
  EXPECT_FALSE(is_topological_sort(d, {0, 0, 2}));    // duplicate
  EXPECT_FALSE(is_topological_sort(d, {0, 1, 7}));    // out of range
}

TEST(Topsort, PositionIndexInverts) {
  const std::vector<NodeId> order = {2, 0, 1};
  const auto pos = position_index(order);
  EXPECT_EQ(pos[2], 0u);
  EXPECT_EQ(pos[0], 1u);
  EXPECT_EQ(pos[1], 2u);
}

TEST(Topsort, EnumerationCountsMatchKnownFormulas) {
  // Antichain of n nodes: n! sorts.
  EXPECT_EQ(count_topological_sorts(gen::antichain(4)), 24u);
  // Chain: exactly one.
  EXPECT_EQ(count_topological_sorts(gen::chain(6)), 1u);
  // Diamond with k branches: k! (middle nodes permute freely).
  EXPECT_EQ(count_topological_sorts(gen::diamond(3)), 6u);
  // Empty dag: the empty sort.
  EXPECT_EQ(count_topological_sorts(Dag()), 1u);
}

TEST(Topsort, EnumerationVisitsExactlyAllSorts) {
  const Dag d = gen::diamond(2);  // 0 -> {1,2} -> 3
  std::set<std::vector<NodeId>> seen;
  for_each_topological_sort(d, [&](const std::vector<NodeId>& t) {
    EXPECT_TRUE(is_topological_sort(d, t));
    seen.insert(t);
    return true;
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count({0, 1, 2, 3}));
  EXPECT_TRUE(seen.count({0, 2, 1, 3}));
}

TEST(Topsort, EnumerationEarlyStop) {
  int visits = 0;
  for_each_topological_sort(gen::antichain(5),
                            [&](const std::vector<NodeId>&) {
                              ++visits;
                              return visits < 3;
                            });
  EXPECT_EQ(visits, 3);
}

TEST(Topsort, CountSaturatesAtCap) {
  EXPECT_EQ(count_topological_sorts(gen::antichain(10), 1000), 1000u);
}

TEST(Topsort, CountMatchesEnumeration) {
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    std::uint64_t by_enum = 0;
    for_each_topological_sort(d, [&](const std::vector<NodeId>&) {
      ++by_enum;
      return true;
    });
    EXPECT_EQ(count_topological_sorts(d), by_enum);
  }
}

TEST(Topsort, UniformSamplerProducesValidSorts) {
  Rng rng(17);
  const Dag d = gen::diamond(3);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(is_topological_sort(d, random_topological_sort(d, rng)));
}

TEST(Topsort, UniformSamplerIsActuallyUniform) {
  // Diamond(2) has exactly 2 sorts; a uniform sampler should split evenly.
  Rng rng(23);
  const Dag d = gen::diamond(2);
  int first = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto t = random_topological_sort(d, rng);
    if (t[1] == 1) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / trials, 0.5, 0.05);
}

TEST(Topsort, GreedySamplerProducesValidSorts) {
  Rng rng(31);
  const Dag d = gen::random_dag(20, 0.2, rng);
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(is_topological_sort(d, greedy_random_topological_sort(d, rng)));
}

}  // namespace
}  // namespace ccmm
