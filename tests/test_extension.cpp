#include "construct/extension.hpp"

#include <gtest/gtest.h>

#include <set>

#include "enumerate/universe.hpp"

namespace ccmm {
namespace {

Computation two_writes() {
  ComputationBuilder b;
  b.write(0);
  b.write(0);
  return std::move(b).build();
}

TEST(Extension, EnumeratesOpsTimesSubsets) {
  const Computation c = two_writes();
  const auto alphabet = op_alphabet(1);  // N, R(0), W(0)
  std::size_t n = 0;
  for_each_one_node_extension(c, alphabet, /*dedupe=*/false,
                              [&](const Computation& ext) {
                                EXPECT_EQ(ext.node_count(), 3u);
                                EXPECT_TRUE(c.is_prefix_of(ext));
                                ++n;
                                return true;
                              });
  EXPECT_EQ(n, one_node_extension_count(c, alphabet));
  EXPECT_EQ(n, 12u);  // 3 ops × 2^2 subsets
}

TEST(Extension, DedupeCollapsesClosureEquivalentSubsets) {
  // Chain 0 -> 1: predecessor sets {1} and {0,1} have the same closure.
  ComputationBuilder b;
  const NodeId x = b.write(0);
  b.read(0, {x});
  const Computation c = std::move(b).build();
  const auto alphabet = op_alphabet(1);
  std::size_t all = 0, deduped = 0;
  for_each_one_node_extension(c, alphabet, false, [&](const Computation&) {
    ++all;
    return true;
  });
  for_each_one_node_extension(c, alphabet, true, [&](const Computation&) {
    ++deduped;
    return true;
  });
  EXPECT_EQ(all, 12u);
  EXPECT_EQ(deduped, 9u);  // closures: {}, {0}, {0,1} per op
}

TEST(Extension, EarlyStop) {
  const Computation c = two_writes();
  int visits = 0;
  for_each_one_node_extension(c, op_alphabet(1), false,
                              [&](const Computation&) {
                                ++visits;
                                return visits < 5;
                              });
  EXPECT_EQ(visits, 5);
}

TEST(ExtensionObserver, EnumeratesNewNodeChoicesOnly) {
  const Computation c = two_writes();
  ObserverFunction base(2);
  base.set(0, 0, 0);
  base.set(0, 1, 1);
  const Computation ext = c.extend(Op::read(0), {0});
  std::set<std::string> seen;
  for_each_extension_observer(ext, base, [&](const ObserverFunction& phi) {
    EXPECT_TRUE(phi.extends(base));
    EXPECT_TRUE(is_valid_observer(ext, phi));
    seen.insert(encode_observer(phi));
    return true;
  });
  EXPECT_EQ(seen.size(), 3u);  // new read: {⊥, w0, w1}
}

TEST(ExtensionObserver, WriteExtensionIsForced) {
  const Computation c = two_writes();
  ObserverFunction base(2);
  base.set(0, 0, 0);
  base.set(0, 1, 1);
  const Computation ext = c.extend(Op::write(0), {});
  std::size_t n = 0;
  for_each_extension_observer(ext, base, [&](const ObserverFunction& phi) {
    EXPECT_EQ(phi.get(0, 2), 2u);  // the new write observes itself
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(ExtensionObserver, FreshLocationActivatedByNewWrite) {
  ComputationBuilder b;
  b.nop();
  const Computation c = std::move(b).build();
  const ObserverFunction base(1);  // all ⊥
  const Computation ext = c.extend(Op::write(3), {0});
  std::size_t n = 0;
  for_each_extension_observer(ext, base, [&](const ObserverFunction& phi) {
    EXPECT_EQ(phi.get(3, 1), 1u);
    EXPECT_EQ(phi.get(3, 0), kBottom);
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(ExtensionObserver, RejectsNonExtension) {
  const Computation c = two_writes();
  ObserverFunction base(2);
  EXPECT_THROW(
      for_each_extension_observer(c, base,
                                  [](const ObserverFunction&) { return true; }),
      std::logic_error);
}

}  // namespace
}  // namespace ccmm
