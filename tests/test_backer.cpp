// BACKER maintains location consistency [Luc97] — verified post-mortem
// across workloads, processor counts, schedules and cache sizes; the
// no-coherence policy is the negative control the checker must catch.
#include "exec/backer.hpp"

#include <gtest/gtest.h>

#include "exec/sim_machine.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

std::vector<Computation> workloads(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Computation> out;
  out.push_back(workload::reduction(8));
  out.push_back(workload::stencil(4, 3));
  out.push_back(workload::contended_counter(6));
  out.push_back(workload::fork_join_array(2, 3, 3));
  out.push_back(
      workload::random_ops(gen::random_dag(20, 0.15, rng), 3, 0.4, 0.4, rng));
  out.push_back(
      workload::random_ops(gen::series_parallel(15, rng), 2, 0.4, 0.4, rng));
  return out;
}

TEST(Backer, MaintainsLocationConsistencyEverywhere) {
  std::size_t runs = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 1000);
    for (const Computation& c : workloads(seed)) {
      for (const std::size_t procs : {1u, 2u, 4u}) {
        BackerMemory mem;
        const Schedule s = work_stealing_schedule(c, procs, rng);
        const ExecutionResult r = run_execution(c, s, mem);
        const auto v = validate_observer(c, r.phi);
        ASSERT_TRUE(v.ok) << v.reason;
        EXPECT_TRUE(location_consistent(c, r.phi))
            << "seed " << seed << " procs " << procs;
        ++runs;
      }
    }
  }
  EXPECT_GE(runs, 100u);
}

TEST(Backer, MaintainsLCWithTinyCaches) {
  // Capacity evictions must not break coherence.
  Rng rng(17);
  for (const std::size_t capacity : {1u, 2u, 4u}) {
    BackerConfig cfg;
    cfg.cache_capacity = capacity;
    for (const Computation& c : workloads(17)) {
      BackerMemory mem(cfg);
      const Schedule s = work_stealing_schedule(c, 4, rng);
      const ExecutionResult r = run_execution(c, s, mem);
      EXPECT_TRUE(location_consistent(c, r.phi)) << "capacity " << capacity;
      // A single-line cache must evict whenever one processor touches
      // two locations between flushes; the multi-location workloads do.
      if (capacity == 1 && c.accessed_locations().size() >= 4) {
        EXPECT_GT(r.memory_stats.evictions, 0u);
      }
    }
  }
}

TEST(Backer, SerialExecutionIsSequentiallyConsistent) {
  // One processor, one cache: the execution is a single serialization.
  BackerMemory mem;
  Rng rng(23);
  const Computation c =
      workload::random_ops(gen::random_dag(10, 0.2, rng), 2, 0.4, 0.4, rng);
  const ExecutionResult r = run_serial(c, mem);
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

TEST(Backer, RaceFreeWorkloadsReadTheirProducers) {
  // On race-free computations every read observes the unique writer of
  // its location that precedes it — under any schedule.
  Rng rng(29);
  const Computation c = workload::reduction(8);
  for (const std::size_t procs : {1u, 2u, 4u}) {
    BackerMemory mem;
    const Schedule s = work_stealing_schedule(c, procs, rng);
    const ExecutionResult r = run_execution(c, s, mem);
    for (NodeId u = 0; u < c.node_count(); ++u) {
      const Op o = c.op(u);
      if (!o.is_read()) continue;
      const NodeId obs = r.phi.get(o.loc, u);
      ASSERT_NE(obs, kBottom);
      EXPECT_TRUE(c.op(obs).writes(o.loc));
      EXPECT_TRUE(c.precedes(obs, u));
    }
  }
}

TEST(Backer, NoCoherencePolicyViolatesLC) {
  // The negative control: with reconcile/flush disabled, some run must
  // produce a non-LC observer function and the checker must say so.
  BackerConfig cfg;
  cfg.policy = BackerPolicy::kNone;
  std::size_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const Computation c = workload::contended_counter(5);
    BackerMemory mem(cfg);
    const Schedule s = work_stealing_schedule(c, 4, rng);
    const ExecutionResult r = run_execution(c, s, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi));
    if (!location_consistent(c, r.phi)) ++violations;
  }
  EXPECT_GT(violations, 0u);
}

TEST(Backer, SourceOnlyPolicyViolatesLCSubtly) {
  // Reconciling the sender but never flushing the receiver lets a
  // processor keep serving stale cached values after a communication
  // edge. The violation needs the stale value to matter, so it appears
  // on fewer runs than kNone — but it must appear, and the checker must
  // catch it.
  BackerConfig cfg;
  cfg.policy = BackerPolicy::kSourceOnly;
  std::size_t violations = 0, runs = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    const Computation c = workload::contended_counter(6);
    BackerMemory mem(cfg);
    const Schedule s = work_stealing_schedule(c, 4, rng);
    const ExecutionResult r = run_execution(c, s, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi));
    ++runs;
    violations += location_consistent(c, r.phi) ? 0 : 1;
  }
  EXPECT_GT(violations, 0u);
  EXPECT_LT(violations, runs);  // subtler than kNone: not every run breaks
}

TEST(Backer, StatsTrackProtocolActions) {
  BackerMemory mem;
  Rng rng(31);
  const Computation c = workload::fork_join_array(2, 3, 2);
  const Schedule s = work_stealing_schedule(c, 4, rng);
  const ExecutionResult r = run_execution(c, s, mem);
  if (s.steals > 0) {
    EXPECT_GT(r.memory_stats.flushes, 0u);
  }
  EXPECT_GT(r.memory_stats.reads + r.memory_stats.writes, 0u);
}

TEST(Backer, BindResetsState) {
  BackerMemory mem;
  const Computation c = workload::contended_counter(3);
  (void)run_serial(c, mem);
  const ExecutionResult again = run_serial(c, mem);  // bind() clears state
  // A fresh run must observe ⊥ before the first write, not stale state.
  EXPECT_EQ(again.phi.get(0, 0), 0u);  // init write observes itself
  EXPECT_TRUE(location_consistent(c, again.phi));
}

}  // namespace
}  // namespace ccmm
