// Theorems 14, 15, 16: the last-writer function exists uniquely per
// topological sort, satisfies the sandwich property, and is an observer
// function.
#include "core/last_writer.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/topsort.hpp"
#include "exec/workload.hpp"

namespace ccmm {
namespace {

Computation sample_computation() {
  // 0: W(0), 1: W(0), 2: R(0), 3: W(1), 4: R(1), chain-ish dag.
  ComputationBuilder b;
  const NodeId a = b.write(0);
  const NodeId bb = b.write(0, {a});
  const NodeId c = b.read(0, {bb});
  const NodeId d = b.write(1, {a});
  b.read(1, {c, d});
  return std::move(b).build();
}

TEST(LastWriter, FollowsSortOrder) {
  const Computation c = sample_computation();
  const auto order = c.dag().topological_order();
  const ObserverFunction w = last_writer(c, order);
  EXPECT_EQ(w.get(0, 0), 0u);
  EXPECT_EQ(w.get(0, 1), 1u);  // 13.2: a write is its own last writer
  EXPECT_EQ(w.get(0, 2), 1u);
  EXPECT_EQ(w.get(1, 0), kBottom);  // before the write to location 1
  EXPECT_EQ(w.get(1, 4), 3u);
}

TEST(LastWriter, RequiresTopologicalSort) {
  const Computation c = sample_computation();
  EXPECT_THROW(last_writer(c, {4, 3, 2, 1, 0}), std::logic_error);
}

TEST(LastWriter, PointQueryAgreesWithFullFunction) {
  const Computation c = sample_computation();
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto t = random_topological_sort(c.dag(), rng);
    const ObserverFunction w = last_writer(c, t);
    for (const Location l : c.written_locations())
      for (NodeId u = 0; u < c.node_count(); ++u)
        EXPECT_EQ(last_writer_at(c, t, l, u), w.get(l, u));
  }
  EXPECT_EQ(last_writer_at(c, c.dag().topological_order(), 0, kBottom),
            kBottom);
}

// Theorem 16: W_T is an observer function, for every computation and sort.
TEST(LastWriter, Theorem16_IsObserverFunction) {
  Rng rng(2);
  for (int round = 0; round < 30; ++round) {
    const Dag d = gen::random_dag(8, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const auto t = greedy_random_topological_sort(c.dag(), rng);
    const ObserverFunction w = last_writer(c, t);
    const auto validity = validate_observer(c, w);
    EXPECT_TRUE(validity.ok) << validity.reason;
  }
}

// Theorem 15: if W_T(l,u) ≺_T v ≼_T u then W_T(l,v) = W_T(l,u).
TEST(LastWriter, Theorem15_SandwichProperty) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const Dag d = gen::random_dag(7, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.3, 0.5, rng);
    const auto t = greedy_random_topological_sort(c.dag(), rng);
    const auto pos = position_index(t);
    const ObserverFunction w = last_writer(c, t);
    for (const Location l : c.written_locations()) {
      for (NodeId u = 0; u < c.node_count(); ++u) {
        const NodeId lw = w.get(l, u);
        if (lw == kBottom) continue;
        for (NodeId v = 0; v < c.node_count(); ++v) {
          if (pos[lw] < pos[v] && pos[v] <= pos[u]) {
            EXPECT_EQ(w.get(l, v), lw);
          }
        }
      }
    }
  }
}

// Theorem 14 (uniqueness): the function is fully determined by T — two
// computations of it must agree; we exercise this by recomputing.
TEST(LastWriter, Theorem14_Deterministic) {
  const Computation c = sample_computation();
  const auto t = c.dag().topological_order();
  EXPECT_EQ(last_writer(c, t), last_writer(c, t));
}

TEST(LastWriter, NoWritesGivesAllBottom) {
  ComputationBuilder b;
  b.read(0);
  b.nop();
  const Computation c = std::move(b).build();
  const ObserverFunction w = last_writer(c, c.dag().topological_order());
  EXPECT_TRUE(w.active_locations().empty());
}

TEST(LastWriter, EmptyComputation) {
  const ObserverFunction w = last_writer(Computation(), {});
  EXPECT_EQ(w.node_count(), 0u);
}

}  // namespace
}  // namespace ccmm
