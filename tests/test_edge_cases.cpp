// Edge cases across modules that the mainline suites do not reach:
// boundary sizes, forced/empty choice sets, diagnostic outputs, and
// defensive-check behaviour.
#include <gtest/gtest.h>

#include <sstream>

#include "construct/extension.hpp"
#include "enumerate/observer_enum.hpp"
#include "enumerate/sampling.hpp"
#include "io/dot.hpp"
#include "io/text.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"
#include "proc/litmus.hpp"

namespace ccmm {
namespace {

TEST(EdgeCases, QDagViolationReportsBottomForNw) {
  // NW with x = ⊥: the reported u must be ⊥ (the middle write blocks ⊥).
  ComputationBuilder b;
  const NodeId w = b.write(0);
  const NodeId r = b.read(0, {w});
  const Computation c = std::move(b).build();
  ObserverFunction phi(c.node_count());
  phi.set(0, w, w);  // the read observes ⊥ after the write
  QDagViolation v;
  EXPECT_FALSE(qdag_consistent(c, phi, DagPred::kNW, &v));
  EXPECT_EQ(v.u, kBottom);
  EXPECT_EQ(v.v, w);
  EXPECT_EQ(v.w, r);
  EXPECT_NE(v.to_string().find("u=_"), std::string::npos);
}

TEST(EdgeCases, QDagViolationReportsWriterForWw) {
  // WW violation: u must be the observed write itself.
  ComputationBuilder b;
  const NodeId w1 = b.write(0);
  const NodeId w2 = b.write(0, {w1});
  const NodeId r = b.read(0, {w2});
  const Computation c = std::move(b).build();
  ObserverFunction phi(c.node_count());
  phi.set(0, w1, w1);
  phi.set(0, w2, w2);
  phi.set(0, r, w1);  // stale read past w2
  QDagViolation v;
  EXPECT_FALSE(qdag_consistent(c, phi, DagPred::kWW, &v));
  EXPECT_EQ(v.u, w1);
  EXPECT_EQ(v.v, w2);
  EXPECT_EQ(v.w, r);
}

TEST(EdgeCases, LcWitnessOnInvalidObserverIsNull) {
  const Computation c = workload::contended_counter(2);
  const ObserverFunction bogus(c.node_count());  // writes don't self-observe
  EXPECT_FALSE(lc_witness(c, bogus, 0).has_value());
}

TEST(EdgeCases, LcWitnessMultiLocationIndependence) {
  // Each location gets its own witness; they may be different sorts.
  const Dag d = gen::antichain(4);
  const Computation c(
      d, {Op::write(0), Op::write(0), Op::write(1), Op::write(1)});
  ObserverFunction phi(4);
  phi.set(0, 0, 0);
  phi.set(0, 1, 1);
  phi.set(1, 2, 2);
  phi.set(1, 3, 3);
  phi.set(0, 2, 0);  // node 2 sees the FIRST write of location 0
  phi.set(0, 3, 1);
  phi.set(1, 0, 3);  // node 0 sees the LAST write of location 1
  phi.set(1, 1, 2);
  ASSERT_TRUE(location_consistent(c, phi));
  const auto t0 = lc_witness(c, phi, 0);
  const auto t1 = lc_witness(c, phi, 1);
  ASSERT_TRUE(t0.has_value());
  ASSERT_TRUE(t1.has_value());
  EXPECT_NE(*t0, *t1);  // the serializations genuinely differ
}

TEST(EdgeCases, ScWithInactiveLocationsIgnoresThem) {
  // Locations never written do not constrain the search.
  ComputationBuilder b;
  const NodeId r = b.read(42);  // reads a never-written location
  b.write(0, {r});
  const Computation c = std::move(b).build();
  ObserverFunction phi(c.node_count());
  phi.set(0, 1, 1);
  EXPECT_TRUE(sequentially_consistent(c, phi));
}

TEST(EdgeCases, ExtensionOfEmptyComputation) {
  const Computation empty;
  std::size_t n = 0;
  for_each_one_node_extension(empty, op_alphabet(1), false,
                              [&](const Computation& ext) {
                                EXPECT_EQ(ext.node_count(), 1u);
                                ++n;
                                return true;
                              });
  EXPECT_EQ(n, 3u);  // 3 ops × 1 (empty) predecessor subset
}

TEST(EdgeCases, ExtensionObserverOnEmptyBase) {
  const Computation empty;
  const ObserverFunction base(0);
  const Computation ext = empty.extend(Op::write(5), {});
  std::size_t n = 0;
  for_each_extension_observer(ext, base, [&](const ObserverFunction& phi) {
    EXPECT_EQ(phi.get(5, 0), 0u);
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(EdgeCases, ObserverEnumWithOnlyWritesIsSingleton) {
  const Dag d = gen::chain(3);
  const Computation c(d, {Op::write(0), Op::write(0), Op::write(0)});
  EXPECT_EQ(observer_count(c), 1u);
}

TEST(EdgeCases, RandomObserverOnWriteOnlyComputationIsForced) {
  Rng rng(3);
  const Dag d = gen::chain(3);
  const Computation c(d, {Op::write(0), Op::write(0), Op::write(0)});
  const ObserverFunction phi = random_observer(c, rng);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(phi.get(0, u), u);
}

TEST(EdgeCases, DotWithoutReadsFromEdges) {
  const auto p = test::figure2_pair();
  io::DotOptions options;
  options.reads_from_edges = false;
  options.name = "custom";
  const std::string dot = io::to_dot(p.c, &p.phi, options);
  EXPECT_EQ(dot.find("rf"), std::string::npos);
  EXPECT_NE(dot.find("digraph custom"), std::string::npos);
}

TEST(EdgeCases, TextFormatEmptyComputation) {
  std::istringstream in("computation\nnodes 0\nend\n");
  const Computation c = io::read_computation(in);
  EXPECT_TRUE(c.empty());
  std::istringstream round(io::write_computation(Computation()));
  EXPECT_TRUE(io::read_computation(round).empty());
}

TEST(EdgeCases, LitmusProgramSingleThreadIsSequential) {
  proc::Litmus t;
  t.name = "seq";
  const proc::Pos w = t.program.add(0, Op::write(0));
  const proc::Pos r = t.program.add(0, Op::read(0));
  t.observed = {{r, w}};
  t.sc_allowed = true;
  t.lc_allowed = true;
  const auto v = proc::run_litmus(t);
  EXPECT_TRUE(v.sc_allowed);
  EXPECT_TRUE(v.lc_allowed);
  EXPECT_TRUE(v.matches_expectation);

  // The stale variant is forbidden even by LC (freshness via ⊥-block).
  proc::Litmus stale = t;
  stale.observed = {{r, std::nullopt}};
  stale.sc_allowed = false;
  stale.lc_allowed = false;
  EXPECT_TRUE(proc::run_litmus(stale).matches_expectation);
}

TEST(EdgeCases, AugmentedComputationOfEmptyIsSingleton) {
  const Computation empty;
  const Computation aug = empty.augment(Op::nop());
  EXPECT_EQ(aug.node_count(), 1u);
  EXPECT_TRUE(aug.dag().edges().empty());
}

TEST(EdgeCases, BetweenBottomAndSourceIsEmpty) {
  const Dag d = gen::chain(3);
  EXPECT_EQ(d.between(kBottom, 0).count(), 0u);
  EXPECT_EQ(d.between(0, 1).count(), 0u);  // adjacent: open interval empty
}

TEST(EdgeCases, MonotonicityOfLastWriterUnderAugment) {
  // aug_o(C)'s last-writer function restricted to C equals C's — the
  // observation behind the SC/LC constructibility proof (Theorem 19).
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const Computation aug = c.augment(Op::read(0));
    // The canonical order of aug puts final(C) last (it succeeds all).
    const auto t_aug = aug.dag().topological_order();
    EXPECT_EQ(t_aug.back(), c.final_node_id());
    const ObserverFunction w_aug = last_writer(aug, t_aug);
    std::vector<NodeId> t_c(t_aug.begin(), t_aug.end() - 1);
    const ObserverFunction w_c = last_writer(c, t_c);
    for (const Location l : c.written_locations())
      for (NodeId u = 0; u < c.node_count(); ++u)
        EXPECT_EQ(w_aug.get(l, u), w_c.get(l, u));
  }
}

}  // namespace
}  // namespace ccmm
