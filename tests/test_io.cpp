#include <gtest/gtest.h>

#include <sstream>

#include "construct/witness.hpp"
#include "io/dot.hpp"
#include "io/text.hpp"
#include "models/examples.hpp"
#include "proc/random_program.hpp"
#include "util/rng.hpp"

namespace ccmm::io {
namespace {

TEST(TextIo, ComputationRoundTrip) {
  const auto p = examples::figure2();
  const std::string text = write_computation(p.c);
  std::istringstream in(text);
  const Computation back = read_computation(in);
  EXPECT_EQ(back, p.c);
}

TEST(TextIo, ObserverRoundTrip) {
  const auto p = examples::figure2();
  const std::string text = write_observer(p.phi);
  std::istringstream in(text);
  const ObserverFunction back = read_observer(in, p.c.node_count());
  EXPECT_EQ(back, p.phi);
}

TEST(TextIo, PairRoundTrip) {
  for (const auto& p : examples::all()) {
    std::istringstream in(write_pair(p.c, p.phi));
    const TextPair back = read_pair(in);
    EXPECT_EQ(back.c, p.c) << p.name;
    ASSERT_TRUE(back.phi.has_value()) << p.name;
    EXPECT_EQ(*back.phi, p.phi) << p.name;
  }
}

TEST(TextIo, PairWithoutObserver) {
  const auto p = examples::figure3();
  std::istringstream in(write_computation(p.c));
  const TextPair back = read_pair(in);
  EXPECT_EQ(back.c, p.c);
  EXPECT_FALSE(back.phi.has_value());
}

TEST(TextIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\ncomputation\n nodes 2 # trailing\n"
      "op 0 W 3\nedge 0 1\nend\n";
  std::istringstream in(text);
  const Computation c = read_computation(in);
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_EQ(c.op(0), Op::write(3));
  EXPECT_EQ(c.op(1), Op::nop());  // default
  EXPECT_TRUE(c.precedes(0, 1));
}

TEST(TextIo, BottomSpelledAsUnderscore) {
  const std::string text = "observer\nphi 0 1 _\nphi 0 0 0\nend\n";
  std::istringstream in(text);
  const ObserverFunction phi = read_observer(in, 2);
  EXPECT_EQ(phi.get(0, 1), kBottom);
  EXPECT_EQ(phi.get(0, 0), 0u);
}

TEST(TextIo, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)read_computation(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus\n", "expected 'computation'");
  expect_error("computation\nop 0 W 0\nend\n", "'op' before 'nodes'");
  expect_error("computation\nnodes 2\nop 0 X\nend\n", "unknown op kind");
  expect_error("computation\nnodes 2\nedge 0 9\nend\n", "out of range");
  expect_error("computation\nnodes 1\n", "unexpected end");
  expect_error("computation\nnodes 2\nedge 0 1\nedge 1 0\nend\n", "cycle");
}

TEST(TextIo, SpStructureRoundTripsThroughText) {
  Rng rng(17);
  proc::RandomCilkOptions opt;
  opt.target_ops = 400;
  opt.nlocations = 4;
  const Computation c = proc::random_cilk(opt, rng);
  ASSERT_NE(c.sp_structure(), nullptr);
  std::istringstream in(write_computation(c));
  const Computation back = read_computation(in);
  EXPECT_EQ(back, c);
  // The series-parallel parse must survive: dropping it silently
  // demotes every reader to generic-dag oracles (a ~100x slowdown for
  // online checking), so this is a correctness property of the format.
  ASSERT_NE(back.sp_structure(), nullptr);
  EXPECT_EQ(back.sp_structure()->node_count, c.sp_structure()->node_count);
  EXPECT_EQ(back.sp_structure()->strands, c.sp_structure()->strands);
}

TEST(TextIo, StrandParseErrors) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)read_computation(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("computation\nstrand n0\nnodes 1\nend\n",
               "'strand' before 'nodes'");
  expect_error("computation\nnodes 2\nstrand x0\nend\n", "bad strand event");
  expect_error("computation\nnodes 2\nstrand n5\nend\n", "out of range");
  expect_error("computation\nnodes 2\nstrand n0 s3\nend\n",
               "unknown strand");
}

TEST(TextIo, Figure4WitnessRoundTripsThroughText) {
  const NonconstructibilityWitness w = figure4_witness();
  std::istringstream in(write_pair(w.c, w.phi));
  const TextPair back = read_pair(in);
  EXPECT_EQ(back.c, w.c);
  EXPECT_EQ(*back.phi, w.phi);
}

TEST(DotIo, ContainsNodesEdgesAndObserver) {
  const auto p = examples::figure2();
  const std::string dot = to_dot(p.c, &p.phi);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0: W(0)"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("rf"), std::string::npos);  // reads-from edge
  EXPECT_NE(dot.find("Φ(0)="), std::string::npos);
}

TEST(DotIo, PlainDag) {
  Dag d(2);
  d.add_edge(0, 1);
  const std::string dot = to_dot(d);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace ccmm::io
