#include "proc/program.hpp"

#include <gtest/gtest.h>

namespace ccmm::proc {
namespace {

TEST(Program, UnfoldsThreadsIntoChains) {
  Program p;
  const Pos a = p.add(0, Op::write(0));
  const Pos b = p.add(0, Op::read(0));
  const Pos c = p.add(1, Op::write(1));
  const ProgramComputation pc = unfold(p);
  EXPECT_EQ(pc.c.node_count(), 3u);
  EXPECT_TRUE(pc.c.precedes(pc.node(a), pc.node(b)));
  EXPECT_FALSE(pc.c.precedes(pc.node(a), pc.node(c)));
  EXPECT_FALSE(pc.c.precedes(pc.node(c), pc.node(a)));
  EXPECT_EQ(pc.c.op(pc.node(a)), Op::write(0));
  EXPECT_EQ(pc.c.op(pc.node(c)), Op::write(1));
}

TEST(Program, SyncEdgesCrossThreads) {
  Program p;
  const Pos w = p.add(0, Op::write(0));
  const Pos r = p.add(1, Op::read(0));
  p.sync(w, r);
  const ProgramComputation pc = unfold(p);
  EXPECT_TRUE(pc.c.precedes(pc.node(w), pc.node(r)));
}

TEST(Program, SyncCycleRejected) {
  Program p;
  const Pos a = p.add(0, Op::nop());
  const Pos b = p.add(0, Op::nop());
  const Pos c = p.add(1, Op::nop());
  const Pos d = p.add(1, Op::nop());
  p.sync(b, c);
  p.sync(d, a);  // closes a cycle a->b->c->d->a
  EXPECT_THROW((void)unfold(p), std::logic_error);
}

TEST(Program, OutOfRangeSyncRejected) {
  Program p;
  p.add(0, Op::nop());
  p.sync({0, 0}, {5, 0});
  EXPECT_THROW((void)unfold(p), std::logic_error);
}

TEST(Program, EmptyProgram) {
  const ProgramComputation pc = unfold(Program{});
  EXPECT_TRUE(pc.c.empty());
}

TEST(Program, UnevenThreadLengths) {
  Program p;
  p.add(0, Op::nop());
  p.add(0, Op::nop());
  p.add(0, Op::nop());
  p.add(1, Op::nop());
  const ProgramComputation pc = unfold(p);
  EXPECT_EQ(pc.c.node_count(), 4u);
  EXPECT_EQ(pc.node_of[0].size(), 3u);
  EXPECT_EQ(pc.node_of[1].size(), 1u);
  // Program order within thread 0 holds.
  EXPECT_TRUE(pc.c.precedes(pc.node_of[0][0], pc.node_of[0][2]));
}

TEST(Program, PositionLookupValidated) {
  Program p;
  p.add(0, Op::nop());
  const ProgramComputation pc = unfold(p);
  EXPECT_THROW((void)pc.node({3, 0}), std::logic_error);
}

}  // namespace
}  // namespace ccmm::proc
