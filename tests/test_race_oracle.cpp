// The oracle-backed race engine (analyze/race_oracle.hpp) is pinned
// byte-for-byte against the exhaustive pairwise engine: same race set —
// pairs, locations, kinds — on exhaustive small-dag enumeration and on
// random layered / fork-join / perturbed families, under every oracle
// choice and both enumeration paths (direct oracle pairs and the
// 64-anchor mask sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "analyze/race_oracle.hpp"
#include "dag/generators.hpp"
#include "enumerate/dag_enum.hpp"
#include "exec/workload.hpp"
#include "proc/random_program.hpp"
#include "trace/race.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ccmm {
namespace {

using analyze::RaceScanOptions;
using analyze::RaceScanStats;

bool race_order(const Race& x, const Race& y) {
  if (x.a != y.a) return x.a < y.a;
  if (x.b != y.b) return x.b < y.b;
  return x.loc < y.loc;
}

std::vector<Race> sorted_pairwise(const Computation& c) {
  std::vector<Race> races = find_races_pairwise(c);
  std::sort(races.begin(), races.end(), race_order);
  return races;
}

/// Every oracle choice and both enumeration paths must reproduce the
/// pairwise race set exactly.
void expect_matches_pairwise(const Computation& c, const char* what) {
  const std::vector<Race> expected = sorted_pairwise(c);
  struct Config {
    OracleChoice choice;
    std::size_t threshold;  // direct-pair threshold: SIZE_MAX = all
                            // direct, 0 = all racy locations masked
    const char* name;
  };
  const Config configs[] = {
      {OracleChoice::kAuto, SIZE_MAX, "auto/direct"},
      {OracleChoice::kAuto, 0, "auto/mask"},
      {OracleChoice::kClosure, SIZE_MAX, "closure/direct"},
      {OracleChoice::kClosure, 0, "closure/mask"},
      {OracleChoice::kChain, SIZE_MAX, "chain/direct"},
      {OracleChoice::kChain, 0, "chain/mask"},
  };
  for (const Config& cfg : configs) {
    RaceScanOptions opt;
    opt.oracle.choice = cfg.choice;
    opt.direct_pair_threshold = cfg.threshold;
    const std::vector<Race> got = analyze::find_races_oracle(c, opt);
    ASSERT_EQ(got.size(), expected.size())
        << what << " [" << cfg.name << "]";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << what << " [" << cfg.name
                                     << "] race " << i;
    }
    EXPECT_EQ(analyze::has_race_oracle(c, opt), !expected.empty())
        << what << " [" << cfg.name << "]";
    const std::optional<Race> first = analyze::find_first_race(c, opt);
    ASSERT_EQ(first.has_value(), !expected.empty())
        << what << " [" << cfg.name << "]";
    if (first.has_value() && !expected.empty()) {
      // find_first_race reports each racy location's phase-1 race and
      // keeps the (a, b, loc)-least; that race must be in the full set.
      EXPECT_TRUE(std::binary_search(expected.begin(), expected.end(),
                                     *first, race_order))
          << what << " [" << cfg.name << "]";
    }
  }
}

Op op_from_index(std::size_t k) {
  switch (k) {
    case 0:
      return Op::write(0);
    case 1:
      return Op::read(0);
    case 2:
      return Op::write(1);
    case 3:
      return Op::read(1);
    default:
      return Op::nop();
  }
}

TEST(RaceOracle, ExhaustiveDagsExhaustiveOpsN3) {
  // All 8 topo-dags on 3 nodes x all 125 op assignments.
  for_each_topo_dag(3, [&](const Dag& dag) {
    for (std::size_t code = 0; code < 125; ++code) {
      std::vector<Op> ops(3);
      std::size_t rem = code;
      for (std::size_t u = 0; u < 3; ++u) {
        ops[u] = op_from_index(rem % 5);
        rem /= 5;
      }
      expect_matches_pairwise(Computation(dag, ops), "n=3 exhaustive");
    }
    return true;
  });
}

TEST(RaceOracle, ExhaustiveDagsExhaustiveOpsN4) {
  // All 64 topo-dags on 4 nodes x all 625 op assignments over two
  // locations.
  for_each_topo_dag(4, [&](const Dag& dag) {
    for (std::size_t code = 0; code < 625; ++code) {
      std::vector<Op> ops(4);
      std::size_t rem = code;
      for (std::size_t u = 0; u < 4; ++u) {
        ops[u] = op_from_index(rem % 5);
        rem /= 5;
      }
      expect_matches_pairwise(Computation(dag, ops), "n=4 exhaustive");
    }
    return true;
  });
}

TEST(RaceOracle, ExhaustiveDagsRandomOpsN5N6) {
  Rng rng(0xD1FF);
  for (std::size_t n = 5; n <= 6; ++n) {
    std::size_t visited = 0;
    for_each_topo_dag(n, [&](const Dag& dag) {
      // n=6 has 2^15 dags: thin the sweep, keep it exhaustive at n=5.
      if (n == 6 && (visited++ % 23) != 0) return true;
      for (int trial = 0; trial < 3; ++trial) {
        std::vector<Op> ops(n);
        for (std::size_t u = 0; u < n; ++u)
          ops[u] = op_from_index(rng.below(5));
        expect_matches_pairwise(Computation(dag, ops), "n=5/6 sweep");
      }
      return true;
    });
  }
}

TEST(RaceOracle, RandomLayeredFamily) {
  Rng rng(0xAB1);
  for (int trial = 0; trial < 6; ++trial) {
    const Dag dag = gen::layered({4, 6, 6, 4}, 0.35, rng);
    const Computation c = workload::random_ops(dag, 3, 0.4, 0.4, rng);
    expect_matches_pairwise(c, "layered");
  }
}

TEST(RaceOracle, RandomSparseFamily) {
  Rng rng(0xAB2);
  for (int trial = 0; trial < 6; ++trial) {
    const Dag dag = gen::random_dag(24, 0.12, rng);
    const Computation c = workload::random_ops(dag, 4, 0.35, 0.45, rng);
    expect_matches_pairwise(c, "random");
  }
}

TEST(RaceOracle, CilkFamilyWithAndWithoutParse) {
  Rng rng(0xAB3);
  proc::RandomCilkOptions opt;
  opt.target_ops = 120;
  opt.nlocations = 5;
  for (int trial = 0; trial < 4; ++trial) {
    const Computation sp = proc::random_cilk(opt, rng);
    // With the parse: make_oracle auto picks sp-order. Without: the
    // general-dag tiers. Same dag, same race set either way.
    RaceScanOptions sp_opt;
    const std::vector<Race> via_sp = analyze::find_races_oracle(sp, sp_opt);
    const std::vector<Race> expected = sorted_pairwise(sp);
    EXPECT_EQ(via_sp, expected);
    const Computation general(Dag(sp.node_count(), sp.dag().edges()),
                              sp.ops());
    expect_matches_pairwise(general, "cilk/parse-dropped");
  }
}

TEST(RaceOracle, PerturbedCilkFamily) {
  // Fork/join dags plus random forward edges: no longer
  // series-parallel, exercises the general-dag oracles on
  // SP-adjacent shapes.
  Rng rng(0xAB4);
  proc::RandomCilkOptions opt;
  opt.target_ops = 90;
  opt.nlocations = 4;
  for (int trial = 0; trial < 4; ++trial) {
    const Computation sp = proc::random_cilk(opt, rng);
    std::vector<Edge> edges = sp.dag().edges();
    const std::size_t n = sp.node_count();
    for (int extra = 0; extra < 8; ++extra) {
      const NodeId u = static_cast<NodeId>(rng.below(n));
      const NodeId v = static_cast<NodeId>(rng.below(n));
      if (u < v) edges.push_back({u, v});
    }
    expect_matches_pairwise(Computation(Dag(n, edges), sp.ops()),
                            "cilk/perturbed");
  }
}

TEST(RaceOracle, WriterHeavyAntichainsStressMaskDedupe) {
  // Many parallel writers of the same locations: the writer/writer
  // dedupe in the mask path must emit each unordered pair exactly once
  // even when a location's anchors span chunk boundaries.
  Rng rng(0xAB5);
  for (const std::size_t writers : {20UL, 70UL, 130UL}) {
    Dag dag(writers, {});
    std::vector<Op> ops;
    for (std::size_t u = 0; u < writers; ++u)
      ops.push_back(u % 4 == 3 ? Op::read(u % 2) : Op::write(u % 2));
    expect_matches_pairwise(Computation(dag, ops), "antichain");
  }
}

TEST(RaceOracle, MaxRacesTruncates) {
  // An antichain of 40 writers to one location has 780 races.
  Dag dag(40, {});
  const Computation c(dag, std::vector<Op>(40, Op::write(0)));
  RaceScanOptions opt;
  opt.max_races = 17;
  RaceScanStats st;
  const std::vector<Race> races = analyze::find_races_oracle(c, opt, &st);
  EXPECT_EQ(races.size(), 17u);
  EXPECT_TRUE(st.truncated);
  RaceScanOptions all;
  RaceScanStats st_all;
  EXPECT_EQ(analyze::find_races_oracle(c, all, &st_all).size(), 780u);
  EXPECT_FALSE(st_all.truncated);
}

TEST(RaceOracle, StatsReportScanShape) {
  Rng rng(0xAB6);
  proc::RandomCilkOptions opt;
  opt.target_ops = 200;
  opt.nlocations = 4;
  const Computation c = proc::random_cilk(opt, rng);
  RaceScanOptions sopt;
  sopt.direct_pair_threshold = 0;  // force the mask path
  RaceScanStats st;
  const std::vector<Race> races = analyze::find_races_oracle(c, sopt, &st);
  EXPECT_EQ(st.races, races.size());
  EXPECT_EQ(st.oracle_kind, "sp-order");
  EXPECT_EQ(st.direct_locations, 0u);
  if (!races.empty()) {
    EXPECT_GT(st.racy_locations, 0u);
    EXPECT_GT(st.mask_groups, 0u);
  }
  const std::string rendered = st.to_string();
  EXPECT_NE(rendered.find("sp-order"), std::string::npos);
  EXPECT_NE(rendered.find("mask"), std::string::npos);
}

TEST(RaceOracle, EngineSelectionPolicy) {
  // SP parse recorded -> SP-bags.
  Rng rng(0xAB7);
  proc::RandomCilkOptions opt;
  opt.target_ops = 60;
  const Computation sp = proc::random_cilk(opt, rng);
  EXPECT_EQ(select_race_engine(sp), RaceEngine::kSpBags);

  // Small, no parse -> pairwise.
  const Computation small(Dag(8, {{0, 1}, {1, 2}}),
                          std::vector<Op>(8, Op::write(0)));
  EXPECT_EQ(select_race_engine(small), RaceEngine::kPairwise);

  // Past the cutoff, no parse -> oracle.
  std::vector<Edge> chain_edges;
  const std::size_t big_n = kPairwiseNodeCutoff + 8;
  for (NodeId u = 0; u + 1 < big_n; ++u) chain_edges.push_back({u, u + 1});
  const Computation big(Dag(big_n, chain_edges),
                        std::vector<Op>(big_n, Op::read(0)));
  EXPECT_EQ(select_race_engine(big), RaceEngine::kOracle);

  // find_races dispatches through the policy: the serial chain of
  // reads is race-free under every engine.
  EXPECT_TRUE(find_races(big).empty());
  EXPECT_FALSE(has_race(big));
}

TEST(RaceOracle, RaceEngineNames) {
  EXPECT_STREQ(race_engine_name(RaceEngine::kAuto), "auto");
  EXPECT_STREQ(race_engine_name(RaceEngine::kSpBags), "sp-bags");
  EXPECT_STREQ(race_engine_name(RaceEngine::kPairwise), "pairwise");
  EXPECT_STREQ(race_engine_name(RaceEngine::kOracle), "oracle");
}

// ---------------------------------------------------------------------
// Sharded-engine stress: explicit pools of several sizes must produce
// the identical race set (run under TSan by the *Parallel* CI filter).

class RaceOracleParallel : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RaceOracleParallel, ShardedScanMatchesSequential) {
  Rng rng(0xCAFE + GetParam());
  proc::RandomCilkOptions opt;
  opt.target_ops = 600;
  opt.nlocations = 24;  // plenty of shards
  const Computation c = proc::random_cilk(opt, rng);

  ThreadPool pool(GetParam());
  RaceScanOptions par;
  par.pool = &pool;
  par.parallel = true;
  RaceScanOptions seq;
  seq.parallel = false;
  const std::vector<Race> a = analyze::find_races_oracle(c, par);
  const std::vector<Race> b = analyze::find_races_oracle(c, seq);
  EXPECT_EQ(a, b);
  EXPECT_EQ(analyze::has_race_oracle(c, par),
            analyze::has_race_oracle(c, seq));
  EXPECT_EQ(analyze::find_first_race(c, par),
            analyze::find_first_race(c, seq));
}

TEST_P(RaceOracleParallel, CappedShardedScanStaysTruncated) {
  // The soft cap is shared mutable state across shards: hammer it from
  // a real pool and check the merge invariants hold.
  Rng rng(0x5EED + GetParam());
  proc::RandomCilkOptions opt;
  opt.target_ops = 500;
  opt.nlocations = 6;  // racy and writer-heavy
  const Computation c = proc::random_cilk(opt, rng);
  ThreadPool pool(GetParam());
  RaceScanOptions capped;
  capped.pool = &pool;
  capped.max_races = 25;
  capped.direct_pair_threshold = 0;  // mask path exercises chunk skips
  RaceScanStats st;
  const std::vector<Race> races = analyze::find_races_oracle(c, capped, &st);
  EXPECT_LE(races.size(), 25u);
  const std::size_t full = analyze::find_races_oracle(c).size();
  if (full > 25) {
    EXPECT_TRUE(st.truncated);
    EXPECT_EQ(races.size(), 25u);
  } else {
    EXPECT_EQ(races.size(), full);
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, RaceOracleParallel,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ccmm
