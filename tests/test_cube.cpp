#include <gtest/gtest.h>

#include "enumerate/universe.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

TEST(PredicateCube, NamedCornersMatchNamedModels) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  const struct {
    CubeSpec cube;
    DagPred named;
  } pairs[] = {
      {{false, false, false}, DagPred::kNN},
      {{false, true, false}, DagPred::kNW},
      {{true, false, false}, DagPred::kWN},
      {{true, true, false}, DagPred::kWW},
  };
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& f) {
    for (const auto& [cube, named] : pairs)
      EXPECT_EQ(cube_consistent(c, f, cube), qdag_consistent(c, f, named))
          << cube_name(cube);
    return true;
  });
}

TEST(PredicateCube, Naming) {
  EXPECT_EQ(cube_name({false, false, false}), "Q[NNN]");
  EXPECT_EQ(cube_name({true, false, true}), "Q[WNW]");
  EXPECT_EQ(cube_name({true, true, true}), "Q[WWW]");
}

TEST(PredicateCube, AllCornersEnumerated) {
  const auto corners = all_cube_corners();
  EXPECT_EQ(corners.size(), 8u);
  std::set<std::string> names;
  for (const CubeSpec c : corners) names.insert(cube_name(c));
  EXPECT_EQ(names.size(), 8u);
}

TEST(PredicateCube, MoreConstraintsWeakenTheModel) {
  // Adding a W constraint shrinks Q, hence weakens the model: on the
  // exhaustive universe, Q[NNN] ⊆ Q[xyz] ⊆ Q[WWW] for every corner.
  UniverseSpec spec;
  spec.max_nodes = 4;
  spec.nlocations = 1;
  spec.include_nop = false;
  const auto corners = all_cube_corners();
  std::size_t pairs = 0;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& f) {
    ++pairs;
    const bool in_nnn = cube_consistent(c, f, {false, false, false});
    const bool in_www = cube_consistent(c, f, {true, true, true});
    for (const CubeSpec corner : corners) {
      const bool in_corner = cube_consistent(c, f, corner);
      if (in_nnn) {
        EXPECT_TRUE(in_corner) << cube_name(corner);
      }
      if (in_corner) {
        EXPECT_TRUE(in_www) << cube_name(corner);
      }
    }
    return true;  // full sweep
  });
  EXPECT_GT(pairs, 4000u);
}

TEST(PredicateCube, WConstraintSeparates) {
  // Q[NNW] differs from Q[NNN] = NN: a triple whose w is a *read* no
  // longer fires. Figure 2's pair (rejected by NN via triple with read
  // w = D) should be accepted by Q[NNW].
  const auto p = test::figure2_pair();
  EXPECT_FALSE(cube_consistent(p.c, p.phi, {false, false, false}));
  EXPECT_TRUE(cube_consistent(p.c, p.phi, {false, false, true}));
}

TEST(PredicateCube, ModelObjectsWork) {
  const auto m = cube_model({false, true, true});
  EXPECT_EQ(m->name(), "Q[NWW]");
  const auto p = test::lc_not_sc_pair();
  EXPECT_TRUE(m->contains(p.c, p.phi));
}

}  // namespace
}  // namespace ccmm
