// Definition 18: location consistency, and the polynomial membership
// algorithm (block quotient) cross-checked against the brute-force
// definition (exists a topological sort per location).
#include "models/location_consistency.hpp"

#include <gtest/gtest.h>

#include "core/last_writer.hpp"
#include "dag/generators.hpp"
#include "dag/topsort.hpp"
#include "enumerate/observer_enum.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"

namespace ccmm {
namespace {

/// Brute-force Definition 18: per location, search TS(C) for a sort whose
/// last-writer column matches.
bool lc_by_definition(const Computation& c, const ObserverFunction& phi) {
  if (!is_valid_observer(c, phi)) return false;
  for (const Location l : phi.active_locations()) {
    bool found = false;
    for_each_topological_sort(c.dag(), [&](const std::vector<NodeId>& t) {
      const ObserverFunction w = last_writer(c, t);
      bool match = true;
      for (NodeId u = 0; u < c.node_count(); ++u)
        if (w.get(l, u) != phi.get(l, u)) {
          match = false;
          break;
        }
      if (match) {
        found = true;
        return false;
      }
      return true;
    });
    if (!found) return false;
  }
  return true;
}

TEST(LocationConsistency, EmptyComputation) {
  EXPECT_TRUE(location_consistent(Computation(), ObserverFunction(0)));
}

TEST(LocationConsistency, LastWriterIsAlwaysLC) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const Dag d = gen::random_dag(8, 0.3, rng);
    const Computation c = workload::random_ops(d, 2, 0.4, 0.4, rng);
    const ObserverFunction w =
        last_writer(c, greedy_random_topological_sort(c.dag(), rng));
    EXPECT_TRUE(location_consistent(c, w));
  }
}

TEST(LocationConsistency, PerLocationIndependentSortsAreLC) {
  // Distinct sorts per location — the defining freedom of LC.
  const Dag d = gen::antichain(4);
  const Computation c(
      d, {Op::write(0), Op::write(0), Op::write(1), Op::write(1)});
  const ObserverFunction w0 = last_writer(c, {0, 1, 2, 3});
  const ObserverFunction w1 = last_writer(c, {3, 2, 1, 0});
  ObserverFunction mixed(4);
  for (NodeId u = 0; u < 4; ++u) {
    if (w0.get(0, u) != kBottom) mixed.set(0, u, w0.get(0, u));
    if (w1.get(1, u) != kBottom) mixed.set(1, u, w1.get(1, u));
  }
  // Writes must observe themselves; patch the cross-location columns the
  // two sorts disagree on... they agree on own-writes by construction.
  EXPECT_TRUE(is_valid_observer(c, mixed));
  EXPECT_TRUE(location_consistent(c, mixed));
}

TEST(LocationConsistency, FiguresAreNotLC) {
  EXPECT_FALSE(location_consistent(test::figure2_pair().c,
                                   test::figure2_pair().phi));
  EXPECT_FALSE(location_consistent(test::figure3_pair().c,
                                   test::figure3_pair().phi));
}

TEST(LocationConsistency, LcNotScPairIsLC) {
  const auto p = test::lc_not_sc_pair();
  EXPECT_TRUE(location_consistent(p.c, p.phi));
}

TEST(LocationConsistency, QuotientCycleDetected) {
  // The minimal Figure-4 core: blocks {A,C} and {B,D} crossing both ways.
  Dag g(4);
  g.add_edge(0, 3);  // C -> B
  g.add_edge(1, 2);  // D -> A
  const Computation c(
      g, {Op::read(0), Op::read(0), Op::write(0), Op::write(0)});
  ObserverFunction phi(4);
  phi.set(0, 0, 2);
  phi.set(0, 1, 3);
  phi.set(0, 2, 2);
  phi.set(0, 3, 3);
  EXPECT_FALSE(location_consistent(c, phi));
  EXPECT_FALSE(location_consistent_at(c, phi, 0));
}

TEST(LocationConsistency, BottomBlockMustComeFirst) {
  // A node observing ⊥ *after* a write in dag order cannot be serialized.
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.nop({w});  // succeeds the write but observes ⊥
  const Computation c = std::move(b).build();
  ObserverFunction phi(2);
  phi.set(0, w, w);
  EXPECT_FALSE(location_consistent(c, phi));
}

TEST(LocationConsistency, WitnessSortReproducesPhi) {
  Rng rng(3);
  int verified = 0;
  for (int round = 0; round < 60; ++round) {
    const Dag d = gen::random_dag(6, 0.3, rng);
    const Computation c = workload::random_ops(d, 1, 0.4, 0.4, rng);
    int budget = 20;
    for_each_observer(c, [&](const ObserverFunction& phi) {
      if (location_consistent(c, phi) && !c.writers(0).empty()) {
        const auto t = lc_witness(c, phi, 0);
        EXPECT_TRUE(t.has_value());
        if (t.has_value()) {
          EXPECT_TRUE(is_topological_sort(c.dag(), *t));
          const ObserverFunction w = last_writer(c, *t);
          for (NodeId u = 0; u < c.node_count(); ++u)
            EXPECT_EQ(w.get(0, u), phi.get(0, u));
          ++verified;
        }
      }
      return --budget > 0;
    });
  }
  EXPECT_GT(verified, 50);
}

TEST(LocationConsistency, AgreesWithBruteForceDefinition) {
  // The real theorem for the polynomial algorithm: exhaustive agreement
  // with Definition 18 on small computations.
  Rng rng(4);
  std::size_t checked = 0, members = 0;
  for (int round = 0; round < 50; ++round) {
    const Dag d = gen::random_dag(5, 0.35, rng);
    const Computation c = workload::random_ops(d, 2, 0.35, 0.45, rng);
    for_each_observer(c, [&](const ObserverFunction& phi) {
      const bool fast = location_consistent(c, phi);
      const bool slow = lc_by_definition(c, phi);
      EXPECT_EQ(fast, slow);
      ++checked;
      members += fast ? 1 : 0;
      return checked % 997 != 0;  // sample a prefix of each space
    });
  }
  EXPECT_GT(checked, 1000u);
  EXPECT_GT(members, 0u);
}

TEST(LocationConsistency, ModelObject) {
  const auto m = LocationConsistencyModel::instance();
  EXPECT_EQ(m->name(), "LC");
  const auto p = test::lc_not_sc_pair();
  EXPECT_TRUE(m->contains(p.c, p.phi));
  const auto any = m->any_observer(p.c);
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(m->contains(p.c, *any));
}

}  // namespace
}  // namespace ccmm
