#include "util/span_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ccmm {
namespace {

TEST(SpanSet, StartsEmptyWithNoStorage) {
  SpanSet s(1000);
  EXPECT_EQ(s.universe_size(), 1000u);
  EXPECT_TRUE(s.is_empty_rep());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.memory_bytes(), 0u);
  for (std::size_t i = 0; i < 1000; i += 37) EXPECT_FALSE(s.test(i));
}

TEST(SpanSet, SetResetAcrossWordBoundaries) {
  SpanSet s(300);
  for (const std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 299u}) {
    s.set(i);
    EXPECT_TRUE(s.test(i));
  }
  EXPECT_EQ(s.count(), 7u);
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(65));
  EXPECT_EQ(s.count(), 6u);
  // Resetting an already-clear bit (and one outside the blob) is a no-op.
  s.reset(64);
  s.reset(200);
  EXPECT_EQ(s.count(), 6u);
}

TEST(SpanSet, FullRepresentationNeedsNoStorage) {
  SpanSet s(129);
  s.make_full();
  EXPECT_TRUE(s.is_full_rep());
  EXPECT_EQ(s.count(), 129u);
  EXPECT_EQ(s.memory_bytes(), 0u);
  for (std::size_t i = 0; i < 129; ++i) EXPECT_TRUE(s.test(i));
  // Punching a hole forces the blob representation but keeps content.
  s.reset(70);
  EXPECT_FALSE(s.is_full_rep());
  EXPECT_FALSE(s.test(70));
  EXPECT_EQ(s.count(), 128u);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(128));
}

TEST(SpanSet, BlobGrowsInBothDirections) {
  // Start in the middle, then extend left and right; the blob must
  // re-anchor without losing the earlier bits.
  SpanSet s(100000);
  s.set(50000);
  s.set(80000);  // grow right
  s.set(100);    // grow left
  s.set(99999);  // grow right again
  s.set(0);      // all the way left
  for (const std::size_t i : {0u, 100u, 50000u, 80000u, 99999u})
    EXPECT_TRUE(s.test(i));
  EXPECT_EQ(s.count(), 5u);
  // A clustered set's storage is proportional to the dirty interval,
  // but the slack growth is geometric — a full-universe interval is the
  // worst case.
  EXPECT_LE(s.memory_bytes(), 4 * (100000 / 8));
}

TEST(SpanSet, LeftToRightFillStaysCheap) {
  SpanSet s(1 << 16);
  for (std::size_t i = 0; i < (1 << 16); ++i) s.set(i);
  EXPECT_EQ(s.count(), std::size_t{1} << 16);
  s.normalize();
  EXPECT_TRUE(s.is_full_rep());
  EXPECT_EQ(s.memory_bytes(), 0u);
}

TEST(SpanSet, NormalizeCollapsesAndShavesZeros) {
  SpanSet s(256);
  s.set(128);
  s.reset(128);  // all-zero blob
  EXPECT_FALSE(s.is_empty_rep());
  s.normalize();
  EXPECT_TRUE(s.is_empty_rep());

  SpanSet t(256);
  for (std::size_t i = 0; i < 256; ++i) t.set(i);
  EXPECT_FALSE(t.is_full_rep());
  t.normalize();
  EXPECT_TRUE(t.is_full_rep());

  // Zero words at the blob's ends are shaved but interior holes stay.
  SpanSet u(512);
  u.set(100);
  u.set(300);
  u.reset(100);
  u.normalize();
  EXPECT_FALSE(u.is_empty_rep());
  EXPECT_FALSE(u.is_full_rep());
  EXPECT_TRUE(u.test(300));
  EXPECT_EQ(u.count(), 1u);
}

TEST(SpanSet, TailWordEdges) {
  // Universe sizes at and around the word boundary: make_full and
  // normalize must agree on the tail mask.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u}) {
    SpanSet s(n);
    for (std::size_t i = 0; i < n; ++i) s.set(i);
    EXPECT_EQ(s.count(), n) << n;
    s.normalize();
    EXPECT_TRUE(s.is_full_rep()) << n;
    SpanSet f(n);
    f.make_full();
    EXPECT_EQ(s, f) << n;
    f.reset(n - 1);
    EXPECT_EQ(f.count(), n - 1) << n;
  }
  // The degenerate universe: make_full on nothing is still empty.
  SpanSet z(0);
  z.make_full();
  EXPECT_TRUE(z.is_empty_rep());
  EXPECT_EQ(z.count(), 0u);
}

TEST(SpanSet, EqualityIgnoresRepresentation) {
  SpanSet full_rep(192);
  full_rep.make_full();
  SpanSet blob_rep(192);
  for (std::size_t i = 0; i < 192; ++i) blob_rep.set(i);
  EXPECT_EQ(full_rep, blob_rep);  // un-normalized all-ones blob == kFull

  SpanSet empty_rep(192);
  SpanSet zero_blob(192);
  zero_blob.set(5);
  zero_blob.reset(5);
  EXPECT_EQ(empty_rep, zero_blob);

  SpanSet a(192), b(192);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  b.set(11);
  EXPECT_FALSE(a == b);

  // Different universes are never equal, whatever the content.
  EXPECT_FALSE(SpanSet(10) == SpanSet(11));
}

TEST(SpanSet, ForEachVisitsInOrder) {
  SpanSet s(100000);
  const std::vector<std::size_t> want = {3, 63, 64, 6000, 99999};
  for (const std::size_t i : want) s.set(i);
  std::vector<std::size_t> got;
  s.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);

  SpanSet f(70);
  f.make_full();
  std::size_t visits = 0, sum = 0;
  f.for_each([&](std::size_t i) {
    ++visits;
    sum += i;
  });
  EXPECT_EQ(visits, 70u);
  EXPECT_EQ(sum, 70u * 69u / 2);
}

TEST(SpanSet, BitsetRoundTrip) {
  Rng rng(91);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(500);
    DynBitset b(n);
    for (int k = 0; k < 40; ++k)
      if (rng.chance(0.6)) b.set(rng.below(n));
    const SpanSet s = SpanSet::from_bitset(b);
    EXPECT_EQ(s.universe_size(), n);
    EXPECT_EQ(s.count(), b.count());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(s.test(i), b.test(i));
    EXPECT_EQ(s.to_bitset(), b);
  }
  // The extreme representations round-trip too.
  DynBitset empty(128), full(97);
  full.set_all();
  EXPECT_EQ(SpanSet::from_bitset(empty).to_bitset(), empty);
  const SpanSet sf = SpanSet::from_bitset(full);
  EXPECT_TRUE(sf.is_full_rep());
  EXPECT_EQ(sf.to_bitset(), full);
}

TEST(SpanSet, RandomizedAgainstReference) {
  Rng rng(517);
  for (int round = 0; round < 15; ++round) {
    const std::size_t n = 1 + rng.below(800);
    SpanSet s(n);
    std::vector<bool> ref(n, false);
    for (int k = 0; k < 300; ++k) {
      const std::size_t i = rng.below(n);
      if (rng.chance(0.7)) {
        s.set(i);
        ref[i] = true;
      } else {
        s.reset(i);
        ref[i] = false;
      }
      if (rng.chance(0.05)) s.normalize();
    }
    std::size_t want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(s.test(i), ref[i]);
      want += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(s.count(), want);
    const SpanSet back = SpanSet::from_bitset(s.to_bitset());
    EXPECT_EQ(back, s);
  }
}

}  // namespace
}  // namespace ccmm
