// The real-thread executor: genuine OS nondeterminism, checked
// post-mortem — the full version of the paper's verification story.
#include "exec/threaded_executor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "exec/backer.hpp"
#include "exec/sc_memory.hpp"
#include "exec/workload.hpp"
#include "helpers.hpp"
#include "trace/trace.hpp"

namespace ccmm {
namespace {

TEST(ThreadedExecutor, ExecutesEveryNodeExactlyOnce) {
  ScMemory mem;
  const Computation c = workload::reduction(16);
  const ExecutionResult r = run_threaded(c, 4, mem);
  EXPECT_EQ(r.trace.events.size(), c.node_count());
  EXPECT_TRUE(trace_consistent_with(r.trace, c));
}

TEST(ThreadedExecutor, ScMemoryStaysSCUnderRealThreads) {
  for (int round = 0; round < 10; ++round) {
    ScMemory mem;
    const Computation c = workload::contended_counter(6);
    const ExecutionResult r = run_threaded(c, 4, mem);
    EXPECT_TRUE(is_valid_observer(c, r.phi));
    EXPECT_TRUE(sequentially_consistent(c, r.phi)) << round;
  }
}

TEST(ThreadedExecutor, BackerStaysLCUnderRealThreads) {
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    BackerMemory mem;
    const Computation c =
        workload::random_ops(gen::random_dag(24, 0.12, rng), 3, 0.4, 0.4, rng);
    std::vector<ProcId> proc_of;
    const ExecutionResult r = run_threaded(c, 4, mem, &proc_of);
    EXPECT_EQ(proc_of.size(), c.node_count());
    EXPECT_TRUE(location_consistent(c, r.phi)) << round;
  }
}

TEST(ThreadedExecutor, SingleThreadDegeneratesToSerial) {
  ScMemory mem;
  const Computation c = workload::reduction(8);
  const ExecutionResult r = run_threaded(c, 1, mem);
  EXPECT_TRUE(trace_consistent_with(r.trace, c));
  EXPECT_TRUE(sequentially_consistent(c, r.phi));
}

TEST(ThreadedExecutor, UsesMultipleThreadsOnWideWork) {
  // A wide antichain gives every thread a chance to run something. The
  // work must outlast thread startup, so make it big and allow retries.
  const Computation c(gen::antichain(50000),
                      std::vector<Op>(50000, Op::nop()));
  std::size_t best = 0;
  for (int attempt = 0; attempt < 5 && best < 2; ++attempt) {
    ScMemory mem;
    std::vector<ProcId> proc_of;
    (void)run_threaded(c, 4, mem, &proc_of);
    const std::set<ProcId> used(proc_of.begin(), proc_of.end());
    best = std::max(best, used.size());
  }
  EXPECT_GE(best, 2u);
}

TEST(ThreadedExecutor, EmptyComputation) {
  ScMemory mem;
  const ExecutionResult r = run_threaded(Computation(), 4, mem);
  EXPECT_TRUE(r.trace.events.empty());
}

}  // namespace
}  // namespace ccmm
