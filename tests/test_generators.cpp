#include "dag/generators.hpp"

#include <gtest/gtest.h>

namespace ccmm {
namespace {

TEST(Generators, Chain) {
  const Dag d = gen::chain(5);
  EXPECT_EQ(d.node_count(), 5u);
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_TRUE(d.precedes(0, 4));
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.sinks().size(), 1u);
}

TEST(Generators, Antichain) {
  const Dag d = gen::antichain(5);
  EXPECT_EQ(d.edge_count(), 0u);
  EXPECT_EQ(d.sources().size(), 5u);
}

TEST(Generators, Diamond) {
  const Dag d = gen::diamond(4);
  EXPECT_EQ(d.node_count(), 6u);
  EXPECT_EQ(d.edge_count(), 8u);
  EXPECT_TRUE(d.precedes(0, 5));
  for (NodeId b = 1; b <= 4; ++b) {
    EXPECT_TRUE(d.precedes(0, b));
    EXPECT_TRUE(d.precedes(b, 5));
  }
  EXPECT_FALSE(d.precedes(1, 2));
}

TEST(Generators, RandomDagIsAcyclicAndIdSorted) {
  Rng rng(1);
  for (double p : {0.0, 0.3, 1.0}) {
    const Dag d = gen::random_dag(15, p, rng);
    EXPECT_TRUE(d.is_acyclic());
    for (const auto& e : d.edges()) EXPECT_LT(e.from, e.to);
  }
}

TEST(Generators, RandomDagDensityExtremes) {
  Rng rng(2);
  EXPECT_EQ(gen::random_dag(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(gen::random_dag(10, 1.0, rng).edge_count(), 45u);
}

TEST(Generators, LayeredEveryNonFirstLayerNodeHasPred) {
  Rng rng(3);
  const Dag d = gen::layered({3, 4, 2}, 0.2, rng);
  EXPECT_EQ(d.node_count(), 9u);
  EXPECT_TRUE(d.is_acyclic());
  for (NodeId u = 3; u < 9; ++u) EXPECT_FALSE(d.pred(u).empty()) << u;
}

TEST(Generators, ForkJoinStructure) {
  const Dag d = gen::fork_join(2, 2);
  // depth-2 binary: 1 fork + 2*(1 fork + 2 leaves + 1 join) + 1 join = 10.
  EXPECT_EQ(d.node_count(), 10u);
  EXPECT_TRUE(d.is_acyclic());
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.sinks().size(), 1u);
  // Single source precedes everything; sink succeeds everything.
  const NodeId src = d.sources()[0];
  const NodeId snk = d.sinks()[0];
  for (NodeId u = 0; u < d.node_count(); ++u) {
    if (u != src) {
      EXPECT_TRUE(d.precedes(src, u));
    }
    if (u != snk) {
      EXPECT_TRUE(d.precedes(u, snk));
    }
  }
}

TEST(Generators, ForkJoinDepthZeroIsSingleNode) {
  const Dag d = gen::fork_join(3, 0);
  EXPECT_EQ(d.node_count(), 1u);
}

TEST(Generators, SeriesParallelSingleSourceSink) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Dag d = gen::series_parallel(20, rng);
    EXPECT_TRUE(d.is_acyclic());
    EXPECT_EQ(d.sources().size(), 1u);
    EXPECT_EQ(d.sinks().size(), 1u);
    EXPECT_GE(d.node_count(), 20u);
  }
}

TEST(Generators, FaninTreeReducesToOneRoot) {
  const Dag d = gen::fanin_tree(8);
  EXPECT_EQ(d.node_count(), 15u);  // 8 + 4 + 2 + 1
  EXPECT_EQ(d.sinks().size(), 1u);
  EXPECT_EQ(d.sources().size(), 8u);
  const NodeId root = d.sinks()[0];
  for (NodeId leaf = 0; leaf < 8; ++leaf) EXPECT_TRUE(d.precedes(leaf, root));
}

TEST(Generators, FaninTreeOddLeaves) {
  const Dag d = gen::fanin_tree(5);
  EXPECT_EQ(d.sinks().size(), 1u);
  EXPECT_TRUE(d.is_acyclic());
}

}  // namespace
}  // namespace ccmm
