// The isomorphism-quotient engine: the refinement canonicalizer is
// cross-validated against the factorial test oracle
// (enumerate/isomorphism.hpp) over entire small universes, orbit
// multiplicities are checked against the labeled census, and observer
// transport / memoized membership are checked for soundness.
#include "enumerate/canonical.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "enumerate/cached_model.hpp"
#include "enumerate/isomorphism.hpp"
#include "enumerate/observer_enum.hpp"
#include "models/location_consistency.hpp"
#include "models/qdag.hpp"
#include "util/memo_cache.hpp"

namespace ccmm {
namespace {

UniverseSpec small_spec(std::size_t max_nodes, std::size_t nlocations = 1,
                        bool include_nop = false) {
  UniverseSpec spec;
  spec.max_nodes = max_nodes;
  spec.nlocations = nlocations;
  spec.include_nop = include_nop;
  return spec;
}

TEST(Canonical, MatchesFactorialOracleOnWholeUniverse) {
  // Group every computation of the universe by the factorial oracle's
  // canonical encoding and by the fast canonicalizer's. The two
  // partitions must coincide: equal fast keys iff isomorphic.
  for (const UniverseSpec& spec :
       {small_spec(4), small_spec(3, 2, /*include_nop=*/true)}) {
    std::map<std::string, std::string> oracle_to_fast;
    std::unordered_map<std::string, std::string> fast_to_oracle;
    for_each_computation(spec, [&](const Computation& c) {
      const std::string oracle = canonical_encoding(c);
      const std::string fast = canonical_key(c);
      const auto [it, fresh] = oracle_to_fast.try_emplace(oracle, fast);
      EXPECT_EQ(it->second, fast) << "oracle class split by fast key";
      const auto [jt, fresh2] = fast_to_oracle.try_emplace(fast, oracle);
      EXPECT_EQ(jt->second, oracle) << "fast key merges oracle classes";
      return true;
    });
    EXPECT_EQ(oracle_to_fast.size(), fast_to_oracle.size());
  }
}

TEST(Canonical, RepresentativesAreInCanonicalLayout) {
  for_each_computation_up_to_iso(
      small_spec(4), [&](const Computation& rep, std::uint64_t) {
        const CanonicalForm cf = canonical_form(rep);
        EXPECT_EQ(encode_computation(rep), cf.encoding);
        for (NodeId u = 0; u < rep.node_count(); ++u)
          EXPECT_EQ(cf.map[u], u) << "canonicalization must be idempotent";
        return true;
      });
}

TEST(Canonical, OrbitSizesSumToLabeledCensus) {
  for (const UniverseSpec& spec :
       {small_spec(4), small_spec(3, 2, /*include_nop=*/true)}) {
    std::uint64_t labeled = 0;
    for_each_computation_up_to_iso(
        spec, [&](const Computation& rep, std::uint64_t mult) {
          EXPECT_EQ(mult, orbit_size(rep));
          labeled += mult;
          return true;
        });
    EXPECT_EQ(labeled, computation_count(spec));
  }
}

TEST(Canonical, ClassCountsArePinned) {
  // Regression pins (validated against the factorial oracle above).
  EXPECT_EQ(computation_count_up_to_iso(small_spec(2)), 10u);
  EXPECT_EQ(computation_count_up_to_iso(small_spec(3)), 50u);
  EXPECT_EQ(computation_count_up_to_iso(small_spec(4)), 470u);
  EXPECT_EQ(computation_count_up_to_iso(small_spec(3, 2, true)), 606u);
}

TEST(Canonical, LinearExtensionCount) {
  Dag chain(4);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  chain.add_edge(2, 3);
  EXPECT_EQ(linear_extension_count(chain), 1u);

  const Dag antichain(4);
  EXPECT_EQ(linear_extension_count(antichain), 24u);

  Dag vee(3);  // 0 -> 2, 1 -> 2: two sources, one sink.
  vee.add_edge(0, 2);
  vee.add_edge(1, 2);
  EXPECT_EQ(linear_extension_count(vee), 2u);

  EXPECT_EQ(linear_extension_count(Dag(0)), 1u);
}

TEST(Canonical, AutomorphismOrbitFormulaOnKnownShapes) {
  // An antichain of k identical ops has |Aut| = k! and a single labeled
  // layout, so its orbit size is e(G)/|Aut| = k!/k! = 1.
  const Computation antichain(Dag(4), std::vector<Op>(4, Op::read(0)));
  EXPECT_EQ(canonical_form(antichain).automorphisms, 24u);
  EXPECT_EQ(orbit_size(antichain), 1u);

  // Distinct ops kill the symmetry: orbit = all topo-sorted labelings.
  const Computation mixed(
      Dag(3), {Op::read(0), Op::write(0), Op::read(1)});
  EXPECT_EQ(canonical_form(mixed).automorphisms, 1u);
  EXPECT_EQ(orbit_size(mixed), 6u);
}

TEST(Canonical, TransportPreservesMembership) {
  // For every pair and every class representative: (c, phi) is in a
  // model iff the transported pair is. This is the soundness fact the
  // quotient fixpoint and the membership cache rely on.
  const auto lc = LocationConsistencyModel::instance();
  const auto nn = QDagModel::nn();
  const UniverseSpec spec = small_spec(3);
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    const CanonicalForm cf = canonical_form(c);
    const Computation rep = apply_relabeling(c, cf.map);
    const ObserverFunction t = transport_observer(phi, cf.map);
    EXPECT_TRUE(is_valid_observer(rep, t));
    EXPECT_EQ(lc->contains(c, phi), lc->contains(rep, t));
    EXPECT_EQ(nn->contains(c, phi), nn->contains(rep, t));
    return true;
  });
}

TEST(Canonical, PairQuotientWeightsReproduceLabeledModelCensus) {
  const auto nn = QDagModel::nn();
  const UniverseSpec spec = small_spec(4);
  std::uint64_t labeled = 0, quotient = 0;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    if (nn->contains(c, phi)) ++labeled;
    return true;
  });
  for_each_pair_up_to_iso(
      spec, [&](const Computation& rep, const ObserverFunction& phi,
                std::uint64_t mult) {
        if (nn->contains(rep, phi)) quotient += mult;
        return true;
      });
  EXPECT_EQ(labeled, quotient);
}

TEST(Canonical, CachedModelAgreesAndHits) {
  membership_cache().clear();
  const auto plain = QDagModel::nn();
  const auto memo = cached(plain);
  EXPECT_EQ(memo->name(), plain->name());

  const UniverseSpec spec = small_spec(3);
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_EQ(memo->contains(c, phi), plain->contains(c, phi));
    return true;
  });
  const auto first = membership_cache().stats();
  EXPECT_GT(first.insertions, 0u);
  // Second sweep: every query is isomorphic to a cached one.
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_EQ(memo->contains(c, phi), plain->contains(c, phi));
    return true;
  });
  const auto second = membership_cache().stats();
  EXPECT_GE(second.hits, first.misses);
  EXPECT_EQ(second.misses, first.misses);
}

TEST(Canonical, ComponentDecompositionHandlesParallelChains) {
  // k disjoint identical chains: the factorial oracle would need (2k)!
  // permutations; the component-aware canonicalizer multiplies k! for
  // interchangeable components. Orbit size = e(G)/k! =
  // (multinomial)/k!.
  Dag d(8);
  for (NodeId u = 0; u < 8; u += 2) d.add_edge(u, u + 1);
  const Computation c(d, std::vector<Op>(8, Op::write(0)));
  const CanonicalForm cf = canonical_form(c);
  EXPECT_EQ(cf.automorphisms, 24u);  // 4 interchangeable chain components
  // e(G) = 8!/2^4 = 2520; orbit = 2520/24.
  EXPECT_EQ(linear_extension_count(d), 2520u);
  EXPECT_EQ(orbit_size(c), 105u);
}

}  // namespace
}  // namespace ccmm
