#include "trace/large_check.hpp"

#include <gtest/gtest.h>

#include "exec/lc_memory.hpp"
#include "exec/sc_memory.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "models/location_consistency.hpp"
#include "models/qdag.hpp"
#include "proc/random_program.hpp"
#include "trace/postmortem.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

/// The streaming report must agree bit-for-bit with the prepared
/// checkers on every model it claims to decide.
void expect_matches_models(const Computation& c, const ObserverFunction& phi,
                           const LargeCheckOptions& base) {
  LargeCheckOptions opt = base;
  opt.models = kLargeCheckAll;
  const LargeCheckReport r = large_check(c, phi, opt);

  const ValidityResult validity = validate_observer(c, phi);
  ASSERT_EQ(r.valid_observer, validity.ok) << validity.reason << "\n"
                                           << r.detail;
  EXPECT_EQ(r.in_model(kSuiteLC), location_consistent(c, phi)) << r.detail;
  EXPECT_EQ(r.in_model(kSuiteNN), qdag_consistent(c, phi, DagPred::kNN));
  EXPECT_EQ(r.in_model(kSuiteNW), qdag_consistent(c, phi, DagPred::kNW));
  EXPECT_EQ(r.in_model(kSuiteWN), qdag_consistent(c, phi, DagPred::kWN));
  EXPECT_EQ(r.in_model(kSuiteWW), qdag_consistent(c, phi, DagPred::kWW));
  if (r.valid_observer) {
    const bool any_violated =
        (r.satisfied & kLargeCheckAll) != kLargeCheckAll;
    EXPECT_EQ(any_violated, !r.detail.empty());
  }
}

std::vector<Computation> small_workloads() {
  std::vector<Computation> out;
  out.push_back(workload::reduction(4));
  out.push_back(workload::stencil(4, 3));
  out.push_back(workload::contended_counter(5));
  out.push_back(workload::matmul(2));
  out.push_back(workload::fork_join_array(2, 3, 4));
  Rng rng(17);
  for (int i = 0; i < 6; ++i)
    out.push_back(workload::random_ops(gen::random_dag(14, 0.2, rng), 3, 0.4,
                                       0.4, rng));
  return out;
}

TEST(LargeCheck, MatchesPreparedCheckersOnExecutions) {
  Rng rng(23);
  for (const Computation& c : small_workloads()) {
    {
      ScMemory mem;
      expect_matches_models(c, run_serial(c, mem).phi, {});
    }
    {
      WeakMemory mem(5);
      const Schedule s = greedy_schedule(c, 3);
      expect_matches_models(c, run_execution(c, s, mem).phi, {});
    }
    {
      LcOracleMemory mem(11);
      const Schedule s = work_stealing_schedule(c, 2, rng);
      expect_matches_models(c, run_execution(c, s, mem).phi, {});
    }
  }
}

TEST(LargeCheck, MatchesPreparedCheckersOnPerturbedObservers) {
  // Random corruptions cover invalid observers and model-breaking ones;
  // the verdicts must track the reference checkers through all of them.
  Rng rng(31);
  for (const Computation& c : small_workloads()) {
    WeakMemory mem(3);
    const Schedule s = greedy_schedule(c, 2);
    const ObserverFunction base = run_execution(c, s, mem).phi;
    const std::vector<Location> locs = c.written_locations();
    if (locs.empty()) continue;
    for (int trial = 0; trial < 20; ++trial) {
      ObserverFunction phi = base;
      for (int k = 0; k < 3; ++k) {
        const Location l = locs[rng.below(locs.size())];
        const auto u = static_cast<NodeId>(rng.below(c.node_count()));
        const std::vector<NodeId> ws = c.writers(l);
        const NodeId v = rng.chance(0.25)
                             ? kBottom
                             : ws[rng.below(ws.size())];
        phi.set(l, u, v);
      }
      expect_matches_models(c, phi, {});
    }
  }
}

TEST(LargeCheck, MatchesOnCilkPrograms) {
  Rng rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    proc::RandomCilkOptions opt;
    opt.target_ops = 24 + trial;
    opt.nlocations = 4;
    const Computation c = proc::random_cilk(opt, rng);
    WeakMemory mem(trial);
    const Schedule s = greedy_schedule(c, 3);
    const ObserverFunction phi = run_execution(c, s, mem).phi;
    LargeCheckOptions base;
    expect_matches_models(c, phi, base);
    // The SP parse should be picked up automatically.
    const LargeCheckReport r = large_check(c, phi, base);
    EXPECT_EQ(r.oracle_kind, "sp-order");
  }
}

TEST(LargeCheck, TraceEntryAgreesWithVerifyExecution) {
  Rng rng(3);
  for (const Computation& c : small_workloads()) {
    WeakMemory mem(9);
    const Schedule s = greedy_schedule(c, 2);
    const ExecutionResult run = run_execution(c, s, mem);
    LargeCheckOptions opt;
    opt.models = kSuiteLC;
    const LargeCheckReport r = large_check_trace(c, run.trace, opt);
    const ObserverFunction phi = observer_from_trace(c, run.trace);
    const PostmortemReport ref =
        verify_execution(c, phi, *LocationConsistencyModel::instance());
    ASSERT_EQ(r.valid_observer, ref.valid_observer) << r.detail;
    EXPECT_EQ(r.in_model(kSuiteLC), ref.in_model) << r.detail;
  }
}

TEST(LargeCheck, SerialTraceIsMemberOfEverything) {
  // A serial execution is sequentially consistent, so its completed
  // trace observer must land in every model of the suite — this pins
  // the last-write completion in observer_from_trace (an all-⊥
  // completion would fail LC on any trace with a post-write nop).
  Rng rng(83);
  for (const Computation& c : small_workloads()) {
    ScMemory mem;
    const ExecutionResult run = run_serial(c, mem);
    LargeCheckOptions opt;
    opt.models = kLargeCheckAll;
    const LargeCheckReport r = large_check_trace(c, run.trace, opt);
    ASSERT_TRUE(r.valid_observer) << r.detail;
    EXPECT_EQ(r.satisfied, kLargeCheckAll) << r.detail;
  }
  proc::RandomCilkOptions copt;
  copt.target_ops = 400;
  const Computation c = proc::random_cilk(copt, rng);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  const LargeCheckReport r = large_check_trace(c, run.trace, {});
  EXPECT_TRUE(r.valid_observer);
  EXPECT_EQ(r.satisfied & kSuiteLC, kSuiteLC) << r.detail;
}

TEST(LargeCheck, RejectsBrokenTraces) {
  const Computation c = workload::reduction(3);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);

  Trace shorter = run.trace;
  shorter.events.pop_back();
  const LargeCheckReport r = large_check_trace(c, shorter, {});
  EXPECT_FALSE(r.valid_observer);
  EXPECT_NE(r.detail.find("trace does not fit"), std::string::npos);

  Trace reordered = run.trace;
  for (auto& e : reordered.events)
    if (e.node == 0) e.seq = 1u << 20;
  EXPECT_FALSE(large_check_trace(c, reordered, {}).valid_observer);
}

TEST(LargeCheck, ReportsUsableDetailAndTimings) {
  // A stale read past an intervening write: w0 -> w1 -> r0 with r0
  // observing w0 breaks every model here (the quotient cycles for LC,
  // and u=w0 ≺ v=w1 ≺ w=r0 witnesses all four Q-dag predicates).
  ComputationBuilder b;
  const NodeId w0 = b.write(0);
  const NodeId w1 = b.write(0, {w0});
  const NodeId r0 = b.read(0, {w1});
  const Computation c = std::move(b).build();
  ObserverFunction phi(c.node_count());
  phi.set(0, w0, w0);
  phi.set(0, w1, w1);
  phi.set(0, r0, w0);

  LargeCheckOptions opt;
  opt.models = kLargeCheckAll;
  const LargeCheckReport r = large_check(c, phi, opt);
  EXPECT_TRUE(r.valid_observer);
  EXPECT_EQ(r.satisfied, 0u);
  EXPECT_FALSE(r.detail.empty());
  ASSERT_EQ(r.locations.size(), 1u);
  EXPECT_EQ(r.locations[0].writers, 2u);
  EXPECT_EQ(r.locations[0].violated, kLargeCheckAll);
  const std::string rendered = r.to_string();
  EXPECT_NE(rendered.find("oracle"), std::string::npos);
  EXPECT_NE(rendered.find("loc"), std::string::npos);
}

TEST(LargeCheck, ObserverFromTracePinsReadsAndWrites) {
  const Computation c = workload::contended_counter(3);
  ScMemory mem;
  const ExecutionResult run = run_serial(c, mem);
  const ObserverFunction phi = observer_from_trace(c, run.trace);
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const Op o = c.op(u);
    if (o.is_write()) {
      EXPECT_EQ(phi.get(o.loc, u), u);
    }
  }
  for (const TraceEvent& e : run.trace.events) {
    if (e.op.is_read()) {
      EXPECT_EQ(phi.get(e.op.loc, e.node), e.observed);
    }
  }
}

TEST(LargeCheckParallel, ShardedPipelineMatchesSequential) {
  // Many-location workloads sharded across the global pool must agree
  // with the sequential run of the same checks (and be TSan-clean).
  Rng rng(61);
  for (int trial = 0; trial < 4; ++trial) {
    const Computation c = workload::random_ops(
        gen::layered({6, 8, 8, 6}, 0.3, rng), 12, 0.45, 0.45, rng);
    WeakMemory mem(trial);
    const Schedule s = greedy_schedule(c, 4);
    const ObserverFunction phi = run_execution(c, s, mem).phi;

    LargeCheckOptions par;
    par.models = kLargeCheckAll;
    par.parallel = true;
    LargeCheckOptions seq = par;
    seq.parallel = false;
    const LargeCheckReport a = large_check(c, phi, par);
    const LargeCheckReport b = large_check(c, phi, seq);
    ASSERT_EQ(a.valid_observer, b.valid_observer);
    EXPECT_EQ(a.satisfied, b.satisfied);
    ASSERT_EQ(a.locations.size(), b.locations.size());
    for (std::size_t i = 0; i < a.locations.size(); ++i) {
      EXPECT_EQ(a.locations[i].loc, b.locations[i].loc);
      EXPECT_EQ(a.locations[i].violated, b.locations[i].violated);
      EXPECT_EQ(a.locations[i].valid, b.locations[i].valid);
    }
  }
}

TEST(LargeCheckParallel, ConcurrentReportsShareNothing) {
  // Two checks over the same computation running back to back on the
  // pool: the second must be unaffected by the first (regression against
  // shared mutable scratch).
  Rng rng(71);
  const Computation c = workload::stencil(8, 6);
  ScMemory mem;
  const ObserverFunction phi = run_serial(c, mem).phi;
  LargeCheckOptions opt;
  opt.models = kLargeCheckAll;
  const LargeCheckReport first = large_check(c, phi, opt);
  const LargeCheckReport second = large_check(c, phi, opt);
  EXPECT_EQ(first.satisfied, second.satisfied);
  EXPECT_EQ(first.valid_observer, second.valid_observer);
}

}  // namespace
}  // namespace ccmm
