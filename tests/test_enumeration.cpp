#include <gtest/gtest.h>

#include <set>

#include "enumerate/dag_enum.hpp"
#include "enumerate/labeling_enum.hpp"
#include "enumerate/observer_enum.hpp"
#include "enumerate/universe.hpp"

namespace ccmm {
namespace {

TEST(DagEnum, CountsArePowersOfTwo) {
  EXPECT_EQ(topo_dag_count(0), 1u);
  EXPECT_EQ(topo_dag_count(1), 1u);
  EXPECT_EQ(topo_dag_count(2), 2u);
  EXPECT_EQ(topo_dag_count(3), 8u);
  EXPECT_EQ(topo_dag_count(4), 64u);
  EXPECT_EQ(topo_dag_count(5), 1024u);
}

TEST(DagEnum, LabeledDagCountsMatchOeisA003024) {
  // 1, 1, 3, 25, 543, 29281, 3781503 (labeled DAGs on n nodes).
  EXPECT_EQ(labeled_dag_count(0), 1u);
  EXPECT_EQ(labeled_dag_count(1), 1u);
  EXPECT_EQ(labeled_dag_count(2), 3u);
  EXPECT_EQ(labeled_dag_count(3), 25u);
  EXPECT_EQ(labeled_dag_count(4), 543u);
  EXPECT_EQ(labeled_dag_count(5), 29281u);
  EXPECT_EQ(labeled_dag_count(6), 3781503u);
}

TEST(DagEnum, EnumerationVisitsDistinctAcyclicGraphs) {
  std::set<std::uint64_t> masks;
  std::uint64_t visits = 0;
  for_each_topo_dag(3, [&](const Dag& d) {
    EXPECT_EQ(d.node_count(), 3u);
    EXPECT_TRUE(d.is_acyclic());
    masks.insert(dag_mask(d));
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 8u);
  EXPECT_EQ(masks.size(), 8u);
}

TEST(DagEnum, MaskRoundTrip) {
  for (std::uint64_t m = 0; m < topo_dag_count(4); ++m)
    EXPECT_EQ(dag_mask(dag_from_mask(4, m)), m);
}

TEST(DagEnum, MaskRejectsUnsortedIds) {
  Dag d(2);
  d.add_edge(1, 0);
  EXPECT_THROW((void)dag_mask(d), std::logic_error);
}

TEST(LabelingEnum, CountMatchesAlphabetPower) {
  LabelingSpec spec{3, 1, true, SIZE_MAX};
  EXPECT_EQ(labeling_count(spec), 27u);  // {N, R, W}^3
  spec.include_nop = false;
  EXPECT_EQ(labeling_count(spec), 8u);
  spec.nlocations = 2;
  EXPECT_EQ(labeling_count(spec), 64u);  // {R0,W0,R1,W1}^3
}

TEST(LabelingEnum, VisitsExactlyAllLabelings) {
  LabelingSpec spec{2, 1, true, SIZE_MAX};
  std::set<std::vector<int>> seen;
  for_each_labeling(spec, [&](const std::vector<Op>& ops) {
    std::vector<int> key;
    for (const Op& o : ops) key.push_back(static_cast<int>(o.kind));
    seen.insert(key);
    return true;
  });
  EXPECT_EQ(seen.size(), 9u);
}

TEST(LabelingEnum, WriteCapFiltersLabelings) {
  LabelingSpec spec{3, 1, false, 1};
  std::size_t count = 0;
  for_each_labeling(spec, [&](const std::vector<Op>& ops) {
    std::size_t writes = 0;
    for (const Op& o : ops) writes += o.is_write() ? 1 : 0;
    EXPECT_LE(writes, 1u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4u);  // RRR, WRR, RWR, RRW
}

TEST(LabelingEnum, ZeroNodes) {
  LabelingSpec spec{0, 1, true, SIZE_MAX};
  std::size_t count = 0;
  for_each_labeling(spec, [&](const std::vector<Op>& ops) {
    EXPECT_TRUE(ops.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(ObserverEnum, CountMatchesProductFormula) {
  // W, R, R chain: readers below the write can observe {⊥, W} each... but
  // precedence prunes nothing here (the write is first).
  ComputationBuilder b;
  const NodeId w = b.write(0);
  b.read(0, {w});
  b.read(0, {w});
  const Computation c = std::move(b).build();
  EXPECT_EQ(observer_count(c), 4u);  // 2 free slots × {⊥, w}
}

TEST(ObserverEnum, PrecedencePrunesChoices) {
  // Read *before* the write cannot observe it (condition 2.2).
  ComputationBuilder b;
  const NodeId r = b.read(0);
  b.write(0, {r});
  const Computation c = std::move(b).build();
  EXPECT_EQ(observer_count(c), 1u);  // the read is stuck at ⊥
}

TEST(ObserverEnum, AllEnumeratedObserversAreValidAndDistinct) {
  ComputationBuilder b;
  const NodeId w1 = b.write(0);
  const NodeId w2 = b.write(0);
  b.read(0, {w1, w2});
  b.nop();
  const Computation c = std::move(b).build();
  std::set<std::string> seen;
  std::size_t n = 0;
  for_each_observer(c, [&](const ObserverFunction& phi) {
    EXPECT_TRUE(is_valid_observer(c, phi));
    seen.insert(encode_observer(phi));
    ++n;
    return true;
  });
  EXPECT_EQ(n, observer_count(c));
  EXPECT_EQ(seen.size(), n);  // no duplicates
  EXPECT_EQ(n, 9u);           // read and nop: 3 choices each
}

TEST(Universe, ComputationCountsComposeDagAndLabelingCounts) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  // sizes 0..3: 1·1 + 1·3 + 2·9 + 8·27 = 238.
  EXPECT_EQ(computation_count(spec), 238u);
}

TEST(Universe, PairCountAgreesWithMaterialization) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  const auto pairs = build_universe(spec);
  EXPECT_EQ(pairs.size(), pair_count(spec));
  for (const auto& p : pairs) EXPECT_TRUE(is_valid_observer(p.c, p.phi));
}

TEST(Universe, EncodingsAreInjective) {
  UniverseSpec spec;
  spec.max_nodes = 3;
  spec.nlocations = 1;
  std::set<std::pair<std::string, std::string>> seen;
  for_each_pair(spec, [&](const Computation& c, const ObserverFunction& phi) {
    EXPECT_TRUE(
        seen.emplace(encode_computation(c), encode_observer(phi)).second);
    return true;
  });
  EXPECT_EQ(seen.size(), pair_count(spec));
}

TEST(Universe, EmptyComputationIncluded) {
  UniverseSpec spec;
  spec.max_nodes = 0;
  EXPECT_EQ(computation_count(spec), 1u);
  EXPECT_EQ(pair_count(spec), 1u);
}

}  // namespace
}  // namespace ccmm
