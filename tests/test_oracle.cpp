#include "dag/precedence_oracle.hpp"

#include <gtest/gtest.h>

#include "core/sp_structure.hpp"
#include "dag/generators.hpp"
#include "enumerate/dag_enum.hpp"
#include "proc/random_program.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

/// Pin an oracle byte-identical to Dag::precedes over every node pair,
/// including the ⊥ conventions.
void expect_matches_closure(const Dag& dag, const PrecedenceOracle& oracle) {
  const std::size_t n = dag.node_count();
  ASSERT_EQ(oracle.node_count(), n);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_TRUE(oracle.precedes(kBottom, u));
    EXPECT_FALSE(oracle.precedes(u, kBottom));
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(oracle.precedes(u, v), dag.precedes(u, v))
          << oracle.kind() << " disagrees on " << u << " -> " << v;
      EXPECT_EQ(oracle.preceq(u, v), dag.preceq(u, v));
    }
  }
  EXPECT_FALSE(oracle.precedes(kBottom, kBottom));
}

TEST(ClosureOracle, MatchesDagPrecedes) {
  Rng rng(7);
  const Dag dag = gen::random_dag(40, 0.12, rng);
  const ClosureOracle oracle(dag);
  EXPECT_STREQ(oracle.kind(), "closure");
  expect_matches_closure(dag, oracle);
}

TEST(ChainOracle, ExhaustiveSmallDags) {
  // Every dag with id-upward edges on up to 6 nodes (2^15 shapes at
  // n=6): the chain oracle must agree with the closure on every pair.
  for (std::size_t n = 1; n <= 6; ++n) {
    std::size_t count = 0;
    for_each_topo_dag(n, [&](const Dag& dag) {
      // Spot-check densely at n<=5; sample the n=6 sweep to keep the
      // test quick (every 7th mask still covers ~4700 shapes).
      if (n == 6 && ++count % 7 != 0) return true;
      const ChainDecompositionOracle oracle(dag);
      expect_matches_closure(dag, oracle);
      EXPECT_GE(oracle.chain_count(), 1u);
      EXPECT_LE(oracle.chain_count(), n);
      return true;
    });
  }
}

TEST(ChainOracle, LayeredAndRandomDags) {
  Rng rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    const Dag dag = trial % 2 == 0
                        ? gen::random_dag(60, 0.08 + 0.04 * trial, rng)
                        : gen::layered({4, 7, 5, 8, 6, 3}, 0.3, rng);
    const ChainDecompositionOracle oracle(dag);
    expect_matches_closure(dag, oracle);
  }
}

TEST(ChainOracle, LargeLayeredSampledAgainstClosure) {
  Rng rng(99);
  std::vector<std::size_t> widths(100, 100);  // 10k nodes, width ~100
  const Dag dag = gen::layered(widths, 0.05, rng);
  const ChainDecompositionOracle oracle(dag);
  dag.ensure_closure();
  const auto n = static_cast<NodeId>(dag.node_count());
  for (int i = 0; i < 200000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    ASSERT_EQ(oracle.precedes(u, v), dag.precedes(u, v))
        << u << " -> " << v;
  }
  // O(n·chains) words, strictly below the closure's n²/4 bytes here.
  EXPECT_LT(oracle.memory_bytes(), dag.node_count() * dag.node_count() / 4);
}

TEST(SpOrderOracle, ExhaustiveOnSmallCilkPrograms) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    proc::RandomCilkOptions opt;
    opt.target_ops = 5 + trial % 40;
    opt.spawn_prob = 0.25;
    opt.call_prob = 0.10;
    opt.sync_prob = 0.12;
    const Computation c = proc::random_cilk(opt, rng);
    ASSERT_NE(c.sp_structure(), nullptr);
    const auto oracle = make_sp_order_oracle(*c.sp_structure());
    EXPECT_STREQ(oracle->kind(), "sp-order");
    expect_matches_closure(c.dag(), *oracle);
  }
}

TEST(SpOrderOracle, LargeCilkProgramSampledAgainstClosure) {
  Rng rng(5);
  proc::RandomCilkOptions opt;
  opt.target_ops = 10000;
  opt.nlocations = 16;
  const Computation c = proc::random_cilk(opt, rng);
  ASSERT_NE(c.sp_structure(), nullptr);
  const auto oracle = make_sp_order_oracle(*c.sp_structure());
  const Dag& dag = c.dag();
  ASSERT_EQ(oracle->node_count(), dag.node_count());

  // Both labelings must be linear extensions (checked on every edge)...
  const auto& eng = oracle->english();
  const auto& heb = oracle->hebrew();
  for (NodeId u = 0; u < dag.node_count(); ++u)
    for (const NodeId v : dag.succ(u)) {
      ASSERT_LT(eng[u], eng[v]);
      ASSERT_LT(heb[u], heb[v]);
    }
  // ...and their intersection must be the exact partial order.
  dag.ensure_closure();
  const auto n = static_cast<NodeId>(dag.node_count());
  for (int i = 0; i < 200000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    ASSERT_EQ(oracle->precedes(u, v), dag.precedes(u, v)) << u << " " << v;
  }
}

TEST(MakeOracle, AutoSelection) {
  Rng rng(3);

  // An SP parse wins regardless of size.
  proc::RandomCilkOptions opt;
  opt.target_ops = 30;
  const Computation c = proc::random_cilk(opt, rng);
  const auto sp =
      make_oracle(c.dag(), c.sp_structure().get(), OracleOptions{});
  EXPECT_STREQ(sp->kind(), "sp-order");

  // No parse, small dag: closure.
  const Dag small = gen::random_dag(50, 0.2, rng);
  EXPECT_STREQ(make_oracle(small, nullptr, OracleOptions{})->kind(),
               "closure");

  // No parse, past the threshold, narrow dag: chains undercut n²/4.
  // (Needs genuinely large n — at n=100 the closure is only 2.5KB and
  // auto correctly keeps it.)
  OracleOptions tight;
  tight.closure_threshold = 64;
  const Dag big = gen::layered(std::vector<std::size_t>(400, 5), 0.8, rng);
  EXPECT_STREQ(make_oracle(big, nullptr, tight)->kind(), "chain");

  // Explicit requests are honored.
  OracleOptions force;
  force.choice = OracleChoice::kChain;
  EXPECT_STREQ(make_oracle(small, nullptr, force)->kind(), "chain");
  force.choice = OracleChoice::kClosure;
  EXPECT_STREQ(make_oracle(big, nullptr, force)->kind(), "closure");
  force.choice = OracleChoice::kSpOrder;
  EXPECT_STREQ(
      make_oracle(c.dag(), c.sp_structure().get(), force)->kind(),
      "sp-order");
}

TEST(SpOrderOracle, HandlesPlainCallsAndNestedSyncs) {
  // Dedicated regressions for the Hebrew replay's tricky events: kAdopt
  // (plain call: serial in both orders) and nested syncs with multiple
  // pending children (reverse spawn order). random_cilk exercises these,
  // but only probabilistically — force them here.
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    proc::RandomCilkOptions opt;
    opt.target_ops = 24;
    opt.spawn_prob = 0.35;
    opt.call_prob = 0.25;
    opt.sync_prob = 0.05;  // rare syncs => many pending children per sync
    opt.max_live_strands = 16;
    const Computation c = proc::random_cilk(opt, rng);
    ASSERT_NE(c.sp_structure(), nullptr);
    expect_matches_closure(c.dag(), *make_sp_order_oracle(*c.sp_structure()));
  }
}

}  // namespace
}  // namespace ccmm
