// tests/helpers.hpp — shared fixtures: the paper's example pairs (from
// models/examples.hpp) and membership assertion helpers.
#pragma once

#include <gtest/gtest.h>

#include "core/last_writer.hpp"
#include "core/observer.hpp"
#include "dag/topsort.hpp"
#include "models/examples.hpp"
#include "models/location_consistency.hpp"
#include "models/qdag.hpp"
#include "models/sequential_consistency.hpp"

namespace ccmm::test {

using examples::ExamplePair;

inline ExamplePair figure2_pair() { return examples::figure2(); }
inline ExamplePair figure3_pair() { return examples::figure3(); }
inline ExamplePair lc_not_sc_pair() { return examples::lc_not_sc(); }

/// Membership across all six models, for table-driven assertions.
inline void expect_memberships(const ExamplePair& p) {
  EXPECT_EQ(qdag_consistent(p.c, p.phi, DagPred::kNN), p.in_nn)
      << p.name << " vs NN";
  EXPECT_EQ(qdag_consistent(p.c, p.phi, DagPred::kNW), p.in_nw)
      << p.name << " vs NW";
  EXPECT_EQ(qdag_consistent(p.c, p.phi, DagPred::kWN), p.in_wn)
      << p.name << " vs WN";
  EXPECT_EQ(qdag_consistent(p.c, p.phi, DagPred::kWW), p.in_ww)
      << p.name << " vs WW";
  EXPECT_EQ(location_consistent(p.c, p.phi), p.in_lc) << p.name << " vs LC";
  EXPECT_EQ(sequentially_consistent(p.c, p.phi), p.in_sc)
      << p.name << " vs SC";
}

}  // namespace ccmm::test
