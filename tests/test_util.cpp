#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/memo_cache.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/thread_pool.hpp"

namespace ccmm {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitIsIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not simply replay the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(format("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(format("%u", 7u), "7");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "n"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "100"});
  const std::string s = t.render();
  EXPECT_NE(s.find("alpha  1"), std::string::npos);
  EXPECT_NE(s.find("b      100"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ShardedMemoCache, LookupInsertAndStats) {
  ShardedMemoCache<int> cache(4, 8);
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.insert("a", 1);
  cache.insert("b", 2);
  ASSERT_TRUE(cache.lookup("a").has_value());
  EXPECT_EQ(*cache.lookup("a"), 1);
  EXPECT_EQ(*cache.lookup("b"), 2);
  const auto s = cache.stats();
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 2u);
  cache.clear();
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ShardedMemoCache, EvictsFullShardsInsteadOfGrowing) {
  // One shard, capacity 4: the 5th insert clears the shard first.
  ShardedMemoCache<int> cache(1, 4);
  for (int i = 0; i < 5; ++i) cache.insert(std::string(1, char('a' + i)), i);
  const auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, 4u);
  ASSERT_TRUE(cache.lookup("e").has_value());  // the newest key survives
  EXPECT_EQ(*cache.lookup("e"), 4);
}

TEST(ShardedMemoCache, ConcurrentMixedAccess) {
  ShardedMemoCache<int> cache(8, 1024);
  ThreadPool pool(4);
  pool.parallel_for(2000, [&](std::size_t i) {
    const std::string key = format("k%zu", i % 64);
    if (const auto hit = cache.lookup(key)) {
      EXPECT_EQ(*hit, static_cast<int>(i % 64));
    } else {
      cache.insert(key, static_cast<int>(i % 64));
    }
  });
  for (std::size_t k = 0; k < 64; ++k) {
    const auto hit = cache.lookup(format("k%zu", k));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, static_cast<int>(k));
  }
}

}  // namespace
}  // namespace ccmm
