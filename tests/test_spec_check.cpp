// The streaming spec bridge (trace/spec_check.hpp), pinned against the
// prepared path:
//  * every decided verdict equals CompiledModel::check_prepared — over
//    execution-produced observers (serial, weak, LC-oracle) and random
//    corruptions of them;
//  * the trace entry point: a scope-consistent serial execution's own
//    order decides the scoped/global searches via the hint (no
//    backtracking budget needed), and a trace that does not fit the
//    computation rejects every model with a diagnosis;
//  * undecidedness is honest: a w-constrained cube axiom (no streaming
//    lowering) and a 1-state search budget both yield decided = false,
//    never a guessed membership.
#include "trace/spec_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/prepared.hpp"
#include "exec/lc_memory.hpp"
#include "exec/sc_memory.hpp"
#include "exec/sim_machine.hpp"
#include "exec/weak_memory.hpp"
#include "exec/workload.hpp"
#include "util/rng.hpp"

namespace ccmm {
namespace {

std::vector<std::shared_ptr<const CompiledModel>> pack_models() {
  std::vector<std::shared_ptr<const CompiledModel>> out;
  for (const ModelSpec& s : bundled_spec_pack()) out.push_back(compile_model(s));
  return out;
}

std::vector<Computation> small_workloads() {
  std::vector<Computation> out;
  out.push_back(workload::reduction(4));
  out.push_back(workload::stencil(4, 3));
  out.push_back(workload::contended_counter(5));
  out.push_back(workload::fork_join_array(2, 3, 4));
  Rng rng(91);
  for (int i = 0; i < 5; ++i)
    out.push_back(workload::random_ops(gen::random_dag(13, 0.25, rng), 4, 0.4,
                                       0.4, rng));
  return out;
}

/// Every decided streaming verdict must equal the prepared checker; on
/// valid observers with an unbounded budget and streamable plans,
/// everything must be decided.
void expect_parity(const Computation& c, const ObserverFunction& phi,
                   const std::vector<std::shared_ptr<const CompiledModel>>&
                       models) {
  const SpecCheckReport r = spec_check(c, phi, models);
  ASSERT_EQ(r.models.size(), models.size());
  CheckContext ctx;
  const PreparedPair p = ctx.prepare(c, phi);
  for (std::size_t i = 0; i < models.size(); ++i) {
    const SpecModelVerdict& v = r.models[i];
    EXPECT_EQ(v.name, models[i]->name());
    EXPECT_TRUE(v.decided) << v.name << ": " << v.detail;
    const CompiledVerdict want = models[i]->check_prepared(p);
    EXPECT_FALSE(want.exhausted);
    EXPECT_EQ(v.member, want.member) << v.name << ": " << v.detail;
  }
  EXPECT_EQ(r.all_members(),
            r.base.valid_observer &&
                std::all_of(r.models.begin(), r.models.end(),
                            [](const SpecModelVerdict& v) {
                              return v.decided && v.member;
                            }));
}

TEST(SpecCheck, MatchesPreparedOnExecutions) {
  const auto models = pack_models();
  Rng rng(5);
  for (const Computation& c : small_workloads()) {
    {
      ScMemory mem;
      expect_parity(c, run_serial(c, mem).phi, models);
    }
    {
      WeakMemory mem(7);
      const Schedule s = greedy_schedule(c, 3);
      expect_parity(c, run_execution(c, s, mem).phi, models);
    }
    {
      LcOracleMemory mem(3);
      const Schedule s = work_stealing_schedule(c, 2, rng);
      expect_parity(c, run_execution(c, s, mem).phi, models);
    }
  }
}

TEST(SpecCheck, MatchesPreparedOnPerturbedObservers) {
  const auto models = pack_models();
  Rng rng(13);
  for (const Computation& c : small_workloads()) {
    WeakMemory mem(2);
    const Schedule s = greedy_schedule(c, 2);
    const ObserverFunction base = run_execution(c, s, mem).phi;
    const std::vector<Location> locs = c.written_locations();
    if (locs.empty()) continue;
    for (int trial = 0; trial < 12; ++trial) {
      ObserverFunction phi = base;
      for (int k = 0; k < 3; ++k) {
        const Location l = locs[rng.below(locs.size())];
        const auto u = static_cast<NodeId>(rng.below(c.node_count()));
        const std::vector<NodeId> ws = c.writers(l);
        phi.set(l, u, rng.chance(0.25) ? kBottom : ws[rng.below(ws.size())]);
      }
      // Invalid observers short-circuit: decided non-members everywhere.
      const SpecCheckReport r = spec_check(c, phi, models);
      if (!r.base.valid_observer) {
        for (const SpecModelVerdict& v : r.models) {
          EXPECT_TRUE(v.decided);
          EXPECT_FALSE(v.member);
        }
        continue;
      }
      expect_parity(c, phi, models);
    }
  }
}

TEST(SpecCheck, SharedPassCoversTheUnionOfPlans) {
  // One large_check run serves all requested models: with TSO in the
  // set the shared report must carry its freshness and corner bits.
  const auto models = pack_models();
  const Computation c = workload::reduction(4);
  ScMemory mem;
  const SpecCheckReport r = spec_check(c, run_serial(c, mem).phi, models);
  EXPECT_TRUE(r.base.valid_observer);
  EXPECT_NE(r.base.checked & kSuiteFresh, 0u);
  EXPECT_NE(r.base.checked & kSuiteLC, 0u);
  EXPECT_NE(r.base.checked & kSuiteWN, 0u);
  EXPECT_NE(r.base.checked & kSuiteNW, 0u);
  EXPECT_TRUE(r.all_members());  // a serial execution is in everything
  EXPECT_NE(r.to_string().find("PC2"), std::string::npos);
}

TEST(SpecCheck, TraceEntryDecidesSerialExecutionsViaHint) {
  const auto models = pack_models();
  for (const Computation& c : small_workloads()) {
    ScMemory mem;
    const ExecutionResult run = run_serial(c, mem);
    // Even with a zero search budget the trace's own execution order
    // explains every scope of a serial execution — the hint path must
    // decide without backtracking.
    SpecCheckOptions opt;
    opt.search_budget = 0;
    const SpecCheckReport r = spec_check_trace(c, run.trace, models, opt);
    for (const SpecModelVerdict& v : r.models) {
      EXPECT_TRUE(v.decided) << v.name << ": " << v.detail;
      EXPECT_TRUE(v.member) << v.name << ": " << v.detail;
    }
  }
}

TEST(SpecCheck, TraceEntryAgreesWithObserverEntry) {
  const auto models = pack_models();
  Rng rng(29);
  for (const Computation& c : small_workloads()) {
    WeakMemory mem(4);
    const Schedule s = greedy_schedule(c, 3);
    const ExecutionResult run = run_execution(c, s, mem);
    const SpecCheckReport via_trace = spec_check_trace(c, run.trace, models);
    const SpecCheckReport via_phi =
        spec_check(c, observer_from_trace(c, run.trace), models);
    ASSERT_EQ(via_trace.models.size(), via_phi.models.size());
    for (std::size_t i = 0; i < via_trace.models.size(); ++i) {
      EXPECT_EQ(via_trace.models[i].decided, via_phi.models[i].decided);
      EXPECT_EQ(via_trace.models[i].member, via_phi.models[i].member)
          << via_trace.models[i].name;
    }
  }
}

TEST(SpecCheck, MisfitTraceRejectsEveryModelWithDiagnosis) {
  const auto models = pack_models();
  const Computation c = workload::contended_counter(5);
  ScMemory mem;
  ExecutionResult run = run_serial(c, mem);
  ASSERT_FALSE(run.trace.events.empty());
  run.trace.events.pop_back();  // one event per node no longer holds
  const SpecCheckReport r = spec_check_trace(c, run.trace, models);
  ASSERT_EQ(r.models.size(), models.size());
  for (const SpecModelVerdict& v : r.models) {
    EXPECT_TRUE(v.decided);
    EXPECT_FALSE(v.member);
    EXPECT_NE(v.detail.find("trace does not fit"), std::string::npos)
        << v.detail;
  }
}

TEST(SpecCheck, UnstreamablePlanIsUndecidedNotGuessed) {
  ModelSpec s;
  s.name = "CUBE";
  s.axioms = {CubeSpec{false, false, true}};  // w-constrained: cubic scan
  const auto cube = compile_model(s);
  EXPECT_FALSE(cube->streaming_plan().streamable);

  const Computation c = workload::reduction(3);
  ScMemory mem;
  const ObserverFunction phi = run_serial(c, mem).phi;
  const SpecCheckReport r = spec_check(c, phi, {cube});
  ASSERT_EQ(r.models.size(), 1u);
  EXPECT_FALSE(r.models[0].decided);
  EXPECT_NE(r.models[0].detail.find("no streaming lowering"),
            std::string::npos)
      << r.models[0].detail;
  // The prepared path still decides it (and a serial execution is in
  // every cube model).
  CheckContext ctx;
  EXPECT_TRUE(cube->check_prepared(ctx.prepare(c, phi)).member);
}

TEST(SpecCheck, BudgetExhaustionIsUndecidedWithoutAHint) {
  // Without the trace hint a scoped/global search must run; a 1-state
  // budget cannot decide a 14-node member and must say so.
  Rng rng(37);
  const Computation c =
      workload::random_ops(gen::random_dag(14, 0.3, rng), 2, 0.5, 0.4, rng);
  ScMemory mem;
  const ObserverFunction phi = run_serial(c, mem).phi;
  const auto sc = compile_model(builtin_model_specs()[0]);

  SpecCheckOptions tight;
  tight.search_budget = 1;
  const SpecCheckReport r = spec_check(c, phi, {sc}, tight);
  ASSERT_EQ(r.models.size(), 1u);
  EXPECT_FALSE(r.models[0].decided) << r.models[0].detail;

  // Same pair, default budget: decided member.
  const SpecCheckReport full = spec_check(c, phi, {sc});
  EXPECT_TRUE(full.models[0].decided);
  EXPECT_TRUE(full.models[0].member);
}

}  // namespace
}  // namespace ccmm
