#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "exec/sc_memory.hpp"
#include "exec/workload.hpp"

namespace ccmm {
namespace {

ExecutionResult sample_run(const Computation& c) {
  ScMemory mem;
  return run_serial(c, mem);
}

TEST(Trace, OrderFollowsSequenceNumbers) {
  const Computation c = workload::reduction(4);
  const ExecutionResult r = sample_run(c);
  const auto order = trace_order(r.trace);
  EXPECT_EQ(order.size(), c.node_count());
  // Serial schedule = canonical topological order.
  EXPECT_EQ(order, c.dag().topological_order());
}

TEST(Trace, OrderSortsShuffledEvents) {
  Trace t;
  t.events.push_back({2, 2, 0, 7, Op::nop(), kBottom});
  t.events.push_back({0, 0, 0, 3, Op::nop(), kBottom});
  t.events.push_back({1, 1, 0, 5, Op::nop(), kBottom});
  EXPECT_EQ(trace_order(t), (std::vector<NodeId>{3, 5, 7}));
}

TEST(Trace, ConsistencyChecker) {
  const Computation c = workload::contended_counter(3);
  const ExecutionResult r = sample_run(c);
  EXPECT_TRUE(trace_consistent_with(r.trace, c));

  // Wrong size.
  Trace shorter = r.trace;
  shorter.events.pop_back();
  EXPECT_FALSE(trace_consistent_with(shorter, c));

  // Wrong op recorded.
  Trace wrong_op = r.trace;
  wrong_op.events[0].op = Op::read(9);
  EXPECT_FALSE(trace_consistent_with(wrong_op, c));

  // Non-topological order: swap seq of a dependent pair.
  Trace reordered = r.trace;
  // init (node 0) must precede everything; give it the largest seq.
  for (auto& e : reordered.events)
    if (e.node == 0) e.seq = 1000;
  EXPECT_FALSE(trace_consistent_with(reordered, c));

  // Duplicate node.
  Trace dup = r.trace;
  dup.events[1].node = dup.events[0].node;
  EXPECT_FALSE(trace_consistent_with(dup, c));
}

TEST(Trace, RenderingMentionsOpsAndObservations) {
  const Computation c = workload::contended_counter(2);
  const ExecutionResult r = sample_run(c);
  const std::string s = trace_to_string(r.trace);
  EXPECT_NE(s.find("W(0)"), std::string::npos);
  EXPECT_NE(s.find("R(0)"), std::string::npos);
  EXPECT_NE(s.find("seq"), std::string::npos);
}

TEST(Trace, ConsistencyCheckerNamesTheProblem) {
  const Computation c = workload::contended_counter(3);
  const ExecutionResult r = sample_run(c);
  std::string why;

  Trace shorter = r.trace;
  shorter.events.pop_back();
  EXPECT_FALSE(trace_consistent_with(shorter, c, &why));
  EXPECT_NE(why.find("events"), std::string::npos);

  Trace wrong_op = r.trace;
  wrong_op.events[0].op = Op::read(9);
  EXPECT_FALSE(trace_consistent_with(wrong_op, c, &why));
  EXPECT_NE(why.find("R(9)"), std::string::npos);

  Trace reordered = r.trace;
  for (auto& e : reordered.events)
    if (e.node == 0) e.seq = 1000;
  EXPECT_FALSE(trace_consistent_with(reordered, c, &why));
  EXPECT_NE(why.find("flips dag edge"), std::string::npos);
}

TEST(Trace, RenderingElidesLongTraces) {
  const Computation c = workload::contended_counter(6);
  const ExecutionResult r = sample_run(c);
  const std::string s = trace_to_string(r.trace, 3);
  EXPECT_NE(s.find("more events elided"), std::string::npos);
  // 3 rows + header + rule + elision note.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);
}

TEST(Trace, TextRoundTrip) {
  const Computation c = workload::contended_counter(4);
  const ExecutionResult r = sample_run(c);
  std::istringstream in(write_trace(r.trace));
  const Trace back = read_trace(in, c);
  ASSERT_EQ(back.events.size(), r.trace.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(back.events[i].seq, r.trace.events[i].seq);
    EXPECT_EQ(back.events[i].node, r.trace.events[i].node);
    EXPECT_EQ(back.events[i].observed, r.trace.events[i].observed);
    EXPECT_TRUE(back.events[i].op == r.trace.events[i].op);
  }
  EXPECT_TRUE(trace_consistent_with(back, c));

  std::istringstream junk("1 0 0 not-a-node _\n");
  EXPECT_THROW((void)read_trace(junk, c), std::runtime_error);
  std::istringstream bad_node("1 0 0 99999 _\n");
  EXPECT_THROW((void)read_trace(bad_node, c), std::runtime_error);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(trace_order(t).empty());
  EXPECT_TRUE(trace_consistent_with(t, Computation()));
  EXPECT_FALSE(trace_consistent_with(t, workload::reduction(2)));
}

}  // namespace
}  // namespace ccmm
