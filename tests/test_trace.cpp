#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "exec/sc_memory.hpp"
#include "exec/workload.hpp"

namespace ccmm {
namespace {

ExecutionResult sample_run(const Computation& c) {
  ScMemory mem;
  return run_serial(c, mem);
}

TEST(Trace, OrderFollowsSequenceNumbers) {
  const Computation c = workload::reduction(4);
  const ExecutionResult r = sample_run(c);
  const auto order = trace_order(r.trace);
  EXPECT_EQ(order.size(), c.node_count());
  // Serial schedule = canonical topological order.
  EXPECT_EQ(order, c.dag().topological_order());
}

TEST(Trace, OrderSortsShuffledEvents) {
  Trace t;
  t.events.push_back({2, 2, 0, 7, Op::nop(), kBottom});
  t.events.push_back({0, 0, 0, 3, Op::nop(), kBottom});
  t.events.push_back({1, 1, 0, 5, Op::nop(), kBottom});
  EXPECT_EQ(trace_order(t), (std::vector<NodeId>{3, 5, 7}));
}

TEST(Trace, ConsistencyChecker) {
  const Computation c = workload::contended_counter(3);
  const ExecutionResult r = sample_run(c);
  EXPECT_TRUE(trace_consistent_with(r.trace, c));

  // Wrong size.
  Trace shorter = r.trace;
  shorter.events.pop_back();
  EXPECT_FALSE(trace_consistent_with(shorter, c));

  // Wrong op recorded.
  Trace wrong_op = r.trace;
  wrong_op.events[0].op = Op::read(9);
  EXPECT_FALSE(trace_consistent_with(wrong_op, c));

  // Non-topological order: swap seq of a dependent pair.
  Trace reordered = r.trace;
  // init (node 0) must precede everything; give it the largest seq.
  for (auto& e : reordered.events)
    if (e.node == 0) e.seq = 1000;
  EXPECT_FALSE(trace_consistent_with(reordered, c));

  // Duplicate node.
  Trace dup = r.trace;
  dup.events[1].node = dup.events[0].node;
  EXPECT_FALSE(trace_consistent_with(dup, c));
}

TEST(Trace, RenderingMentionsOpsAndObservations) {
  const Computation c = workload::contended_counter(2);
  const ExecutionResult r = sample_run(c);
  const std::string s = trace_to_string(r.trace);
  EXPECT_NE(s.find("W(0)"), std::string::npos);
  EXPECT_NE(s.find("R(0)"), std::string::npos);
  EXPECT_NE(s.find("seq"), std::string::npos);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(trace_order(t).empty());
  EXPECT_TRUE(trace_consistent_with(t, Computation()));
  EXPECT_FALSE(trace_consistent_with(t, workload::reduction(2)));
}

}  // namespace
}  // namespace ccmm
